"""Ablation benchmarks for the design choices DESIGN.md calls out.

* Euler-path linearisation vs the etched-region baseline vs the vulnerable
  grid — both area and immunity, per cell type.
* Scheme 1 vs scheme 2 standardisation — area utilisation on the full adder.
* Library CNT pitch — how the cell-level delay gain degrades away from the
  optimal ~5 nm pitch.
"""

import pytest
from conftest import record

from repro.cells import characterize_gate, cmos_technology, cnfet_technology
from repro.core import assemble_cell
from repro.flow import CNFETDesignKit, full_adder_netlist
from repro.immunity import sweep
from repro.logic import standard_gate


@pytest.mark.parametrize("technique", ["vulnerable", "baseline", "compact"])
def test_ablation_layout_technique_area(benchmark, technique):
    """Cell area of NAND3 under each layout technique (scheme 1)."""
    cell = benchmark(
        assemble_cell, standard_gate("NAND3"), technique, 1, 4.0
    )
    record(benchmark, technique=technique, area_lambda2=cell.area,
           height_lambda=cell.height, width_lambda=cell.width)
    assert cell.area > 0


@pytest.mark.parametrize("gate_name", ["NAND2", "NAND3"])
def test_ablation_layout_technique_immunity(benchmark, gate_name):
    """Failure rate vs defect density per layout technique (batched sweep).

    The immunity half of the layout-technique ablation: the vulnerable grid
    degrades as CNTs per trial grow, while the etched baseline and the
    compact Euler-path layouts stay at 0 % for every density.
    """
    points = benchmark.pedantic(
        sweep,
        kwargs=dict(
            gates=(gate_name,),
            techniques=("vulnerable", "baseline", "compact"),
            cnts_per_trial=(2, 4, 8),
            trials=400,
            seed=2009,
        ),
        iterations=1,
        rounds=1,
    )
    by_technique = {}
    for point in points:
        by_technique.setdefault(point.technique, {})[point.cnts_per_trial] = \
            round(point.failure_rate, 3)
    record(benchmark, gate=gate_name, failure_rate_by_density=by_technique)
    vulnerable = by_technique["vulnerable"]
    assert vulnerable[8] >= vulnerable[2]
    assert all(rate == 0.0 for rate in by_technique["compact"].values())
    assert all(rate == 0.0 for rate in by_technique["baseline"].values())


@pytest.mark.parametrize("scheme", [1, 2])
def test_ablation_scheme_area_utilisation(benchmark, scheme):
    """Full-adder core area under scheme 1 vs scheme 2 standardisation."""
    kit = CNFETDesignKit(gate_set=("INV", "NAND2"), drive_strengths=(1.0, 2.0, 4.0, 9.0),
                         scheme=scheme)
    result = benchmark.pedantic(kit.run_flow, args=(full_adder_netlist(),),
                                iterations=1, rounds=1)
    record(
        benchmark,
        scheme=scheme,
        core_area_lambda2=round(result.report.placement.core_area, 1),
        utilization=round(result.report.placement.utilization, 3),
        area_gain_vs_cmos=round(result.report.area_gain_vs_cmos, 3),
    )


@pytest.mark.parametrize("pitch_nm", [3.0, 5.0, 10.0, 20.0])
def test_ablation_library_pitch(benchmark, pitch_nm):
    """Cell-level speed advantage as a function of the library CNT pitch."""

    def run():
        gate = standard_gate("NAND2")
        cnfet = characterize_gate(gate, cnfet_technology(pitch_nm=pitch_nm))
        cmos = characterize_gate(gate, cmos_technology())
        return cmos.drive_resistance / cnfet.drive_resistance

    resistance_gain = benchmark(run)
    record(benchmark, pitch_nm=pitch_nm, drive_advantage=round(resistance_gain, 3))
    # Dense libraries (near the optimal pitch) out-drive CMOS; sparse ones
    # (few tubes per device) lose the advantage, which is the point of the
    # ablation.
    assert resistance_gain > 0.0
    if pitch_nm <= 5.0:
        assert resistance_gain > 1.0
