"""Per-unique-cell corner reuse in the circuit-study engine.

Acceptance benchmark for the circuit-level yield subsystem: an 8-bit
ripple-carry adder has 72 gate instances but only **two** unique mapped
cells, so

* the cold run must invoke the Monte Carlo immunity engine exactly once
  per unique cell (proved by counting engine invocations, not by
  timing), and
* a warm re-run against the populated corner store must execute **zero**
  engine calls, return a bit-identical result, and beat the cold run by
  at least ``REQUIRED_WARM_SPEEDUP``.

Run under pytest-benchmark (``pytest benchmarks/bench_circuit_study.py``)
or standalone to (re)generate the checked-in perf snapshot (a
``repro-bench/v1`` envelope — see ``bench_schema.py``)::

    python benchmarks/bench_circuit_study.py            # writes BENCH_circuit.json
    python benchmarks/bench_circuit_study.py --smoke    # small adder, no floor
"""

import argparse
import time
from pathlib import Path

import repro.immunity.montecarlo as montecarlo
from repro.circuit_study import run_circuit_study
from repro.runtime import ResultCache

CIRCUIT = "adder:8"
TRIALS = 150
DRAWS = 2000
SEED = 2009

#: Required cold-vs-warm advantage: two cached cell corners are pure JSON
#: reads, while the cold run pays two Monte Carlo immunity analyses and
#: two waveform-fitted timing characterisations.
REQUIRED_WARM_SPEEDUP = 3.0


def run_warm_scenario(cache_dir, circuit=CIRCUIT, trials=TRIALS, draws=DRAWS,
                      timer=None):
    """Cold circuit study, then the warm re-run against the same store.

    Counts engine invocations by wrapping the per-cell Monte Carlo entry
    point, so "once per unique cell, never per instance" is a hard fact,
    not a timing inference.  ``timer(fn) -> (result, seconds)`` lets the
    pytest-benchmark path own the warm measurement.
    """
    study = dict(circuit=circuit, trials=trials, draws=draws, seed=SEED)
    store = ResultCache(cache_dir)

    calls = []
    real = montecarlo.run_immunity_trials

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    if timer is None:
        def timer(fn):
            start = time.perf_counter()
            result = fn()
            return result, time.perf_counter() - start

    montecarlo.run_immunity_trials = counting
    try:
        cold, cold_seconds = timer(
            lambda: run_circuit_study(cache=store, **study))
        cold_calls, calls[:] = len(calls), ()
        warm, warm_seconds = timer(
            lambda: run_circuit_study(cache=store, **study))
        warm_calls = len(calls)
    finally:
        montecarlo.run_immunity_trials = real

    return {
        "benchmark": "circuit_study",
        "engine": "circuit",
        "circuit": circuit,
        "trials": trials,
        "draws": draws,
        "instances": cold.instances,
        "unique_cells": cold.unique_cells,
        "cells_cold_executed": cold_calls,
        "cells_warm_executed": warm_calls,
        "cold_status": cold.provenance.cache,
        "warm_status": warm.provenance.cache,
        "bit_identical": warm == cold,
        "functional_yield": cold.functional_yield,
        "critical_path_delay_s": cold.critical_path_delay_s,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(cold_seconds / warm_seconds, 2),
    }


def circuit_envelope(report, floor):
    """The scenario report as a ``repro-bench/v1`` envelope."""
    from bench_schema import bench_envelope

    return bench_envelope(
        name="circuit_study",
        params={"engine": "circuit", "circuit": report["circuit"],
                "trials": report["trials"], "draws": report["draws"],
                "seed": SEED},
        wall_seconds={"cold": report["cold_seconds"],
                      "warm": report["warm_seconds"]},
        ns_per_unit={"unit": "instance",
                     "cold": round(report["cold_seconds"]
                                   / report["instances"] * 1e9),
                     "warm": round(report["warm_seconds"]
                                   / report["instances"] * 1e9)},
        speedup=report["warm_speedup"],
        floor=floor,
        detail=report,
    )


def check_warm_contract(report, enforce_floor=True):
    """The hard assertions shared by pytest and standalone runs."""
    assert report["cold_status"] == "miss"
    assert report["warm_status"] == "hit"
    assert report["instances"] > report["unique_cells"], report
    # Once per unique cell on the cold pass, zero engine work warm.
    assert report["cells_cold_executed"] == report["unique_cells"], report
    assert report["cells_warm_executed"] == 0, report
    assert report["bit_identical"] is True, report
    if enforce_floor:
        assert report["warm_speedup"] >= REQUIRED_WARM_SPEEDUP, report


def test_warm_rerun_serves_every_cell_from_the_store(benchmark, tmp_path):
    """adder:8 cold: 2 engine calls for 72 instances; warm: 0, >=3x."""
    from conftest import record

    def timed(fn):
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start

    def warm_timer(fn):
        result = benchmark.pedantic(fn, iterations=1, rounds=1)
        return result, benchmark.stats.stats.mean

    # The cold study is plain timing; the warm re-run is the benchmark.
    state = {"first": True}

    def timer(fn):
        if state.pop("first", None):
            return timed(fn)
        return warm_timer(fn)

    report = run_warm_scenario(tmp_path / "store", timer=timer)
    measured = dict(report)
    measured.pop("benchmark", None)    # collides with the fixture arg
    record(benchmark, **measured)
    print()
    print(f"{report['circuit']}: {report['instances']} instances / "
          f"{report['unique_cells']} unique cells, cold "
          f"{report['cold_seconds']:.2f}s "
          f"({report['cells_cold_executed']} engine calls), warm "
          f"{report['warm_seconds']:.3f}s "
          f"({report['cells_warm_executed']} calls) -> "
          f"{report['warm_speedup']:.1f}x")
    check_warm_contract(report)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default=CIRCUIT)
    parser.add_argument("--trials", type=int, default=TRIALS)
    parser.add_argument("--draws", type=int, default=DRAWS)
    parser.add_argument("--smoke", action="store_true",
                        help="small adder, skip the speedup floor "
                             "(CI smoke)")
    parser.add_argument("--out", default=None,
                        help="snapshot path (default: repo-root "
                             "BENCH_circuit.json; '-' to skip)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.circuit, args.trials, args.draws = "adder:2", 20, 200

    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        report = run_warm_scenario(Path(scratch) / "store",
                                   circuit=args.circuit,
                                   trials=args.trials,
                                   draws=args.draws)
    check_warm_contract(report, enforce_floor=not args.smoke)
    from bench_schema import write_envelope

    envelope = circuit_envelope(
        report, floor=None if args.smoke else REQUIRED_WARM_SPEEDUP)
    write_envelope(envelope, args.out, "BENCH_circuit.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
