"""Delta-only sweep recompute against the persistent corner store.

Acceptance benchmark for PR 6 (corner-level content addressing): after a
cold 64-corner sweep has populated the store, re-running the sweep with
one axis value appended must

* execute **only the new corner** (proved by counting engine
  invocations, not by timing), and
* beat the cold full sweep by at least ``REQUIRED_DELTA_SPEEDUP`` — the
  63 cached corners are pure JSON reads.

Run under pytest-benchmark (``pytest benchmarks/bench_delta_sweep.py``)
or standalone to (re)generate the checked-in perf snapshot (a
``repro-bench/v1`` envelope — see ``bench_schema.py``)::

    python benchmarks/bench_delta_sweep.py            # writes BENCH_runtime.json
    python benchmarks/bench_delta_sweep.py --smoke    # small grid, no floor
"""

import argparse
import time
from pathlib import Path

import repro.immunity.montecarlo as montecarlo
from repro.runtime import ResultCache
from repro.study import SweepSpec, run_sweep_study

#: One 64-value axis; every canonical predecessor axis stays a singleton,
#: so appending a 65th value leaves the existing corners' spawned seeds —
#: and therefore their content addresses — untouched.
CORNERS = 64
TRIALS = 150
SEED = 2009

#: Required cold-vs-delta advantage at 64+ corners: recomputing 1 corner
#: plus reading 64 envelopes must be far cheaper than 64 Monte Carlo
#: corners.
REQUIRED_DELTA_SPEEDUP = 5.0


def _specs(corners):
    angles = tuple(1.0 + 0.5 * index for index in range(corners))
    base = SweepSpec.from_mapping({"max_angle_deg": angles})
    wider = SweepSpec.from_mapping({"max_angle_deg": angles + (89.0,)})
    return base, wider


def run_delta_scenario(cache_dir, corners=CORNERS, trials=TRIALS,
                       timer=None):
    """Cold full sweep, then the one-value-extended delta re-run.

    Counts engine invocations by wrapping the per-corner Monte Carlo
    entry point, so "only the new corner executed" is a hard fact, not a
    timing inference.  ``timer(fn) -> (result, seconds)`` lets the
    pytest-benchmark path own the delta measurement.
    """
    base, wider = _specs(corners)
    sweep = dict(engine="immunity", trials=trials, seed=SEED)
    store = ResultCache(cache_dir)

    calls = []
    real = montecarlo.run_immunity_trials

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    if timer is None:
        def timer(fn):
            start = time.perf_counter()
            result = fn()
            return result, time.perf_counter() - start

    montecarlo.run_immunity_trials = counting
    try:
        cold, cold_seconds = timer(
            lambda: run_sweep_study(base, cache=store, **sweep))
        cold_calls, calls[:] = len(calls), ()
        delta, delta_seconds = timer(
            lambda: run_sweep_study(wider, cache=store, **sweep))
        delta_calls = len(calls)
    finally:
        montecarlo.run_immunity_trials = real

    return {
        "benchmark": "delta_sweep",
        "engine": "immunity",
        "trials": trials,
        "corners_cold": corners,
        "corners_delta_total": corners + 1,
        "corners_cold_executed": cold_calls,
        "corners_delta_executed": delta_calls,
        "cold_status": cold.provenance.cache,
        "delta_status": delta.provenance.cache,
        "cold_seconds": round(cold_seconds, 4),
        "delta_seconds": round(delta_seconds, 4),
        "ns_per_corner_cold": round(cold_seconds / corners * 1e9),
        "ns_per_corner_delta": round(delta_seconds / (corners + 1) * 1e9),
        "delta_speedup": round(cold_seconds / delta_seconds, 2),
    }


def delta_envelope(report, floor):
    """The scenario report as a ``repro-bench/v1`` envelope."""
    from bench_schema import bench_envelope

    return bench_envelope(
        name="delta_sweep",
        params={"engine": "immunity", "corners": report["corners_cold"],
                "trials": report["trials"], "seed": SEED},
        wall_seconds={"cold": report["cold_seconds"],
                      "delta": report["delta_seconds"]},
        ns_per_unit={"unit": "corner",
                     "cold": report["ns_per_corner_cold"],
                     "delta": report["ns_per_corner_delta"]},
        speedup=report["delta_speedup"],
        floor=floor,
        detail=report,
    )


def check_delta_contract(report, enforce_floor=True):
    """The hard assertions shared by pytest and standalone runs."""
    assert report["cold_status"] == "miss"
    assert report["corners_cold_executed"] == report["corners_cold"]
    assert report["corners_delta_executed"] == 1, report
    expected = (f"partial:{report['corners_cold']}/"
                f"{report['corners_delta_total']}")
    assert report["delta_status"] == expected, report
    if enforce_floor and report["corners_cold"] >= 64:
        assert report["delta_speedup"] >= REQUIRED_DELTA_SPEEDUP, report


def test_delta_rerun_executes_only_the_new_corner(benchmark, tmp_path):
    """64-corner cold sweep, +1 value: 1 engine call, >=5x faster."""
    from conftest import record

    measured = {}

    def timed(fn):
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start

    def delta_timer(fn):
        result = benchmark.pedantic(fn, iterations=1, rounds=1)
        return result, benchmark.stats.stats.mean

    # The cold sweep is plain timing; the delta re-run is the benchmark.
    state = {"first": True}

    def timer(fn):
        if state.pop("first", None):
            return timed(fn)
        return delta_timer(fn)

    report = run_delta_scenario(tmp_path / "store", timer=timer)
    measured.update(report)
    measured.pop("benchmark", None)    # collides with the fixture arg
    record(benchmark, **measured)
    print()
    print(f"{report['corners_cold']} corners cold "
          f"{report['cold_seconds']:.2f}s, +1 corner delta "
          f"{report['delta_seconds']:.3f}s -> "
          f"{report['delta_speedup']:.1f}x "
          f"({report['corners_delta_executed']} engine call)")
    check_delta_contract(report)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corners", type=int, default=CORNERS)
    parser.add_argument("--trials", type=int, default=TRIALS)
    parser.add_argument("--smoke", action="store_true",
                        help="small grid, skip the speedup floor "
                             "(CI smoke)")
    parser.add_argument("--out", default=None,
                        help="snapshot path (default: repo-root "
                             "BENCH_runtime.json; '-' to skip)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.corners, args.trials = 8, 40

    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        report = run_delta_scenario(Path(scratch) / "store",
                                    corners=args.corners,
                                    trials=args.trials)
    check_delta_contract(report, enforce_floor=not args.smoke)
    from bench_schema import write_envelope

    envelope = delta_envelope(
        report, floor=None if args.smoke else REQUIRED_DELTA_SPEEDUP)
    write_envelope(envelope, args.out, "BENCH_runtime.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
