"""E7 — headline EDP / EDAP summary (abstract and conclusions).

Abstract: >4× delay, 2× energy/cycle, >30 % area saving for the inverter;
conclusions: >10× EDP and ~12× EDAP improvement.
"""

from conftest import record

from repro.analysis import run_edp_summary


def test_edp_edap_headline(benchmark):
    summary = benchmark(run_edp_summary)
    record(
        benchmark,
        delay_gain=round(summary.delay_gain_optimal, 3),
        energy_gain=round(summary.energy_gain_optimal, 3),
        area_gain=round(summary.area_gain, 3),
        edp_gain_optimal=round(summary.edp_gain_optimal, 3),
        edp_gain_best=round(summary.edp_gain_best, 3),
        edap_gain_measured=round(summary.edap_gain_optimal, 3),
        edap_gain_paper=summary.paper_edap_gain,
        edp_gain_paper=summary.paper_edp_gain,
    )
    assert summary.delay_gain_optimal > 4.0
    assert summary.edp_gain_best > 10.0
    assert abs(summary.edap_gain_optimal - summary.paper_edap_gain) < 2.0
