"""E3 — Figure 2: functional immunity to mispositioned CNTs.

The paper's claim: the conventional layout of Figure 2(b) is vulnerable to
mispositioned CNTs, while the etched-region baseline [6] and the new compact
layouts keep 100 % functionality.  The benchmark runs the Monte Carlo defect
model over all three techniques for NAND2 and NAND3 on the batched engine;
every technique is attacked by the same defect populations (shared seed).
"""

import pytest
from conftest import record

from repro.immunity import compare_techniques, format_comparison


@pytest.mark.parametrize("gate_name", ["NAND2", "NAND3"])
def test_immunity_monte_carlo(benchmark, gate_name):
    results = benchmark.pedantic(
        compare_techniques,
        kwargs=dict(gate_name=gate_name, trials=1000, cnts_per_trial=4,
                    seed=2009, engine="batch"),
        iterations=1,
        rounds=1,
    )
    print()
    print(f"{gate_name}:")
    print(format_comparison(results))
    record(
        benchmark,
        gate=gate_name,
        engine="batch",
        trials=1000,
        vulnerable_failure_rate=round(results["vulnerable"].failure_rate, 3),
        baseline_failure_rate=results["baseline"].failure_rate,
        compact_failure_rate=results["compact"].failure_rate,
        paper_claim="immune layouts keep 100% functionality",
    )
    assert results["compact"].immune
    assert results["baseline"].immune
    assert results["vulnerable"].failure_rate > 0.0
