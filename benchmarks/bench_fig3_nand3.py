"""E2 — Figure 3: the NAND3 compaction walk-through (16.67 % at 4 λ)."""

from conftest import record

from repro.analysis import run_fig3_nand3


def test_fig3_nand3_compaction(benchmark):
    result = benchmark(run_fig3_nand3)
    record(
        benchmark,
        measured_saving=round(result["measured_saving"], 4),
        paper_saving=result["paper_saving"],
        baseline_area_lambda2=result["baseline_area"],
        compact_area_lambda2=result["compact_area"],
    )
    assert abs(result["measured_saving"] - result["paper_saving"]) < 0.01
