"""E2 — Figure 3: the NAND3 compaction walk-through (16.67 % at 4 λ),
plus the NAND3 waveform parity check of the batch transient engine."""

import numpy as np
from conftest import record

from repro.analysis import run_fig3_nand3
from repro.cells import characterize_sweep


def test_fig3_nand3_compaction(benchmark):
    result = benchmark(run_fig3_nand3)
    record(
        benchmark,
        measured_saving=round(result.measured_saving, 4),
        paper_saving=result.paper_saving,
        baseline_area_lambda2=result.baseline_area,
        compact_area_lambda2=result.compact_area,
    )
    assert abs(result.measured_saving - result.paper_saving) < 0.01


def test_fig3_nand3_transient_parity(benchmark):
    """The NAND3 stimulus of the waveform walk-through, batch vs loop:
    bit-identical measured delays on both transient engines."""

    def sweep(engine):
        return characterize_sweep(
            gate_names=("NAND3",), drive_strengths=(1.0, 2.0),
            load_capacitances_f=(2e-15,), input_slews_s=(5e-12,),
            engine=engine,
        )

    batch = benchmark.pedantic(sweep, args=("batch",), iterations=1, rounds=1)
    loop = sweep("loop")
    identical = all(
        b.delay_rise_s == l.delay_rise_s
        and b.delay_fall_s == l.delay_fall_s
        and b.energy_per_cycle_j == l.energy_per_cycle_j
        for b, l in zip(batch.points, loop.points)
    )
    point = batch.point("NAND3", 1.0, 2e-15, 5e-12, "nominal")
    record(
        benchmark,
        delay_rise_ps=round(point.delay_rise_s * 1e12, 3),
        delay_fall_ps=round(point.delay_fall_s * 1e12, 3),
        energy_fj=round(point.energy_per_cycle_j * 1e15, 4),
        identical_to_loop=identical,
    )
    assert identical
    assert 0 < point.delay_fall_s < 100e-12
    assert np.all(batch.grid("worst_delay_s") > 0)
