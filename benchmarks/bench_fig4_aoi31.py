"""E4 — Figure 4: the generalised AOI31 misaligned-CNT-immune layout."""

from conftest import record

from repro.analysis import run_fig4_aoi31


def test_fig4_aoi31_layout(benchmark):
    result = benchmark(run_fig4_aoi31)
    record(
        benchmark,
        pun_contacts=result["pun_contacts"],
        pdn_contacts=result["pdn_contacts"],
        scheme1_area_lambda2=result["scheme1_area"],
        scheme2_area_lambda2=result["scheme2_area"],
        etched_regions=result["requires_etched_regions"],
        pdn_width_factors=str(result["pdn_width_factors"]),
        pun_width_factors=str(result["pun_width_factors"]),
    )
    # The compact construction needs no etched regions at all, and the
    # symmetric sizing widens the single-transistor PDN branch as in the
    # paper's Figure 4(b).
    assert result["requires_etched_regions"] == 0
    assert max(result["pdn_width_factors"]) > min(result["pdn_width_factors"])
