"""E4 — Figure 4: the generalised AOI31 misaligned-CNT-immune layout,
plus the AOI31 waveform parity check of the batch transient engine."""

from conftest import record

from repro.analysis import run_fig4_aoi31
from repro.cells import characterize_sweep


def test_fig4_aoi31_layout(benchmark):
    result = benchmark(run_fig4_aoi31)
    record(
        benchmark,
        pun_contacts=result.pun_contacts,
        pdn_contacts=result.pdn_contacts,
        scheme1_area_lambda2=result.scheme1_area,
        scheme2_area_lambda2=result.scheme2_area,
        etched_regions=result.requires_etched_regions,
        pdn_width_factors=str(list(result.pdn_width_factors)),
        pun_width_factors=str(list(result.pun_width_factors)),
    )
    # The compact construction needs no etched regions at all, and the
    # symmetric sizing widens the single-transistor PDN branch as in the
    # paper's Figure 4(b).
    assert result.requires_etched_regions == 0
    assert max(result.pdn_width_factors) > min(result.pdn_width_factors)


def test_fig4_aoi31_transient_parity(benchmark):
    """The AOI31 waveforms, batch vs loop: the complex-gate netlist
    (series/parallel PUN and PDN with internal nodes) measures
    bit-identically on both transient engines."""

    def sweep(engine):
        return characterize_sweep(
            gate_names=("AOI31",), drive_strengths=(1.0,),
            load_capacitances_f=(1e-15, 4e-15), input_slews_s=(5e-12,),
            engine=engine,
        )

    batch = benchmark.pedantic(sweep, args=("batch",), iterations=1, rounds=1)
    loop = sweep("loop")
    identical = all(
        b.delay_rise_s == l.delay_rise_s
        and b.delay_fall_s == l.delay_fall_s
        and b.energy_per_cycle_j == l.energy_per_cycle_j
        for b, l in zip(batch.points, loop.points)
    )
    light, heavy = batch.points
    record(
        benchmark,
        delay_fall_1ff_ps=round(light.delay_fall_s * 1e12, 3),
        delay_fall_4ff_ps=round(heavy.delay_fall_s * 1e12, 3),
        identical_to_loop=identical,
    )
    assert identical
    assert heavy.worst_delay_s > light.worst_delay_s
