"""E5 — Figure 7 / Case study 1: FO4 delay and energy gains vs number of CNTs.

Sweeps the number of tubes per device at fixed gate width, locating the
optimal pitch, and compares against the paper's anchors (2.75× / 6.3× at one
tube, 4.2× / 2× at the ~5 nm optimal pitch, 1.4× inverter area gain).
"""

from conftest import record

from repro.analysis import format_fig7, run_fig7_fo4, run_pitch_sensitivity
from repro.circuit import cmos_inverter, cnfet_inverter, fo4_metrics_transient
from repro.devices import FO4_GATE_WIDTH_NM, calibrated_cnfet_parameters, paper_anchors


def test_fig7_fo4_sweep(benchmark):
    result = benchmark(run_fig7_fo4, 20)
    print()
    print(format_fig7(result))
    anchors = paper_anchors()
    record(
        benchmark,
        delay_gain_single_measured=round(result["single_cnt"]["delay_gain"], 3),
        delay_gain_single_paper=anchors.fo4_delay_gain_single_cnt,
        energy_gain_single_measured=round(result["single_cnt"]["energy_gain"], 3),
        energy_gain_single_paper=anchors.fo4_energy_gain_single_cnt,
        delay_gain_optimal_measured=round(result["optimal"]["delay_gain"], 3),
        delay_gain_optimal_paper=anchors.fo4_delay_gain_optimal,
        energy_gain_optimal_measured=round(result["optimal"]["energy_gain"], 3),
        energy_gain_optimal_paper=anchors.fo4_energy_gain_optimal,
        optimal_pitch_measured_nm=round(result["optimal"]["pitch_nm"], 2),
        optimal_pitch_paper_nm=anchors.optimal_pitch_nm,
        inverter_area_gain_measured=round(result["inverter_area_gain"], 3),
        inverter_area_gain_paper=anchors.inverter_area_gain,
    )
    assert abs(result["optimal"]["delay_gain"] - anchors.fo4_delay_gain_optimal) < 0.5


def test_fig7_pitch_sensitivity(benchmark):
    """The paper's optimal pitch range: 4.5-5.5 nm with ~1 % delay change."""
    result = benchmark(run_pitch_sensitivity)
    record(
        benchmark,
        delay_variation_measured=round(result["delay_variation"], 4),
        delay_variation_paper=result["paper_variation"],
    )
    assert result["delay_variation"] < 0.05


def test_fo4_transient_cross_check(benchmark):
    """Waveform-level FO4 gain at the optimal pitch (cross-check of the
    analytical sweep with the transient simulator)."""

    def run():
        params = calibrated_cnfet_parameters()
        cnfet = fo4_metrics_transient(
            cnfet_inverter(6, FO4_GATE_WIDTH_NM, parameters=params)
        )
        cmos = fo4_metrics_transient(cmos_inverter())
        return cmos.delay_s / cnfet.delay_s, cmos.energy_per_cycle_j / cnfet.energy_per_cycle_j

    delay_gain, energy_gain = benchmark.pedantic(run, iterations=1, rounds=1)
    record(
        benchmark,
        transient_delay_gain=round(delay_gain, 3),
        transient_energy_gain=round(energy_gain, 3),
        paper_delay_gain=paper_anchors().fo4_delay_gain_optimal,
    )
    assert delay_gain > 3.0
