"""E5 — Figure 7 / Case study 1: FO4 delay and energy gains vs number of CNTs.

Sweeps the number of tubes per device at fixed gate width, locating the
optimal pitch, and compares against the paper's anchors (2.75× / 6.3× at one
tube, 4.2× / 2× at the ~5 nm optimal pitch, 1.4× inverter area gain).
"""

from conftest import record

from repro.analysis import (
    run_fig7_fo4,
    run_fo4_transient_sweep,
    run_pitch_sensitivity,
)
from repro.devices import paper_anchors


def test_fig7_fo4_sweep(benchmark):
    result = benchmark(run_fig7_fo4, 20)
    print()
    print(result)
    anchors = paper_anchors()
    record(
        benchmark,
        delay_gain_single_measured=round(result.single_cnt.delay_gain, 3),
        delay_gain_single_paper=anchors.fo4_delay_gain_single_cnt,
        energy_gain_single_measured=round(result.single_cnt.energy_gain, 3),
        energy_gain_single_paper=anchors.fo4_energy_gain_single_cnt,
        delay_gain_optimal_measured=round(result.optimal.delay_gain, 3),
        delay_gain_optimal_paper=anchors.fo4_delay_gain_optimal,
        energy_gain_optimal_measured=round(result.optimal.energy_gain, 3),
        energy_gain_optimal_paper=anchors.fo4_energy_gain_optimal,
        optimal_pitch_measured_nm=round(result.optimal.pitch_nm, 2),
        optimal_pitch_paper_nm=anchors.optimal_pitch_nm,
        inverter_area_gain_measured=round(result.inverter_area_gain, 3),
        inverter_area_gain_paper=anchors.inverter_area_gain,
    )
    assert abs(result.optimal.delay_gain - anchors.fo4_delay_gain_optimal) < 0.5


def test_fig7_pitch_sensitivity(benchmark):
    """The paper's optimal pitch range: 4.5-5.5 nm with ~1 % delay change."""
    result = benchmark(run_pitch_sensitivity)
    record(
        benchmark,
        delay_variation_measured=round(result.delay_variation, 4),
        delay_variation_paper=result.paper_variation,
    )
    assert result.delay_variation < 0.05


def test_fo4_transient_cross_check(benchmark):
    """Waveform-level FO4 gains across the CNT-count sweep (cross-check of
    the analytical sweep with the batch transient engine: every corner's
    chain plus the CMOS reference integrates in one vectorized batch)."""
    result = benchmark.pedantic(
        run_fo4_transient_sweep,
        kwargs=dict(tube_counts=(1, 2, 4, 6, 8)),
        iterations=1,
        rounds=1,
    )
    best = result.optimal
    single = result.sweep[0]
    record(
        benchmark,
        corners_in_batch=result.batch_size,
        transient_delay_gain_single=round(single.delay_gain, 3),
        transient_delay_gain_best=round(best.delay_gain, 3),
        transient_energy_gain_best=round(best.energy_gain, 3),
        best_pitch_nm=round(best.pitch_nm, 2),
        paper_delay_gain=paper_anchors().fo4_delay_gain_optimal,
    )
    # The waveform sweep reproduces the analytical trend: a single tube is
    # already faster than CMOS, and the densest measured corners gain >3x.
    assert single.delay_gain > 1.5
    assert best.delay_gain > 3.0
