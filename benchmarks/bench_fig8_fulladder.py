"""E6 — Figures 8/9 / Case study 2: the NAND2+INV full adder.

Runs the full logic-to-GDSII flow for scheme 1 and scheme 2 and compares
delay, energy and area against the equivalent 65 nm CMOS implementation
(paper: ~3.5× delay, ~1.5× energy, ~1.4× / ~1.6× area for schemes 1 / 2).
"""

from conftest import record

from repro.analysis import run_fulladder_case_study
from repro.circuit import analyse_netlist
from repro.flow import CNFETDesignKit, full_adder_netlist


def test_fulladder_case_study(benchmark):
    result = benchmark.pedantic(run_fulladder_case_study, iterations=1, rounds=1)
    print()
    print(result)
    paper = result.paper
    record(
        benchmark,
        delay_gain_measured=round(result.delay_gain, 3),
        delay_gain_paper=paper["delay_gain"],
        energy_gain_measured=round(result.energy_gain, 3),
        energy_gain_paper=paper["energy_gain"],
        area_gain_scheme1_measured=round(result.area_gain_scheme1, 3),
        area_gain_scheme1_paper=paper["area_gain_scheme1"],
        area_gain_scheme2_measured=round(result.area_gain_scheme2, 3),
        area_gain_scheme2_paper=paper["area_gain_scheme2"],
    )
    assert result.delay_gain > 2.5
    assert result.area_gain_scheme2 > result.area_gain_scheme1 > 1.0


def test_fulladder_measured_timing_flow(benchmark):
    """The full-adder flow on a *measured* timing library: the INV/NAND2
    cells are characterised on the batch transient engine
    (``timing_source="measured"``), the Liberty view records the origin,
    and the waveform-calibrated critical path stays in the same regime as
    the logical-effort estimate."""

    def run():
        kit = CNFETDesignKit(gate_set=("INV", "NAND2"),
                             drive_strengths=(1.0, 2.0, 4.0),
                             scheme=1, timing_source="measured")
        result = kit.run_flow(full_adder_netlist())
        return kit, result

    kit, result = benchmark.pedantic(run, iterations=1, rounds=1)
    reference = CNFETDesignKit(gate_set=("INV", "NAND2"),
                               drive_strengths=(1.0, 2.0, 4.0), scheme=1)
    estimated = analyse_netlist(full_adder_netlist(),
                                reference.library.timing_library())
    measured_delay = result.report.timing.critical_path_delay
    record(
        benchmark,
        measured_delay_ps=round(measured_delay * 1e12, 2),
        logical_effort_delay_ps=round(
            estimated.critical_path_delay * 1e12, 2),
        delay_gain_vs_cmos=round(result.report.delay_gain_vs_cmos, 3),
    )
    assert "/* timing_source : measured */" in kit.liberty()
    assert measured_delay > 0
    # Waveform-measured and logical-effort delays agree within a factor 3.
    assert 1 / 3 < measured_delay / estimated.critical_path_delay < 3
    assert result.report.delay_gain_vs_cmos > 1.0
