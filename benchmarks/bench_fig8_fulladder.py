"""E6 — Figures 8/9 / Case study 2: the NAND2+INV full adder.

Runs the full logic-to-GDSII flow for scheme 1 and scheme 2 and compares
delay, energy and area against the equivalent 65 nm CMOS implementation
(paper: ~3.5× delay, ~1.5× energy, ~1.4× / ~1.6× area for schemes 1 / 2).
"""

from conftest import record

from repro.analysis import format_fulladder, run_fulladder_case_study


def test_fulladder_case_study(benchmark):
    result = benchmark.pedantic(run_fulladder_case_study, iterations=1, rounds=1)
    print()
    print(format_fulladder(result))
    paper = result["paper"]
    record(
        benchmark,
        delay_gain_measured=round(result["delay_gain"], 3),
        delay_gain_paper=paper["delay_gain"],
        energy_gain_measured=round(result["energy_gain"], 3),
        energy_gain_paper=paper["energy_gain"],
        area_gain_scheme1_measured=round(result["area_gain_scheme1"], 3),
        area_gain_scheme1_paper=paper["area_gain_scheme1"],
        area_gain_scheme2_measured=round(result["area_gain_scheme2"], 3),
        area_gain_scheme2_paper=paper["area_gain_scheme2"],
    )
    assert result["delay_gain"] > 2.5
    assert result["area_gain_scheme2"] > result["area_gain_scheme1"] > 1.0
