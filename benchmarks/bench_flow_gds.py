"""E8 — the CNFET Design Kit flow (Figures 5/6): logic to GDSII.

Benchmarks the end-to-end flow — library construction, mapping, placement,
timing/energy analysis and GDSII stream-out — on the full adder and on a
4-bit ripple-carry adder (a larger synthetic workload beyond the paper's
single-bit case study).
"""

from conftest import record

from repro.flow import CNFETDesignKit, full_adder_netlist, ripple_carry_adder_netlist
from repro.geometry import read_gds_summary

GATES = ("INV", "NAND2")
DRIVES = (1.0, 2.0, 4.0, 9.0)


def test_design_kit_construction(benchmark):
    kit = benchmark.pedantic(
        CNFETDesignKit, kwargs=dict(gate_set=GATES, drive_strengths=DRIVES),
        iterations=1, rounds=3,
    )
    record(benchmark, library_cells=len(kit.library), drc_violations=len(kit.run_drc()))
    assert kit.run_drc() == {}


def test_flow_full_adder(benchmark):
    kit = CNFETDesignKit(gate_set=GATES, drive_strengths=DRIVES)
    netlist = full_adder_netlist()
    result = benchmark(kit.run_flow, netlist)
    summary = read_gds_summary(result.gds_bytes)
    record(
        benchmark,
        gates=result.report.gate_count,
        area_gain=round(result.report.area_gain_vs_cmos, 3),
        delay_gain=round(result.report.delay_gain_vs_cmos, 3),
        energy_gain=round(result.report.energy_gain_vs_cmos, 3),
        gds_structures=len(summary),
    )
    assert result.report.area_gain_vs_cmos > 1.0


def test_flow_ripple_carry_adder(benchmark):
    kit = CNFETDesignKit(gate_set=GATES, drive_strengths=DRIVES, scheme=2)
    netlist = ripple_carry_adder_netlist(bits=4)
    result = benchmark.pedantic(kit.run_flow, args=(netlist,), iterations=1, rounds=1)
    record(
        benchmark,
        gates=result.report.gate_count,
        core_area_lambda2=round(result.report.placement.core_area, 1),
        area_gain=round(result.report.area_gain_vs_cmos, 3),
        delay_gain=round(result.report.delay_gain_vs_cmos, 3),
    )
    assert result.report.gate_count == 36
    assert result.report.placement.overlaps() == []
