"""Throughput of the batched Monte Carlo immunity engine.

Acceptance benchmark for the vectorized immunity subsystem: at 2000 trials
the ``engine="batch"`` path must be at least 10x faster than the seed
per-trial loop (``engine="loop"``), with identical failure counts for a
fixed seed — the compatibility contract both engines share.
"""

import time

import pytest
from conftest import record

from repro.core import assemble_cell
from repro.immunity import run_immunity_trials, sweep
from repro.logic import standard_gate

TRIALS = 2000
REQUIRED_SPEEDUP = 10.0


@pytest.mark.parametrize("gate_name", ["NAND2", "NAND3"])
def test_batched_engine_speedup(benchmark, gate_name):
    """Batch vs loop at 2000 trials: >=10x faster, identical results."""
    cell = assemble_cell(standard_gate(gate_name), technique="vulnerable",
                         scheme=1)

    start = time.perf_counter()
    loop_result = run_immunity_trials(
        cell, trials=TRIALS, cnts_per_trial=4, seed=2009, engine="loop"
    )
    loop_seconds = time.perf_counter() - start

    batch_result = benchmark.pedantic(
        run_immunity_trials,
        args=(cell,),
        kwargs=dict(trials=TRIALS, cnts_per_trial=4, seed=2009,
                    engine="batch"),
        iterations=1,
        rounds=3,
    )
    batch_seconds = benchmark.stats.stats.mean
    speedup = loop_seconds / batch_seconds

    record(
        benchmark,
        gate=gate_name,
        trials=TRIALS,
        loop_seconds=round(loop_seconds, 3),
        batch_seconds=round(batch_seconds, 4),
        speedup=round(speedup, 1),
        failures=batch_result.failures,
        identical_to_loop=batch_result == loop_result,
    )
    print()
    print(f"{gate_name}: loop {loop_seconds:.2f}s, batch {batch_seconds:.3f}s "
          f"-> {speedup:.0f}x, failures {batch_result.failures}/{TRIALS}")

    # The compatibility contract: same seed => byte-identical result fields.
    assert batch_result == loop_result
    assert batch_result.failures > 0
    assert speedup >= REQUIRED_SPEEDUP


def test_sweep_throughput(benchmark):
    """A 3x3 defect-parameter sweep (x3 techniques) on the batched engine."""
    points = benchmark.pedantic(
        sweep,
        kwargs=dict(
            gates=("NAND2",),
            techniques=("vulnerable", "baseline", "compact"),
            cnts_per_trial=(2, 4, 8),
            max_angle_deg=(5.0, 15.0, 30.0),
            trials=500,
            seed=2009,
        ),
        iterations=1,
        rounds=1,
    )
    total_trials = sum(point.result.trials for point in points)
    seconds = benchmark.stats.stats.mean
    record(
        benchmark,
        points=len(points),
        total_trials=total_trials,
        trials_per_second=round(total_trials / seconds),
    )
    assert len(points) == 27
    assert all(p.result.immune for p in points if p.technique == "compact")
