"""ns-per-corner-step of the vectorized batch transient kernel.

The ROADMAP's raw-speed item wants kernel regressions visible as a
number: this benchmark integrates a batch of topology-identical CNFET
inverter-chain corners through :func:`repro.circuit.run_transient_batch`
and reports the wall cost of one *corner-step* — one corner advanced by
one stability sub-step, the kernel's innermost unit of work.  It is a
tracking benchmark: there is no cached/uncached contrast, so the
envelope's ``speedup``/``floor`` are ``null`` and ``tools/bench_report.py``
reports the ns-per-corner-step drift informationally.

Run under pytest-benchmark (``pytest benchmarks/bench_kernel.py``) or
standalone to (re)generate the checked-in perf snapshot (a
``repro-bench/v1`` envelope — see ``bench_schema.py``)::

    python benchmarks/bench_kernel.py            # writes BENCH_kernel.json
    python benchmarks/bench_kernel.py --smoke    # tiny batch (CI smoke)
"""

import argparse
import time

from repro.circuit import (SimulationCase, build_inverter_chain,
                           cnfet_inverter, pulse_source, run_transient_batch)
from repro.circuit.simulator import stability_substep
from repro.devices import FO4_GATE_WIDTH_NM, calibrated_cnfet_parameters

BATCH = 16
STAGES = 3
STOP_TIME = 200e-12
TIME_STEP = 1e-12


def _cases(batch=BATCH, stages=STAGES):
    """``batch`` topology-identical inverter-chain corners, with supply
    and drive varying per case (exactly what the characterisation sweeps
    feed the kernel)."""
    parameters = calibrated_cnfet_parameters()
    cases = []
    for index in range(batch):
        vdd = 0.85 + 0.3 * (index / max(batch - 1, 1))
        tubes = 4 + (index % 4)
        inverter = cnfet_inverter(tubes, FO4_GATE_WIDTH_NM,
                                  parameters=parameters)
        netlist = build_inverter_chain(inverter, stages=stages, fanout=4,
                                       vdd=vdd)
        initial = {f"n{i + 1}": vdd if i % 2 == 0 else 0.0
                   for i in range(stages)}
        source = pulse_source(vdd, delay=3e-12, rise_time=1e-12,
                              width=8e-12)
        cases.append(SimulationCase(netlist, {"in": source}, initial))
    return cases


def run_kernel_scenario(batch=BATCH, stop_time=STOP_TIME,
                        time_step=TIME_STEP, timer=None):
    """One measured batch integration, normalised to corner-steps.

    A corner-step is one case advanced by one stability sub-step; the
    count is exact (``batch * round(stop_time / substep)``), so the
    ns-per-corner-step figure is a property of the kernel, not of the
    batch geometry.  ``timer(fn) -> (result, seconds)`` lets the
    pytest-benchmark path own the measurement.
    """
    cases = _cases(batch=batch)
    # Warm-up once so one-time costs (NumPy dispatch, allocator) don't
    # pollute the tracking number.
    run_transient_batch(cases, stop_time, time_step)

    if timer is None:
        def timer(fn):
            start = time.perf_counter()
            result = fn()
            return result, time.perf_counter() - start

    results, seconds = timer(
        lambda: run_transient_batch(cases, stop_time, time_step))

    substep = stability_substep(stop_time, time_step)
    substeps = round(stop_time / substep)
    corner_steps = batch * substeps
    return {
        "benchmark": "kernel",
        "engine": "transient-batch",
        "batch": batch,
        "stages": STAGES,
        "stop_time_s": stop_time,
        "time_step_s": time_step,
        "substep_s": substep,
        "substeps_per_case": substeps,
        "corner_steps": corner_steps,
        "cases_returned": len(results),
        "wall_seconds": round(seconds, 4),
        "ns_per_corner_step": round(seconds / corner_steps * 1e9, 2),
    }


def check_kernel_contract(report):
    """The hard assertions shared by pytest and standalone runs."""
    assert report["cases_returned"] == report["batch"], report
    assert report["substeps_per_case"] > 0, report
    assert report["ns_per_corner_step"] > 0, report


def kernel_envelope(report):
    """The scenario report as a ``repro-bench/v1`` envelope."""
    from bench_schema import bench_envelope

    return bench_envelope(
        name="kernel",
        params={"engine": "transient-batch", "batch": report["batch"],
                "stages": report["stages"],
                "stop_time_s": report["stop_time_s"],
                "time_step_s": report["time_step_s"]},
        wall_seconds={"batch": report["wall_seconds"]},
        ns_per_unit={"unit": "corner-step",
                     "batch": report["ns_per_corner_step"]},
        speedup=None,
        floor=None,
        detail=report,
    )


def test_kernel_ns_per_corner_step(benchmark, tmp_path):
    """Small batch through the kernel; tracks ns per corner-step."""
    from conftest import record

    def timer(fn):
        result = benchmark.pedantic(fn, iterations=1, rounds=1)
        return result, benchmark.stats.stats.mean

    report = run_kernel_scenario(batch=4, stop_time=40e-12, timer=timer)
    measured = dict(report)
    measured.pop("benchmark", None)    # collides with the fixture arg
    record(benchmark, **measured)
    print()
    print(f"{report['batch']} cases x {report['substeps_per_case']} "
          f"substeps = {report['corner_steps']} corner-steps in "
          f"{report['wall_seconds']:.3f}s -> "
          f"{report['ns_per_corner_step']:.1f} ns/corner-step")
    check_kernel_contract(report)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=BATCH)
    parser.add_argument("--stop-time", type=float, default=STOP_TIME)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny batch (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="snapshot path (default: repo-root "
                             "BENCH_kernel.json; '-' to skip)")
    args = parser.parse_args(argv)
    if args.smoke:
        args.batch, args.stop_time = 4, 40e-12

    report = run_kernel_scenario(batch=args.batch, stop_time=args.stop_time)
    check_kernel_contract(report)
    from bench_schema import write_envelope

    write_envelope(kernel_envelope(report), args.out, "BENCH_kernel.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
