"""Throughput of the runtime layer: sharded sweeps and the warm cache.

Acceptance benchmark for the ``repro.runtime`` subsystem:

* sharding a sweep over the scheduler (``jobs>1``) must stay
  **bit-identical** to the serial run and, on multi-core hosts, speed it
  up (the floor scales with the cores actually available — single-core
  CI containers only assert identity);
* a warm-cache re-run must return the identical typed result **without
  invoking the engine at all**, and must beat the cold run by a wide
  margin (the cache read is pure JSON I/O).
"""

import os
import time

import pytest
from conftest import record

import repro.immunity.montecarlo as montecarlo
from repro.runtime import ResultCache
from repro.study import SweepSpec, run_sweep_study

#: Enough corners x trials for scheduling overhead to amortise.
SWEEP = dict(engine="immunity", trials=400, seed=2009)
SPEC = SweepSpec.from_mapping({
    "technique": ("vulnerable", "baseline", "compact"),
    "cnts_per_trial": (2, 4, 8),
    "max_angle_deg": (5.0, 15.0, 30.0),
})

#: Required warm-cache advantage over recomputing: reading one JSON entry
#: must be far cheaper than 27 corners x 400 Monte Carlo trials.
REQUIRED_CACHE_SPEEDUP = 5.0


def test_sharded_sweep_scaling(benchmark):
    """jobs=N vs jobs=1: bit-identical, faster when cores allow."""
    cores = os.cpu_count() or 1
    jobs = min(4, cores)

    start = time.perf_counter()
    serial = run_sweep_study(SPEC, **SWEEP)
    serial_seconds = time.perf_counter() - start

    sharded = benchmark.pedantic(
        run_sweep_study,
        args=(SPEC,),
        kwargs=dict(jobs=jobs, **SWEEP),
        iterations=1,
        rounds=1,
    )
    sharded_seconds = benchmark.stats.stats.mean
    speedup = serial_seconds / sharded_seconds

    record(
        benchmark,
        corners=len(SPEC),
        jobs=jobs,
        cores=cores,
        serial_seconds=round(serial_seconds, 3),
        sharded_seconds=round(sharded_seconds, 3),
        speedup=round(speedup, 2),
        identical_to_serial=sharded == serial,
    )
    print()
    print(f"{len(SPEC)} corners: serial {serial_seconds:.2f}s, "
          f"jobs={jobs} {sharded_seconds:.2f}s -> {speedup:.2f}x "
          f"({cores} cores)")

    # The determinism contract is unconditional; the speedup floor only
    # applies where there are cores to win on.
    assert sharded == serial
    if cores >= 4:
        assert speedup >= 1.5


def test_warm_cache_skips_the_engine(benchmark, tmp_path, monkeypatch):
    """Second run: identical typed result, zero engine invocations."""
    cache = ResultCache(tmp_path / "store")

    start = time.perf_counter()
    cold = run_sweep_study(SPEC, cache=cache, **SWEEP)
    cold_seconds = time.perf_counter() - start
    assert cold.provenance.cache == "miss"

    def poisoned(*args, **kwargs):
        raise AssertionError("engine invoked on a warm cache")

    monkeypatch.setattr(montecarlo, "sweep", poisoned)
    monkeypatch.setattr(montecarlo, "run_immunity_trials", poisoned)

    warm = benchmark.pedantic(
        run_sweep_study,
        args=(SPEC,),
        kwargs=dict(cache=cache, **SWEEP),
        iterations=1,
        rounds=3,
    )
    warm_seconds = benchmark.stats.stats.mean
    speedup = cold_seconds / warm_seconds
    stats = cache.stats()

    record(
        benchmark,
        cold_seconds=round(cold_seconds, 3),
        warm_seconds=round(warm_seconds, 4),
        speedup=round(speedup, 1),
        cache_hits=stats.hits,
        identical_to_cold=warm == cold,
    )
    print()
    print(f"cold {cold_seconds:.2f}s, warm {warm_seconds:.4f}s "
          f"-> {speedup:.0f}x, {stats.hits} hits")

    assert warm.provenance.cache == "hit"
    assert warm == cold
    assert stats.hits >= 1
    assert speedup >= REQUIRED_CACHE_SPEEDUP
