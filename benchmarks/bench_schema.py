"""``repro-bench/v1``: the one envelope every benchmark writer emits.

Before this module each ``benchmarks/bench_*.py`` invented its own flat
report, so the checked-in ``BENCH_*.json`` snapshots could not be
compared, diffed, or regression-gated uniformly.  Now every writer
funnels through :func:`bench_envelope`:

* ``name`` / ``params`` — which benchmark, at what configuration;
* ``wall_seconds`` — the named wall-clock measurements (``cold``,
  ``warm``, ``delta``, ...);
* ``ns_per_unit`` — the normalised cost ``{"unit": <what>, ...}`` the
  ROADMAP's raw-speed tracking wants (ns per corner, per corner-step);
* ``speedup`` — the benchmark's headline ratio (``null`` for
  tracking-only benchmarks with no cached/uncached contrast);
* ``floor`` — the minimum acceptable ``speedup`` (``null`` in smoke
  runs and for tracking-only benchmarks), which is what
  ``tools/bench_report.py`` gates CI on;
* ``detail`` — the benchmark's full legacy report, kept verbatim so no
  information is lost in the unification.

``tools/bench_report.py`` diffs a fresh envelope against the checked-in
snapshot and exits non-zero when the current speedup falls below the
snapshot's floor.
"""

import json
from pathlib import Path

BENCH_SCHEMA = "repro-bench/v1"

REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_envelope(name, params, wall_seconds, ns_per_unit=None,
                   speedup=None, floor=None, detail=None):
    """Assemble one ``repro-bench/v1`` document (plain JSON types only)."""
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "params": dict(params),
        "wall_seconds": {key: round(float(value), 4)
                         for key, value in wall_seconds.items()},
        "ns_per_unit": dict(ns_per_unit) if ns_per_unit else None,
        "speedup": None if speedup is None else round(float(speedup), 2),
        "floor": None if floor is None else float(floor),
        "detail": dict(detail) if detail else {},
    }


def write_envelope(envelope, out, default_filename):
    """Print the envelope; write it unless ``out`` is ``'-'``.

    ``out=None`` targets the repo-root snapshot ``default_filename`` —
    the path convention every ``bench_*.py`` ``main()`` shares.
    """
    rendered = json.dumps(envelope, indent=2, sort_keys=True) + "\n"
    print(rendered, end="")
    if out != "-":
        target = Path(out) if out else REPO_ROOT / default_filename
        target.write_text(rendered, encoding="utf-8")
        print(f"wrote {target}")
    return rendered
