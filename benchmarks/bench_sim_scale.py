"""Throughput of the batched transient characterization engine.

Acceptance benchmark for the vectorized transient subsystem, mirroring
``bench_immunity_scale.py``: at a figure-sized batch (128 corners — the
scale of a (drive x load x slew x corner) characterisation grid or a
Figure 7 CNT-count sweep with supply corners) one
:func:`repro.circuit.run_transient_batch` call must be at least 10x
faster than integrating the corners one at a time through the scalar
loop engine, with bit-identical waveforms and supply charge for every
corner — the compatibility contract both engines share.
"""

import time

import numpy as np
from conftest import record

from repro.circuit import (
    TransientSimulator,
    build_inverter_chain,
    cnfet_inverter,
    pulse_source,
    run_transient_batch,
)
from repro.circuit.simulator import SimulationCase
from repro.devices import FO4_GATE_WIDTH_NM, calibrated_cnfet_parameters

BATCH_SIZE = 128
STOP_TIME = 20e-12
TIME_STEP = 0.5e-12
REQUIRED_SPEEDUP = 10.0


def _corner_cases():
    """128 corners of a 3-stage FO4 chain: CNT count x supply voltage."""
    params = calibrated_cnfet_parameters()
    cases = []
    for index in range(BATCH_SIZE):
        tubes = 1 + index % 16
        vdd = (0.9, 1.0, 1.1, 1.2)[index // (BATCH_SIZE // 4)]
        inverter = cnfet_inverter(tubes, FO4_GATE_WIDTH_NM, parameters=params)
        netlist = build_inverter_chain(inverter, stages=3, fanout=4, vdd=vdd)
        cases.append(
            SimulationCase(
                netlist,
                {"in": pulse_source(vdd, delay=4e-12, rise_time=1e-12,
                                    width=8e-12)},
                initial_conditions={"n1": vdd, "n2": 0.0, "n3": vdd},
            )
        )
    return cases


def test_batched_transient_speedup(benchmark):
    """Batch vs loop at 128 corners: >=10x faster, bit-identical results."""
    cases = _corner_cases()

    start = time.perf_counter()
    loop_results = [
        TransientSimulator(case.netlist, case.sources,
                           case.initial_conditions)
        .run(STOP_TIME, TIME_STEP, engine="loop")
        for case in cases
    ]
    loop_seconds = time.perf_counter() - start

    batch_results = benchmark.pedantic(
        run_transient_batch,
        args=(cases, STOP_TIME, TIME_STEP),
        iterations=1,
        rounds=2,
    )
    batch_seconds = benchmark.stats.stats.mean
    speedup = loop_seconds / batch_seconds

    # The compatibility contract: every waveform sample and the supply
    # charge of every corner are byte-identical across the engines.
    identical = all(
        loop.supply_charge == batch.supply_charge
        and all(
            np.array_equal(loop.waveforms[net], batch.waveforms[net])
            for net in loop.waveforms
        )
        for loop, batch in zip(loop_results, batch_results)
    )

    record(
        benchmark,
        corners=BATCH_SIZE,
        loop_seconds=round(loop_seconds, 3),
        batch_seconds=round(batch_seconds, 4),
        speedup=round(speedup, 1),
        identical_to_loop=identical,
    )
    print()
    print(f"{BATCH_SIZE} corners: loop {loop_seconds:.2f}s, "
          f"batch {batch_seconds:.3f}s -> {speedup:.0f}x")

    assert identical
    # Every corner actually switched its first stage (the batch did real
    # work; the slowest corners legitimately do not finish propagating to
    # n3 inside the short window).
    assert all(result.voltage("n1").min() < 0.5 * result.vdd
               for result in batch_results)
    assert speedup >= REQUIRED_SPEEDUP
