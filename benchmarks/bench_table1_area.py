"""E1 — Table 1: area of the compact layouts vs the etched-region baseline.

Regenerates every (cell, transistor-width) entry of Table 1 and records the
measured area saving next to the paper's value.
"""

from conftest import record

from repro.core import PAPER_TABLE1, format_table1, table1


def test_table1_area_savings(benchmark):
    rows = benchmark(table1)
    print()
    print(format_table1(rows))
    for row in rows:
        key = f"{row.cell}_{row.unit_width:g}lambda"
        record(
            benchmark,
            **{
                f"{key}_measured": round(row.measured_saving, 4),
                f"{key}_paper": row.paper_saving,
            },
        )
    nand_rows = [r for r in rows if r.cell.startswith("NAND")]
    assert all(r.error_vs_paper < 0.02 for r in nand_rows)
    assert all(r.measured_saving >= 0.0 for r in rows)


def test_table1_single_cell_generation_speed(benchmark):
    """Micro-benchmark: generating both layouts of one NAND3 entry."""
    from repro.core import area_saving
    from repro.logic import standard_gate

    row = benchmark(area_saving, standard_gate("NAND3"), 4.0)
    record(benchmark, measured_saving=round(row.measured_saving, 4),
           paper_saving=PAPER_TABLE1["NAND3"][4])
