"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and records the
paper-reported value next to the measured one in ``benchmark.extra_info`` so
the JSON output doubles as the reproduction record.
"""

import pytest


def record(benchmark, **values):
    """Attach paper-vs-measured values to a benchmark result."""
    for key, value in values.items():
        benchmark.extra_info[key] = value
