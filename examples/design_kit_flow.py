"""The CNFET Design Kit end to end: logic-to-GDSII for the full adder.

Reproduces Case study 2 (Figures 8/9): the NAND2 + inverter full adder is
mapped onto the imperfection-immune standard-cell library, placed with both
standardisation schemes, analysed for delay/energy, compared against the
65 nm CMOS reference, and streamed out as GDSII.  A 4-bit ripple-carry adder
is pushed through the same flow as a larger workload, and the Liberty view
is exported with *measured* timing: every cell characterised on the batch
transient engine rather than the logical-effort estimate.

Each emitted artifact (``full_adder_scheme{1,2}.gds``,
``cnfet65_compact.lib``) is asserted to exist and be structurally sound.

Run with ``PYTHONPATH=src python examples/design_kit_flow.py``.
"""

from __future__ import annotations

import os

from repro.flow import CNFETDesignKit, full_adder_netlist, full_adder_verilog, \
    ripple_carry_adder_netlist
from repro.geometry import read_gds_summary

OUTPUT_DIR = os.path.dirname(__file__)


def run_full_adder() -> None:
    print("=" * 68)
    print("Case study 2: NAND2 + INV full adder (Figure 8)")
    print("=" * 68)

    netlist = full_adder_netlist()
    for scheme in (1, 2):
        kit = CNFETDesignKit(gate_set=("INV", "NAND2"),
                             drive_strengths=(1.0, 2.0, 4.0, 7.0, 9.0),
                             scheme=scheme)
        result = kit.run_flow(netlist)
        print(f"\n--- scheme {scheme} ---")
        print(result.report.summary())
        print("cell usage:", ", ".join(f"{k}x{v}" for k, v in
                                       sorted(result.report.cell_usage.items())))
        gds_path = os.path.join(OUTPUT_DIR, f"full_adder_scheme{scheme}.gds")
        kit.write_gds(result, gds_path)
        structures = read_gds_summary(result.gds_bytes)
        assert os.path.exists(gds_path) and os.path.getsize(gds_path) > 0, \
            f"GDSII artifact {gds_path} was not written"
        assert structures, "GDSII stream contains no structures"
        print(f"GDSII: {gds_path} ({len(structures)} structures)")

    print("\nThe paper reports ~3.5x delay, ~1.5x energy and ~1.4x / ~1.6x area")
    print("gains for schemes 1 / 2; the report above shows the reproduced values.")


def run_ripple_carry_adder() -> None:
    print()
    print("=" * 68)
    print("Beyond the paper: 4-bit ripple-carry adder through the same flow")
    print("=" * 68)
    kit = CNFETDesignKit(gate_set=("INV", "NAND2"), drive_strengths=(1.0, 2.0, 4.0),
                         scheme=2)
    result = kit.run_flow(ripple_carry_adder_netlist(bits=4))
    print(result.report.summary())


def show_library_views() -> None:
    print()
    print("=" * 68)
    print("Library views (measured timing)")
    print("=" * 68)
    # timing_source="measured": every cell's delays come from batch
    # transient waveforms, and the Liberty export records the origin.
    kit = CNFETDesignKit(gate_set=("INV", "NAND2", "NAND3", "AOI21"),
                         drive_strengths=(1.0, 2.0),
                         timing_source="measured")
    liberty = kit.liberty()
    liberty_path = os.path.join(OUTPUT_DIR, "cnfet65_compact.lib")
    with open(liberty_path, "w") as stream:
        stream.write(liberty)
    assert os.path.exists(liberty_path) and os.path.getsize(liberty_path) > 0, \
        f"Liberty artifact {liberty_path} was not written"
    assert "/* timing_source : measured */" in liberty
    assert liberty.count("cell (") == 8
    print(f"Liberty timing view written to {liberty_path} "
          f"({liberty.count('cell (')} cells, measured delays)")
    print(f"DRC over the whole library: "
          f"{'clean' if not kit.run_drc() else kit.run_drc()}")
    print("\nStructural Verilog accepted by the flow, e.g.:")
    print("\n".join(full_adder_verilog().splitlines()[:6]) + "\n  ...")


def main() -> None:
    run_full_adder()
    run_ripple_carry_adder()
    show_library_views()


if __name__ == "__main__":
    main()
