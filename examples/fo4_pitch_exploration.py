"""Case study 1 (Figure 7): FO4 gains versus the number of CNTs per device.

Sweeps the number of tubes under a fixed gate width, prints the delay /
energy / EDP gains over the 65 nm CMOS inverter, locates the optimal CNT
pitch and cross-checks one point with the transient simulator — the same
procedure the paper uses to conclude that the optimal pitch is a technology
parameter that must be handed to the CNT growth process.

Run with ``python examples/fo4_pitch_exploration.py``.
"""

from __future__ import annotations

from repro.analysis import run_fig7_fo4, run_pitch_sensitivity
from repro.circuit import (
    cmos_inverter,
    cnfet_inverter,
    fo4_metrics,
    fo4_metrics_transient,
)
from repro.devices import FO4_GATE_WIDTH_NM, calibrated_cnfet_parameters, paper_anchors


def sweep():
    result = run_fig7_fo4(max_tubes=20)   # typed Fig7Result
    print("FO4 gains of the CNFET inverter over 65 nm CMOS (Figure 7 sweep)")
    print(result)                         # str(result) renders the table
    print()
    sensitivity = run_pitch_sensitivity()
    print(f"Delay variation across the 4.5-5.5 nm pitch window: "
          f"{sensitivity.delay_variation * 100:.1f}% "
          f"(paper: ~{sensitivity.paper_variation * 100:.0f}%)")
    print(f"Inverter area gain vs CMOS: {result.inverter_area_gain:.2f}x "
          f"(paper: {paper_anchors().inverter_area_gain}x)")
    return result


def transient_cross_check(result) -> None:
    best_tubes = int(result.optimal.num_tubes)
    params = calibrated_cnfet_parameters()
    cnfet = cnfet_inverter(best_tubes, FO4_GATE_WIDTH_NM, parameters=params)
    cmos = cmos_inverter()

    print()
    print("Transient-simulation cross-check at the optimal pitch:")
    for name, inverter in (("CNFET", cnfet), ("CMOS ", cmos)):
        analytic = fo4_metrics(inverter)
        waveform = fo4_metrics_transient(inverter)
        print(f"  {name}: FO4 = {waveform.delay_s * 1e12:6.2f} ps (waveform) vs "
              f"{analytic.delay_s * 1e12:6.2f} ps (analytical), "
              f"E/cycle = {waveform.energy_per_cycle_j * 1e15:.2f} fJ")

    cnfet_tr = fo4_metrics_transient(cnfet)
    cmos_tr = fo4_metrics_transient(cmos)
    print(f"  waveform-level delay gain : {cmos_tr.delay_s / cnfet_tr.delay_s:.2f}x")
    print(f"  waveform-level energy gain: "
          f"{cmos_tr.energy_per_cycle_j / cnfet_tr.energy_per_cycle_j:.2f}x")


def main() -> None:
    result = sweep()
    transient_cross_check(result)
    print()
    print("Interpretation: more tubes amortise the fixed parasitics until")
    print("inter-CNT screening erodes the per-tube drive; the crossover —")
    print("the optimal pitch — lands near 5 nm for this poly-gate / low-k")
    print("platform, exactly the technology-dependence the paper highlights.")


if __name__ == "__main__":
    main()
