"""Figure 2 scenario: why conventional CNFET layouts fail and the paper's
layouts do not.

Builds the same NAND2 cell with three layout techniques — the vulnerable
conventional layout, the etched-region baseline of Patil et al. [6], and the
paper's compact Euler-path layout — then bombards each with mispositioned
CNTs and reports how often the logic function is corrupted.  All Monte Carlo
runs use the batched engine, so thousands of trials stay interactive, and
every technique sees the same defect populations (shared seed).

Run with ``python examples/imperfection_immunity.py``.
"""

from __future__ import annotations

import numpy as np

from repro import SweepSpec, assemble_cell, run_sweep_study, standard_gate
from repro.immunity import (
    ImmunityChecker,
    compare_techniques,
    format_comparison,
    nominal_cnts,
    random_mispositioned_cnts,
)


def inspect_single_failure() -> None:
    """Show one concrete failing defect on the vulnerable layout."""
    gate = standard_gate("NAND2")
    cell = assemble_cell(gate, technique="vulnerable", scheme=1)
    annotations = cell.annotations()
    checker = ImmunityChecker(annotations)
    nominal = nominal_cnts(annotations, axis="x")

    rng = np.random.default_rng(2009)
    print("Hunting for a corrupting mispositioned CNT on the vulnerable layout...")
    for trial in range(1, 201):
        strays = random_mispositioned_cnts(annotations, 3, rng, axis="x")
        report = checker.check(nominal, strays, expected=gate.expected_truth_table())
        if not report.immune:
            print(f"  trial {trial}: function corrupted on "
                  f"{report.failure_count} input combination(s)")
            for assignment in report.failing_assignments[:2]:
                bits = ", ".join(f"{k}={int(v)}" for k, v in sorted(assignment.items()))
                observed = report.observed.row(assignment)
                expected = report.expected.row(assignment)
                observed_text = "X (conflict/floating)" if observed is None else int(observed)
                print(f"    inputs {bits}: expected {int(expected)}, got {observed_text}")
            break
    else:
        print("  no failure found in 200 trials (try more CNTs per trial)")
    print()


def monte_carlo_comparison() -> None:
    """The headline Figure 2 comparison across all three techniques.

    Each technique is attacked by the identical defect populations — the
    shared-seed contract of ``compare_techniques`` — and the batched engine
    makes 2000 trials per technique essentially free.
    """
    for gate_name in ("NAND2", "NAND3"):
        results = compare_techniques(gate_name, trials=2000, cnts_per_trial=4, seed=7)
        print(f"{gate_name} under mispositioned-CNT injection "
              f"(2000 trials, 4 CNTs each, shared defect populations):")
        print(format_comparison(results))
        print()


def defect_parameter_sweep() -> None:
    """Where does immunity break?  Sweep density, alignment and metallic
    residue in one batched run, through the unified Study sweep API (the
    same SweepSpec also drives the transient engine, and the result
    serializes: ``result.to_json("immunity_sweep.json")``)."""
    print("Sweeping defect density / alignment / metallic residue (NAND2):")
    spec = SweepSpec.from_mapping({
        "technique": ("vulnerable", "compact"),
        "cnts_per_trial": (2, 4, 8),
        "max_angle_deg": (5.0, 30.0),
        "metallic_fraction": (0.0, 0.25),
    })
    result = run_sweep_study(spec, engine="immunity", trials=1000, seed=2009)
    print(result)

    def select(predicate):
        return [r for r in result.records if predicate(r.corner.as_dict())]

    clean = select(lambda c: c["metallic_fraction"] == 0.0
                   and c["technique"] == "compact")
    dirty = select(lambda c: c["metallic_fraction"] > 0.0
                   and c["technique"] == "compact")
    print()
    print(f"  compact immune on all {len(clean)} metallic-free points: "
          f"{all(r.metrics['immune'] for r in clean)}")
    print(f"  with 25% metallic tubes even compact layouts fail "
          f"(worst {max(r.metrics['failure_rate'] for r in dirty) * 100:.0f}%) "
          f"- the paper's metallic-removal assumption is load-bearing.")
    print()


def main() -> None:
    inspect_single_failure()
    monte_carlo_comparison()
    defect_parameter_sweep()
    print("Conclusion: the Euler-path compact layouts (and the etched baseline)")
    print("keep 100% functionality, the conventional layout does not — the")
    print("compact layouts achieve this without any etched region or vertical")
    print("gating, which is the paper's core contribution.")


if __name__ == "__main__":
    main()
