"""Figure 2 scenario: why conventional CNFET layouts fail and the paper's
layouts do not.

Builds the same NAND2 cell with three layout techniques — the vulnerable
conventional layout, the etched-region baseline of Patil et al. [6], and the
paper's compact Euler-path layout — then bombards each with mispositioned
CNTs and reports how often the logic function is corrupted.

Run with ``python examples/imperfection_immunity.py``.
"""

from __future__ import annotations

import numpy as np

from repro import assemble_cell, standard_gate
from repro.immunity import (
    ImmunityChecker,
    compare_techniques,
    format_comparison,
    nominal_cnts,
    random_mispositioned_cnts,
)


def inspect_single_failure() -> None:
    """Show one concrete failing defect on the vulnerable layout."""
    gate = standard_gate("NAND2")
    cell = assemble_cell(gate, technique="vulnerable", scheme=1)
    annotations = cell.annotations()
    checker = ImmunityChecker(annotations)
    nominal = nominal_cnts(annotations, axis="x")

    rng = np.random.default_rng(2009)
    print("Hunting for a corrupting mispositioned CNT on the vulnerable layout...")
    for trial in range(1, 201):
        strays = random_mispositioned_cnts(annotations, 3, rng, axis="x")
        report = checker.check(nominal, strays, expected=gate.expected_truth_table())
        if not report.immune:
            print(f"  trial {trial}: function corrupted on "
                  f"{report.failure_count} input combination(s)")
            for assignment in report.failing_assignments[:2]:
                bits = ", ".join(f"{k}={int(v)}" for k, v in sorted(assignment.items()))
                observed = report.observed.row(assignment)
                expected = report.expected.row(assignment)
                observed_text = "X (conflict/floating)" if observed is None else int(observed)
                print(f"    inputs {bits}: expected {int(expected)}, got {observed_text}")
            break
    else:
        print("  no failure found in 200 trials (try more CNTs per trial)")
    print()


def monte_carlo_comparison() -> None:
    """The headline Figure 2 comparison across all three techniques."""
    for gate_name in ("NAND2", "NAND3"):
        results = compare_techniques(gate_name, trials=300, cnts_per_trial=4, seed=7)
        print(f"{gate_name} under mispositioned-CNT injection (300 trials, 4 CNTs each):")
        print(format_comparison(results))
        print()


def main() -> None:
    inspect_single_failure()
    monte_carlo_comparison()
    print("Conclusion: the Euler-path compact layouts (and the etched baseline)")
    print("keep 100% functionality, the conventional layout does not — the")
    print("compact layouts achieve this without any etched region or vertical")
    print("gating, which is the paper's core contribution.")


if __name__ == "__main__":
    main()
