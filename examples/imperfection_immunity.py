"""Figure 2 scenario: why conventional CNFET layouts fail and the paper's
layouts do not.

Builds the same NAND2 cell with three layout techniques — the vulnerable
conventional layout, the etched-region baseline of Patil et al. [6], and the
paper's compact Euler-path layout — then bombards each with mispositioned
CNTs and reports how often the logic function is corrupted.  All Monte Carlo
runs use the batched engine, so thousands of trials stay interactive, and
every technique sees the same defect populations (shared seed).

Run with ``python examples/imperfection_immunity.py``.
"""

from __future__ import annotations

import numpy as np

from repro import assemble_cell, standard_gate
from repro.immunity import (
    ImmunityChecker,
    compare_techniques,
    format_comparison,
    format_sweep,
    nominal_cnts,
    random_mispositioned_cnts,
    sweep,
)


def inspect_single_failure() -> None:
    """Show one concrete failing defect on the vulnerable layout."""
    gate = standard_gate("NAND2")
    cell = assemble_cell(gate, technique="vulnerable", scheme=1)
    annotations = cell.annotations()
    checker = ImmunityChecker(annotations)
    nominal = nominal_cnts(annotations, axis="x")

    rng = np.random.default_rng(2009)
    print("Hunting for a corrupting mispositioned CNT on the vulnerable layout...")
    for trial in range(1, 201):
        strays = random_mispositioned_cnts(annotations, 3, rng, axis="x")
        report = checker.check(nominal, strays, expected=gate.expected_truth_table())
        if not report.immune:
            print(f"  trial {trial}: function corrupted on "
                  f"{report.failure_count} input combination(s)")
            for assignment in report.failing_assignments[:2]:
                bits = ", ".join(f"{k}={int(v)}" for k, v in sorted(assignment.items()))
                observed = report.observed.row(assignment)
                expected = report.expected.row(assignment)
                observed_text = "X (conflict/floating)" if observed is None else int(observed)
                print(f"    inputs {bits}: expected {int(expected)}, got {observed_text}")
            break
    else:
        print("  no failure found in 200 trials (try more CNTs per trial)")
    print()


def monte_carlo_comparison() -> None:
    """The headline Figure 2 comparison across all three techniques.

    Each technique is attacked by the identical defect populations — the
    shared-seed contract of ``compare_techniques`` — and the batched engine
    makes 2000 trials per technique essentially free.
    """
    for gate_name in ("NAND2", "NAND3"):
        results = compare_techniques(gate_name, trials=2000, cnts_per_trial=4, seed=7)
        print(f"{gate_name} under mispositioned-CNT injection "
              f"(2000 trials, 4 CNTs each, shared defect populations):")
        print(format_comparison(results))
        print()


def defect_parameter_sweep() -> None:
    """Where does immunity break?  Sweep density, alignment and metallic
    residue in one batched run."""
    print("Sweeping defect density / alignment / metallic residue (NAND2):")
    points = sweep(
        gates=("NAND2",),
        techniques=("vulnerable", "compact"),
        cnts_per_trial=(2, 4, 8),
        max_angle_deg=(5.0, 30.0),
        metallic_fraction=(0.0, 0.25),
        trials=1000,
        seed=2009,
    )
    print(format_sweep(points))
    clean = [p for p in points if p.metallic_fraction == 0.0]
    dirty = [p for p in points if p.metallic_fraction > 0.0]
    print()
    print(f"  compact immune on all {sum(1 for p in clean if p.technique == 'compact')} "
          f"metallic-free points: "
          f"{all(p.result.immune for p in clean if p.technique == 'compact')}")
    print(f"  with 25% metallic tubes even compact layouts fail "
          f"(worst {max(p.failure_rate for p in dirty if p.technique == 'compact') * 100:.0f}%) "
          f"- the paper's metallic-removal assumption is load-bearing.")
    print()


def main() -> None:
    inspect_single_failure()
    monte_carlo_comparison()
    defect_parameter_sweep()
    print("Conclusion: the Euler-path compact layouts (and the etched baseline)")
    print("keep 100% functionality, the conventional layout does not — the")
    print("compact layouts achieve this without any etched region or vertical")
    print("gating, which is the paper's core contribution.")


if __name__ == "__main__":
    main()
