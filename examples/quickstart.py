"""Quickstart: generate a compact imperfection-immune CNFET cell and check it.

Walks the library's core loop in a few lines:

1. pick a logic function (a 3-input NAND),
2. generate the paper's compact Euler-path layout and the etched-region
   baseline for comparison,
3. run design-rule checking,
4. verify the layout is functionally immune to mispositioned CNTs,
5. measure the cell electrically across a multi-corner grid on the batch
   transient engine,
6. write the cell to GDSII (and assert the artifact really landed),
7. reproduce a paper figure through the typed Study API and round-trip it
   through JSON (the same payload ``python -m repro run fig3 --json`` emits).

Run with ``PYTHONPATH=src python examples/quickstart.py``.
"""

from __future__ import annotations

import os

from repro import assemble_cell, run_study, standard_gate
from repro.study import StudyResult
from repro.cells import characterize_sweep, cnfet_technology
from repro.core import area_saving
from repro.geometry import GDSWriter, GDSWriterOptions, Layout
from repro.immunity import run_immunity_trials
from repro.tech import CNFET_RULES, DRCChecker, cnfet_layer_stack


def main() -> None:
    gate = standard_gate("NAND3")
    print(f"Cell function : out = ({gate.pulldown_function})'")
    print(gate.truth_table().format())
    print()

    # 1. The compact (Euler-path) layout, assembled as a scheme-1 standard cell.
    cell = assemble_cell(gate, technique="compact", scheme=1, unit_width=4.0)
    print(f"Compact cell  : {cell.name}")
    print(f"  size        : {cell.width:g} x {cell.height:g} λ  "
          f"({cell.area:g} λ² = {CNFET_RULES.area_to_um2(cell.area):.3f} µm²)")
    print(f"  contacts    : {cell.pun.contact_count} (PUN) + {cell.pdn.contact_count} (PDN)")
    print(f"  etched regions needed: {cell.pun.etch_count + cell.pdn.etch_count}")

    # 2. How much smaller than the etched-region baseline of [6]?
    comparison = area_saving(gate, unit_width=4.0)
    print(f"  area saving vs baseline layout: {comparison.measured_saving * 100:.2f}% "
          f"(paper: {comparison.paper_saving * 100:.2f}%)")
    print()

    # 3. Design-rule check against the 65 nm λ rules.
    violations = DRCChecker(CNFET_RULES).check(cell.cell)
    print(f"DRC           : {'clean' if not violations else violations}")

    # 4. Monte Carlo immunity to mispositioned CNTs.
    immunity = run_immunity_trials(cell, trials=100, cnts_per_trial=4, seed=42)
    print(f"Immunity      : {immunity.failures}/{immunity.trials} corrupted trials "
          f"-> {'100% immune' if immunity.immune else 'NOT immune'}")
    print()

    # 5. Electrical characterisation: the whole (drive x load x corner)
    # grid of this cell integrates as ONE vectorized transient batch.
    sweep = characterize_sweep(
        gate_names=("NAND3",),
        drive_strengths=(1.0, 2.0),
        load_capacitances_f=(1e-15, 4e-15),
        corners={"tt": cnfet_technology(), "lv": cnfet_technology(vdd=0.9)},
    )
    nominal = sweep.point("NAND3", 1.0, 1e-15, 5e-12, "tt")
    print(f"Characterised : {len(sweep.points)} corners in one batch "
          f"(grid {sweep.grid().shape})")
    print(f"  NAND3 1X @ 1 fF, tt: {nominal.worst_delay_s * 1e12:.2f} ps, "
          f"{nominal.energy_per_cycle_j * 1e15:.3f} fJ/cycle")
    print()

    # 6. Stream the cell out as GDSII.
    layout = Layout("quickstart")
    layout.add_cell(cell.cell, top=True)
    writer = GDSWriter(cnfet_layer_stack(), GDSWriterOptions(unit_nm=CNFET_RULES.lambda_nm))
    path = os.path.join(os.path.dirname(__file__), "nand3_compact.gds")
    writer.write(layout, path)
    assert os.path.exists(path) and os.path.getsize(path) > 0, \
        f"GDSII artifact {path} was not written"
    print(f"GDSII written : {path} ({os.path.getsize(path)} bytes)")
    print()

    # 7. The same comparison as a typed, serializable Study result — what
    # `python -m repro run fig3 --json -` emits headlessly.
    study = run_study("fig3")
    print(f"Study API     : {study}")
    restored = StudyResult.from_json(study.to_json())
    assert restored == study, "JSON round-trip must be lossless"
    print(f"  provenance  : config {study.provenance.config_hash}, "
          f"package {study.provenance.package_version}")


if __name__ == "__main__":
    main()
