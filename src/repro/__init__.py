"""repro — reproduction of "Design of Compact Imperfection-Immune CNFET
Layouts for Standard-Cell-Based Logic Synthesis" (Bobba et al., DATE 2009).

The package is organised as:

* :mod:`repro.core` — the paper's contribution: Euler-path compact
  misaligned-CNT-immune layouts, the baseline/vulnerable references, area
  models and standard-cell assembly (schemes 1 and 2);
* :mod:`repro.immunity` — the mispositioned-CNT Monte Carlo analysis;
* :mod:`repro.devices` / :mod:`repro.circuit` — CNFET and 65 nm MOSFET
  compact models, transient simulation, FO4 analysis, gate-level timing;
* :mod:`repro.cells` / :mod:`repro.flow` — the CNFET Design Kit: standard
  cell library, Liberty export, technology mapping, placement and GDSII;
* :mod:`repro.tech` / :mod:`repro.geometry` / :mod:`repro.logic` /
  :mod:`repro.euler` — the supporting substrates;
* :mod:`repro.analysis` — the experiment runners that regenerate every
  table and figure of the paper's evaluation.

* :mod:`repro.study` — the typed Study layer: one sweep abstraction over
  both engines, frozen serializable results with provenance, the study
  registry and the ``python -m repro`` CLI;

* :mod:`repro.runtime` — the runtime layer: the deterministic parallel
  scheduler (``jobs=``/``workers=`` everywhere lower onto one pool), the
  content-addressed on-disk result cache, and the ``repro batch``
  manifest runner with cross-study dedup.

Quickstart::

    from repro import assemble_cell, standard_gate, CNFETDesignKit
    from repro.flow import full_adder_netlist

    cell = assemble_cell(standard_gate("NAND3"), scheme=2)
    kit = CNFETDesignKit(scheme=1)
    result = kit.run_flow(full_adder_netlist())
    print(result.report.summary())

Study API::

    from repro import run_study, SweepSpec, run_sweep_study

    fig7 = run_study("fig7")            # typed Fig7Result
    print(fig7)                         # renders the paper's table
    fig7.to_json("fig7.json")           # lossless round-trip
    spec = SweepSpec.parse(["cnts_per_trial=2,4,8"])
    sweep = run_sweep_study(spec, engine="immunity", trials=500)

Runtime layer::

    from repro import ResultCache, run_sweep_study, run_manifest

    cache = ResultCache(".repro-cache")
    fast = run_sweep_study(spec, trials=500, jobs=4, cache=cache)  # sharded
    warm = run_sweep_study(spec, trials=500, jobs=4, cache=cache)  # cache hit
    assert warm == fast and warm.provenance.cache == "hit"
    batch = run_manifest("manifest.json", cache=cache, jobs=4)
"""

from .analysis import run_all, run_fig7_fo4, run_fulladder_case_study, run_table1
from .cells import StandardCellLibrary, build_library
from .circuit import cmos_inverter, cnfet_inverter, compare_fo4, fo4_metrics
from .core import (
    StandardCell,
    assemble_cell,
    baseline_network_layout,
    compact_network_layout,
    inverter_area_gain,
    table1,
    vulnerable_network_layout,
)
from .devices import CNFET, MOSFET, calibrated_cnfet_parameters, paper_anchors
from .errors import ReproError, StudyError
from .flow import CNFETDesignKit, full_adder_netlist, parse_structural_verilog
from .immunity import compare_techniques, run_immunity_trials, sweep
from .logic import GateNetworks, parse_expression, standard_gate
from .runtime import ResultCache, run_manifest
from .study import (
    Corner,
    Provenance,
    StudyResult,
    SweepSpec,
    get_study,
    list_studies,
    parse_axis,
    run_study,
    run_sweep_study,
)
from .tech import CMOS_RULES, CNFET_RULES, cmos65_node, cnfet65_node

__version__ = "0.2.0"

__all__ = [
    # experiment runners (typed results)
    "run_all", "run_fig7_fo4", "run_fulladder_case_study", "run_table1",
    # the Study layer
    "run_study", "list_studies", "get_study", "run_sweep_study",
    "StudyResult", "Provenance", "SweepSpec", "Corner", "parse_axis",
    # the runtime layer
    "ResultCache", "run_manifest",
    # cells / circuit
    "StandardCellLibrary", "build_library",
    "cmos_inverter", "cnfet_inverter", "compare_fo4", "fo4_metrics",
    # core layouts
    "StandardCell", "assemble_cell", "baseline_network_layout",
    "compact_network_layout", "inverter_area_gain", "table1",
    "vulnerable_network_layout",
    # devices
    "CNFET", "MOSFET", "calibrated_cnfet_parameters", "paper_anchors",
    # errors
    "ReproError", "StudyError",
    # flow
    "CNFETDesignKit", "full_adder_netlist", "parse_structural_verilog",
    # immunity
    "compare_techniques", "run_immunity_trials", "sweep",
    # logic / tech
    "GateNetworks", "parse_expression", "standard_gate",
    "CNFET_RULES", "CMOS_RULES", "cnfet65_node", "cmos65_node",
    "__version__",
]
