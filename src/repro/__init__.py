"""repro — reproduction of "Design of Compact Imperfection-Immune CNFET
Layouts for Standard-Cell-Based Logic Synthesis" (Bobba et al., DATE 2009).

The package is organised as:

* :mod:`repro.core` — the paper's contribution: Euler-path compact
  misaligned-CNT-immune layouts, the baseline/vulnerable references, area
  models and standard-cell assembly (schemes 1 and 2);
* :mod:`repro.immunity` — the mispositioned-CNT Monte Carlo analysis;
* :mod:`repro.devices` / :mod:`repro.circuit` — CNFET and 65 nm MOSFET
  compact models, transient simulation, FO4 analysis, gate-level timing;
* :mod:`repro.cells` / :mod:`repro.flow` — the CNFET Design Kit: standard
  cell library, Liberty export, technology mapping, placement and GDSII;
* :mod:`repro.tech` / :mod:`repro.geometry` / :mod:`repro.logic` /
  :mod:`repro.euler` — the supporting substrates;
* :mod:`repro.analysis` — the experiment runners that regenerate every
  table and figure of the paper's evaluation.

* :mod:`repro.study` — the typed Study layer: one sweep abstraction over
  both engines, frozen serializable results with provenance, the study
  registry and the ``python -m repro`` CLI;

* :mod:`repro.runtime` — the runtime layer: the deterministic parallel
  scheduler (``jobs=``/``workers=`` everywhere lower onto one pool), the
  content-addressed on-disk result cache, and the ``repro batch``
  manifest runner with cross-study dedup;

* :mod:`repro.lint` — reprolint, the dependency-free AST linter that
  machine-checks the repo's determinism/seeding/runtime contracts
  (``python -m repro.lint src``);

* :mod:`repro.service` — the async study service: ``python -m repro
  serve`` exposes an HTTP job API (submit/poll/fetch/cancel) over the
  runtime layer, deduplicating identical concurrent submissions onto
  one engine run by content fingerprint.  Stdlib only.

The package root resolves its re-exports **lazily** (PEP 562): merely
importing :mod:`repro` pulls in no NumPy and no engine code, so
stdlib-only surfaces — ``python -m repro.lint`` above all — work in a
bare interpreter.  ``from repro import run_study`` still works exactly
as before; the submodule import simply happens at first attribute use.

Quickstart::

    from repro import assemble_cell, standard_gate, CNFETDesignKit
    from repro.flow import full_adder_netlist

    cell = assemble_cell(standard_gate("NAND3"), scheme=2)
    kit = CNFETDesignKit(scheme=1)
    result = kit.run_flow(full_adder_netlist())
    print(result.report.summary())

Study API::

    from repro import run_study, SweepSpec, run_sweep_study

    fig7 = run_study("fig7")            # typed Fig7Result
    print(fig7)                         # renders the paper's table
    fig7.to_json("fig7.json")           # lossless round-trip
    spec = SweepSpec.parse(["cnts_per_trial=2,4,8"])
    sweep = run_sweep_study(spec, engine="immunity", trials=500)

Runtime layer::

    from repro import ResultCache, run_sweep_study, run_manifest

    cache = ResultCache(".repro-cache")
    fast = run_sweep_study(spec, trials=500, jobs=4, cache=cache)  # sharded
    warm = run_sweep_study(spec, trials=500, jobs=4, cache=cache)  # cache hit
    assert warm == fast and warm.provenance.cache == "hit"
    batch = run_manifest("manifest.json", cache=cache, jobs=4)
"""

import importlib

from .errors import ReproError, StudyError

__version__ = "0.2.0"

#: Re-exported name -> the submodule that defines it.  Resolution is
#: lazy (module ``__getattr__`` below), so ``import repro`` stays free
#: of NumPy and engine code until a name is actually used.
_EXPORTS = {
    # experiment runners (typed results)
    "run_all": ".analysis",
    "run_fig7_fo4": ".analysis",
    "run_fulladder_case_study": ".analysis",
    "run_table1": ".analysis",
    # cells / circuit
    "StandardCellLibrary": ".cells",
    "build_library": ".cells",
    "cmos_inverter": ".circuit",
    "cnfet_inverter": ".circuit",
    "compare_fo4": ".circuit",
    "fo4_metrics": ".circuit",
    # core layouts
    "StandardCell": ".core",
    "assemble_cell": ".core",
    "baseline_network_layout": ".core",
    "compact_network_layout": ".core",
    "inverter_area_gain": ".core",
    "table1": ".core",
    "vulnerable_network_layout": ".core",
    # devices
    "CNFET": ".devices",
    "MOSFET": ".devices",
    "calibrated_cnfet_parameters": ".devices",
    "paper_anchors": ".devices",
    # flow
    "CNFETDesignKit": ".flow",
    "full_adder_netlist": ".flow",
    "parse_structural_verilog": ".flow",
    # immunity
    "compare_techniques": ".immunity",
    "run_immunity_trials": ".immunity",
    "sweep": ".immunity",
    # logic
    "GateNetworks": ".logic",
    "parse_expression": ".logic",
    "standard_gate": ".logic",
    # the runtime layer
    "ResultCache": ".runtime",
    "run_manifest": ".runtime",
    # the service layer
    "JobManager": ".service",
    "JobSubmission": ".service",
    "ReproService": ".service",
    # the Study layer
    "Corner": ".study",
    "Provenance": ".study",
    "StudyResult": ".study",
    "SweepSpec": ".study",
    "get_study": ".study",
    "list_studies": ".study",
    "parse_axis": ".study",
    "run_study": ".study",
    "run_sweep_study": ".study",
    # tech
    "CMOS_RULES": ".tech",
    "CNFET_RULES": ".tech",
    "cmos65_node": ".tech",
    "cnfet65_node": ".tech",
}

__all__ = sorted(_EXPORTS) + ["ReproError", "StudyError", "__version__"]


def __getattr__(name):
    """PEP 562 lazy re-export: import the defining submodule on first use."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    module = importlib.import_module(module_name, __name__)
    value = getattr(module, name)
    globals()[name] = value          # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
