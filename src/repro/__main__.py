"""``python -m repro`` — the Study CLI entry point."""

from .study.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
