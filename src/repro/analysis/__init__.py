"""Comparison metrics and per-figure experiment runners.

Every ``run_*`` runner returns a typed, Mapping-compatible
:class:`~repro.study.results.StudyResult`; the old plain-dict behaviour
lives on in :mod:`repro.analysis.legacy` as deprecation shims.
"""

from . import legacy
from .experiments import (
    format_fig7,
    format_fulladder,
    run_all,
    run_characterization,
    run_edp_summary,
    run_fig2_immunity,
    run_fig3_nand3,
    run_fig4_aoi31,
    run_fig7_fo4,
    run_fo4_transient_sweep,
    run_fulladder_case_study,
    run_immunity_sweep,
    run_pitch_sensitivity,
    run_table1,
)
from .metrics import GainReport, TechnologyFigures, edap, edp, gain

__all__ = [
    "legacy",
    "format_fig7",
    "format_fulladder",
    "run_all",
    "run_characterization",
    "run_edp_summary",
    "run_fig2_immunity",
    "run_immunity_sweep",
    "run_fig3_nand3",
    "run_fig4_aoi31",
    "run_fig7_fo4",
    "run_fo4_transient_sweep",
    "run_fulladder_case_study",
    "run_pitch_sensitivity",
    "run_table1",
    "GainReport",
    "TechnologyFigures",
    "edap",
    "edp",
    "gain",
]
