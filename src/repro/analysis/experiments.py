"""Experiment runners: one function per table/figure of the paper.

Each ``run_*`` function regenerates one evaluation artefact and returns a
**typed** :class:`~repro.study.results.StudyResult` subclass.  The typed
results speak the Mapping protocol and their ``to_dict()`` reproduces the
historical plain-dict payload exactly (same keys, bit-identical values for
fixed seeds), so pre-redesign call sites — ``result["optimal"]`` — keep
working unchanged; new code should prefer the typed attributes,
``str(result)`` renderings and JSON round-trips.  Callers that really want
the old plain dicts can use the deprecation shims in
:mod:`repro.analysis.legacy`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cells.characterize import (
    TechnologyConfig,
    characterize_sweep,
    cmos_technology,
    cnfet_technology,
    format_characterization,
)
from ..cells.library import build_library
from ..circuit.fo4 import compare_fo4, fo4_transient_sweep
from ..circuit.inverter import cmos_inverter, cnfet_inverter
from ..core.area import format_table1, inverter_area_gain, table1
from ..core.compact import compact_network_layout
from ..core.sizing import size_gate
from ..core.standard_cell import assemble_cell
from ..devices.calibration import (
    CMOS_NMOS_WIDTH_NM,
    CMOS_PMOS_WIDTH_NM,
    FO4_GATE_WIDTH_NM,
    calibrated_cnfet_parameters,
    paper_anchors,
)
from ..flow.designkit import CNFETDesignKit
from ..flow.verilog import full_adder_netlist
from ..immunity.montecarlo import (
    SeedLike,
    compare_techniques,
    format_comparison,
    format_sweep,
    sweep,
)
from ..logic.functions import aoi31, standard_gate
from ..study.results import (
    CharacterizationResult,
    EdpSummaryResult,
    Fig2ImmunityResult,
    Fig3Result,
    Fig4Result,
    Fig7Result,
    FO4GainPoint,
    FO4TransientPoint,
    Fo4TransientResult,
    FullAdderResult,
    ImmunitySweepResult,
    PitchSensitivityResult,
    Provenance,
    StudyResult,
    Table1Result,
    render_fig7,
    render_fulladder,
)
from .metrics import GainReport, TechnologyFigures


# ---------------------------------------------------------------------------
# E1 / E2 — Table 1 and the Figure 3 NAND3 walk-through
# ---------------------------------------------------------------------------

def run_table1() -> Table1Result:
    """Regenerate Table 1 (area saving of the compact vs baseline layouts)."""
    rows = table1()
    return Table1Result(
        provenance=Provenance.capture("table1", params={}),
        rows=tuple(rows),
        formatted=format_table1(rows),
        mean_absolute_error=_mean_absolute_error(rows),
    )


def _mean_absolute_error(rows) -> float:
    errors = [row.error_vs_paper for row in rows if row.error_vs_paper is not None]
    return sum(errors) / len(errors) if errors else 0.0


def run_fig3_nand3(unit_width: float = 4.0) -> Fig3Result:
    """The Figure 3 NAND3 compaction number (paper: 16.67 % at 4 λ)."""
    from ..core.area import area_saving

    row = area_saving(standard_gate("NAND3"), unit_width)
    return Fig3Result(
        provenance=Provenance.capture("fig3", params={"unit_width": unit_width}),
        unit_width=unit_width,
        baseline_area=row.baseline_area,
        compact_area=row.compact_area,
        measured_saving=row.measured_saving,
        paper_saving=paper_anchors().nand3_area_saving_4lambda,
    )


# ---------------------------------------------------------------------------
# E3 — Figure 2: mispositioned-CNT immunity
# ---------------------------------------------------------------------------

def run_fig2_immunity(gate_name: str = "NAND2", trials: int = 200,
                      cnts_per_trial: int = 4, seed: SeedLike = 2009,
                      engine: str = "batch") -> Fig2ImmunityResult:
    """Monte Carlo immunity of the vulnerable / baseline / compact layouts.

    Every technique is attacked by the same defect populations (shared
    seed); ``engine`` selects the batched evaluator or the compatibility
    loop — results are identical for a fixed seed.
    """
    results = compare_techniques(
        gate_name, trials=trials, cnts_per_trial=cnts_per_trial, seed=seed,
        engine=engine,
    )
    return Fig2ImmunityResult(
        provenance=Provenance.capture(
            "fig2", engine=engine, seed=seed,
            params=dict(gate_name=gate_name, trials=trials,
                        cnts_per_trial=cnts_per_trial, seed=seed, engine=engine),
        ),
        gate=gate_name,
        results=results,
        formatted=format_comparison(results),
        vulnerable_failure_rate=results["vulnerable"].failure_rate,
        baseline_immune=results["baseline"].immune,
        compact_immune=results["compact"].immune,
    )


def run_immunity_sweep(
    gates: Sequence[str] = ("NAND2", "NAND3"),
    techniques: Sequence[str] = ("vulnerable", "baseline", "compact"),
    cnts_per_trial: Sequence[int] = (2, 4, 8),
    max_angle_deg: Sequence[float] = (15.0,),
    metallic_fraction: Sequence[float] = (0.0,),
    trials: int = 200,
    seed: SeedLike = 2009,
    workers: Optional[int] = None,
) -> ImmunitySweepResult:
    """Failure rate across defect density / alignment / metallic residue.

    The batched extension of the Figure 2 experiment: instead of one
    (technique × gate) table it explores the whole defect-parameter grid on
    the vectorized engine (optionally across a process pool) and reports
    where each layout technique stops being immune.
    """
    points = sweep(
        gates=gates, techniques=techniques, cnts_per_trial=cnts_per_trial,
        max_angle_deg=max_angle_deg, metallic_fraction=metallic_fraction,
        trials=trials, seed=seed, workers=workers,
    )
    worst: Dict[str, float] = {}
    for point in points:
        worst[point.technique] = max(
            worst.get(point.technique, 0.0), point.failure_rate
        )
    return ImmunitySweepResult(
        provenance=Provenance.capture(
            "immunity_sweep", engine="batch", seed=seed,
            params=dict(gates=tuple(gates), techniques=tuple(techniques),
                        cnts_per_trial=tuple(cnts_per_trial),
                        max_angle_deg=tuple(max_angle_deg),
                        metallic_fraction=tuple(metallic_fraction),
                        trials=trials, seed=seed),
        ),
        points=tuple(points),
        formatted=format_sweep(points),
        worst_failure_rate_by_technique=worst,
        compact_always_immune=worst.get("compact", 0.0) == 0.0,
    )


# ---------------------------------------------------------------------------
# E4 — Figure 4: the AOI31 generalised layout
# ---------------------------------------------------------------------------

def run_fig4_aoi31(unit_width: float = 4.0) -> Fig4Result:
    """Generate the AOI31 compact layouts (basic and width-balanced)."""
    gate = aoi31()
    sizing = size_gate(gate, unit_width)
    pun = compact_network_layout(gate.pun, gate.pun_tree, unit_width)
    pdn = compact_network_layout(gate.pdn, gate.pdn_tree, unit_width)
    cell_s1 = assemble_cell(gate, scheme=1, unit_width=unit_width)
    cell_s2 = assemble_cell(gate, scheme=2, unit_width=unit_width)
    return Fig4Result(
        provenance=Provenance.capture("fig4", params={"unit_width": unit_width}),
        gate=gate.name,
        pun_contacts=pun.contact_count,
        pun_gates=pun.gate_count,
        pdn_contacts=pdn.contact_count,
        pdn_gates=pdn.gate_count,
        pun_width_factors=tuple(sorted(set(sizing.pun_widths.values()))),
        pdn_width_factors=tuple(sorted(set(sizing.pdn_widths.values()))),
        scheme1_area=cell_s1.area,
        scheme2_area=cell_s2.area,
        requires_etched_regions=pun.etch_count + pdn.etch_count,
    )


# ---------------------------------------------------------------------------
# E5 — Figure 7 / Case study 1: FO4 gains vs number of CNTs
# ---------------------------------------------------------------------------

def run_fig7_fo4(max_tubes: int = 20, gate_width_nm: float = FO4_GATE_WIDTH_NM,
                 vdd: float = 1.0) -> Fig7Result:
    """Sweep the number of CNTs per device at fixed gate width (Figure 7)."""
    params = calibrated_cnfet_parameters()
    reference = cmos_inverter(CMOS_NMOS_WIDTH_NM, CMOS_PMOS_WIDTH_NM)
    anchors = paper_anchors()

    points: List[FO4GainPoint] = []
    best_index = 0
    for tubes in range(1, max_tubes + 1):
        comparison = compare_fo4(
            cnfet_inverter(tubes, gate_width_nm, parameters=params), reference, vdd
        )
        points.append(
            FO4GainPoint(
                num_tubes=tubes,
                pitch_nm=gate_width_nm / tubes,
                delay_gain=comparison.delay_gain,
                energy_gain=comparison.energy_gain,
                edp_gain=comparison.edp_gain,
                cnfet_delay_ps=comparison.cnfet.delay_s * 1e12,
                cmos_delay_ps=comparison.cmos.delay_s * 1e12,
            )
        )
        if points[best_index].delay_gain < comparison.delay_gain:
            best_index = len(points) - 1

    area = inverter_area_gain(unit_width=4.0, scheme=1)
    return Fig7Result(
        provenance=Provenance.capture(
            "fig7",
            params=dict(max_tubes=max_tubes, gate_width_nm=gate_width_nm, vdd=vdd),
        ),
        sweep=tuple(points),
        single_cnt=points[0],
        optimal=points[best_index],
        inverter_area_gain=area.gain,
        paper={
            "delay_gain_single_cnt": anchors.fo4_delay_gain_single_cnt,
            "energy_gain_single_cnt": anchors.fo4_energy_gain_single_cnt,
            "delay_gain_optimal": anchors.fo4_delay_gain_optimal,
            "energy_gain_optimal": anchors.fo4_energy_gain_optimal,
            "optimal_pitch_nm": anchors.optimal_pitch_nm,
            "inverter_area_gain": anchors.inverter_area_gain,
        },
    )


def format_fig7(result) -> str:
    """Render the Figure 7 sweep as a text table.

    .. deprecated:: 0.2
        ``str(result)`` on the typed :class:`Fig7Result` renders the same
        table; this wrapper remains for dict payloads and old call sites.
    """
    return render_fig7(result)


def run_fo4_transient_sweep(
    tube_counts: Sequence[int] = (1, 2, 4, 6, 8, 12),
    gate_width_nm: float = FO4_GATE_WIDTH_NM,
    vdd: float = 1.0,
) -> Fo4TransientResult:
    """Waveform-level Figure 7 cross-check on the batch transient engine.

    Every CNT-count corner's five-stage FO4 chain — plus the 65 nm CMOS
    reference — is integrated in **one** vectorized batch
    (:func:`~repro.circuit.fo4.fo4_transient_sweep`), and the analytical
    sweep of :func:`run_fig7_fo4` is cross-checked against measured
    50 %-to-50 % waveform delays.
    """
    params = calibrated_cnfet_parameters()
    inverters = [
        cnfet_inverter(tubes, gate_width_nm, parameters=params)
        for tubes in tube_counts
    ]
    inverters.append(cmos_inverter(CMOS_NMOS_WIDTH_NM, CMOS_PMOS_WIDTH_NM))
    metrics = fo4_transient_sweep(inverters, vdd=vdd)
    cmos = metrics[-1]
    points: List[FO4TransientPoint] = []
    for tubes, point in zip(tube_counts, metrics):
        points.append(
            FO4TransientPoint(
                num_tubes=tubes,
                pitch_nm=gate_width_nm / tubes,
                cnfet_delay_ps=point.delay_s * 1e12,
                cmos_delay_ps=cmos.delay_s * 1e12,
                delay_gain=cmos.delay_s / point.delay_s,
                energy_gain=cmos.energy_per_cycle_j / point.energy_per_cycle_j,
            )
        )
    best = max(points, key=lambda point: point.delay_gain)
    return Fo4TransientResult(
        provenance=Provenance.capture(
            "fo4_transient", engine="batch",
            params=dict(tube_counts=tuple(tube_counts),
                        gate_width_nm=gate_width_nm, vdd=vdd),
        ),
        sweep=tuple(points),
        cmos_delay_ps=cmos.delay_s * 1e12,
        optimal=best,
        batch_size=len(inverters),
    )


def run_characterization(
    gates: Sequence[str] = ("INV", "NAND2", "NAND3"),
    drive_strengths: Sequence[float] = (1.0, 2.0, 4.0),
    load_capacitances_f: Sequence[float] = (1.0e-15, 4.0e-15),
    input_slews_s: Sequence[float] = (5.0e-12,),
    corners: Optional[Dict[str, TechnologyConfig]] = None,
) -> CharacterizationResult:
    """Multi-corner standard-cell characterisation on the batch engine.

    The (cell × drive × load × slew × corner) grid behind the measured
    Liberty view: per cell, one vectorized transient batch measures every
    corner; the result reports the dense delay grid and basic physical
    sanity (delay monotone in load, faster at higher drive).
    """
    import numpy as np

    corners = corners or {
        "cnfet_tt": cnfet_technology(),
        "cmos_ref": cmos_technology(),
    }
    sweep = characterize_sweep(
        gate_names=gates,
        drive_strengths=drive_strengths,
        load_capacitances_f=load_capacitances_f,
        input_slews_s=input_slews_s,
        corners=corners,
    )
    grid = sweep.grid("worst_delay_s")
    # Sanity flags are None when an axis has a single point (nothing to
    # compare), so a vacuous np.all([]) can never masquerade as a check.
    return CharacterizationResult(
        provenance=Provenance.capture(
            "characterization", engine="batch",
            params=dict(gates=tuple(gates),
                        drive_strengths=tuple(drive_strengths),
                        load_capacitances_f=tuple(load_capacitances_f),
                        input_slews_s=tuple(input_slews_s),
                        corners=tuple(corners)),
        ),
        sweep=sweep,
        formatted=format_characterization(sweep),
        grid_shape=grid.shape,
        points=len(sweep.points),
        monotone_in_load=(
            bool(np.all(np.diff(grid, axis=2) > 0.0))
            if grid.shape[2] > 1 else None
        ),
        faster_at_higher_drive=(
            bool(np.all(np.diff(grid, axis=1) < 0.0))
            if grid.shape[1] > 1 else None
        ),
    )


def run_pitch_sensitivity(gate_width_nm: float = FO4_GATE_WIDTH_NM,
                          pitch_range_nm=(4.5, 5.5),
                          steps: int = 11) -> PitchSensitivityResult:
    """Delay variation across the paper's "optimal pitch range" (≤1 %)."""
    params = calibrated_cnfet_parameters()
    reference = cmos_inverter(CMOS_NMOS_WIDTH_NM, CMOS_PMOS_WIDTH_NM)
    low, high = pitch_range_nm
    delays = []
    for index in range(steps):
        pitch = low + (high - low) * index / (steps - 1)
        tubes = max(1, int(round(gate_width_nm / pitch)))
        comparison = compare_fo4(
            cnfet_inverter(tubes, gate_width_nm, pitch_nm=pitch, parameters=params),
            reference,
        )
        delays.append(comparison.cnfet.delay_s)
    variation = (max(delays) - min(delays)) / min(delays)
    return PitchSensitivityResult(
        provenance=Provenance.capture(
            "pitch",
            params=dict(gate_width_nm=gate_width_nm,
                        pitch_range_nm=tuple(pitch_range_nm), steps=steps),
        ),
        pitch_low_nm=low,
        pitch_high_nm=high,
        delay_variation=variation,
        paper_variation=paper_anchors().optimal_pitch_delay_variation,
    )


# ---------------------------------------------------------------------------
# E6 — Figures 8/9 / Case study 2: the full adder
# ---------------------------------------------------------------------------

def run_fulladder_case_study(unit_width: float = 4.0) -> FullAdderResult:
    """Full-adder delay/energy/area for scheme 1, scheme 2 and CMOS."""
    anchors = paper_anchors()
    netlist = full_adder_netlist()

    kits = {
        1: CNFETDesignKit(scheme=1, unit_width=unit_width),
        2: CNFETDesignKit(scheme=2, unit_width=unit_width),
    }
    results = {scheme: kit.run_flow(netlist) for scheme, kit in kits.items()}

    def figures(scheme: int) -> GainReport:
        flow = results[scheme]
        cnfet = TechnologyFigures(
            name=f"cnfet_scheme{scheme}",
            delay_s=flow.report.timing.critical_path_delay,
            energy_per_cycle_j=flow.report.timing.total_energy_per_cycle,
            area_lambda2=flow.report.placement.core_area,
        )
        cmos = TechnologyFigures(
            name="cmos65",
            delay_s=flow.report.cmos_timing.critical_path_delay,
            energy_per_cycle_j=flow.report.cmos_timing.total_energy_per_cycle,
            area_lambda2=flow.report.cmos_placement.core_area,
        )
        return GainReport(cnfet=cnfet, cmos=cmos)

    gains = {scheme: figures(scheme) for scheme in results}
    return FullAdderResult(
        provenance=Provenance.capture(
            "fig8", params={"unit_width": unit_width},
        ),
        flow_summaries={scheme: flow.summarize()
                        for scheme, flow in results.items()},
        gains=gains,
        delay_gain=gains[1].delay_gain,
        energy_gain=gains[1].energy_gain,
        area_gain_scheme1=gains[1].area_gain,
        area_gain_scheme2=gains[2].area_gain,
        paper={
            "delay_gain": anchors.fulladder_delay_gain,
            "energy_gain": anchors.fulladder_energy_gain,
            "area_gain_scheme1": anchors.fulladder_area_gain_scheme1,
            "area_gain_scheme2": anchors.fulladder_area_gain_scheme2,
        },
        flow_results=results,
    )


def format_fulladder(result) -> str:
    """Render the full-adder case study as text.

    .. deprecated:: 0.2
        ``str(result)`` on the typed :class:`FullAdderResult` renders the
        same report; this wrapper remains for dict payloads.
    """
    return render_fulladder(result)


# ---------------------------------------------------------------------------
# E6b — circuit-level yield / delay / energy (beyond the paper)
# ---------------------------------------------------------------------------

# The engine lives in its own subsystem (`repro.circuit_study`); re-exported
# here so the registry's one-runner-per-study convention holds and `repro
# list` shows its parameters like any other study.
from ..circuit_study import run_circuit_study  # noqa: E402


# ---------------------------------------------------------------------------
# E7 — headline EDP / EDAP summary (abstract + conclusions)
# ---------------------------------------------------------------------------

def run_edp_summary() -> EdpSummaryResult:
    """Inverter-level EDP/EDAP gains at the optimal pitch."""
    fig7 = run_fig7_fo4()
    best = fig7.optimal
    single = fig7.single_cnt
    area_gain = fig7.inverter_area_gain
    anchors = paper_anchors()
    edp_gain_optimal = best.delay_gain * best.energy_gain
    edp_gain_single = single.delay_gain * single.energy_gain
    return EdpSummaryResult(
        provenance=Provenance.capture("edp", params={}),
        delay_gain_optimal=best.delay_gain,
        energy_gain_optimal=best.energy_gain,
        area_gain=area_gain,
        edp_gain_optimal=edp_gain_optimal,
        edp_gain_single_cnt=edp_gain_single,
        edp_gain_best=max(edp_gain_optimal, edp_gain_single),
        edap_gain_optimal=edp_gain_optimal * area_gain,
        paper_edp_gain=anchors.edp_gain_headline,
        paper_edap_gain=anchors.edap_gain_headline,
        paper_area_saving=0.30,
    )


def run_all(fast: bool = True) -> Dict[str, StudyResult]:
    """Run every experiment; with ``fast`` the Monte Carlo trial count is
    reduced so the whole suite stays interactive."""
    trials = 50 if fast else 500
    return {
        "table1": run_table1(),
        "fig2_immunity": run_fig2_immunity(trials=trials),
        "immunity_sweep": run_immunity_sweep(
            gates=("NAND2",), cnts_per_trial=(2, 4, 8), trials=trials
        ),
        "fig3_nand3": run_fig3_nand3(),
        "fig4_aoi31": run_fig4_aoi31(),
        "fig7_fo4": run_fig7_fo4(),
        "fo4_transient_sweep": run_fo4_transient_sweep(
            tube_counts=(1, 6) if fast else (1, 2, 4, 6, 8, 12)
        ),
        "characterization": run_characterization(
            gates=("INV", "NAND2") if fast else ("INV", "NAND2", "NAND3"),
            drive_strengths=(1.0,) if fast else (1.0, 2.0, 4.0),
        ),
        "pitch_sensitivity": run_pitch_sensitivity(),
        "fulladder": run_fulladder_case_study(),
        "edp_summary": run_edp_summary(),
        "circuit": run_circuit_study(
            "adder:2" if fast else "adder:8", trials=trials,
            draws=200 if fast else 2000,
        ),
    }
