"""Deprecation shims: the pre-Study-API plain-dict experiment runners.

Before the Study redesign every ``run_*`` function returned an untyped
``Dict[str, object]``.  The typed results are Mapping-compatible, so most
call sites need no shim at all — but code that requires a *real* ``dict``
(mutation, ``type(...) is dict`` checks) can import the same names from
this module.  Each shim emits a :class:`DeprecationWarning` and returns
``run_*(...).to_dict()``, which is key-for-key, bit-for-bit identical to
the historical payload for fixed seeds.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable, Dict

from . import experiments

__all__ = [
    "run_table1", "run_fig3_nand3", "run_fig2_immunity", "run_immunity_sweep",
    "run_fig4_aoi31", "run_fig7_fo4", "run_fo4_transient_sweep",
    "run_characterization", "run_pitch_sensitivity",
    "run_fulladder_case_study", "run_edp_summary", "run_all",
]


def _dict_shim(runner: Callable) -> Callable[..., Dict[str, object]]:
    @functools.wraps(runner)
    def shim(*args, **kwargs) -> Dict[str, object]:
        warnings.warn(
            f"repro.analysis.legacy.{runner.__name__} returns the old plain "
            f"dict; prefer repro.analysis.{runner.__name__}, whose typed "
            "result supports the same subscription plus to_dict()/to_json()",
            DeprecationWarning,
            stacklevel=2,
        )
        return runner(*args, **kwargs).to_dict()

    shim.__doc__ = (
        f"Deprecated dict-returning shim around "
        f":func:`repro.analysis.experiments.{runner.__name__}`."
    )
    return shim


run_table1 = _dict_shim(experiments.run_table1)
run_fig3_nand3 = _dict_shim(experiments.run_fig3_nand3)
run_fig2_immunity = _dict_shim(experiments.run_fig2_immunity)
run_immunity_sweep = _dict_shim(experiments.run_immunity_sweep)
run_fig4_aoi31 = _dict_shim(experiments.run_fig4_aoi31)
run_fig7_fo4 = _dict_shim(experiments.run_fig7_fo4)
run_fo4_transient_sweep = _dict_shim(experiments.run_fo4_transient_sweep)
run_characterization = _dict_shim(experiments.run_characterization)
run_pitch_sensitivity = _dict_shim(experiments.run_pitch_sensitivity)
run_fulladder_case_study = _dict_shim(experiments.run_fulladder_case_study)
run_edp_summary = _dict_shim(experiments.run_edp_summary)


def run_all(fast: bool = True) -> Dict[str, Dict[str, object]]:
    """Deprecated dict-of-dicts shim around :func:`repro.analysis.run_all`."""
    warnings.warn(
        "repro.analysis.legacy.run_all returns plain dicts; prefer "
        "repro.analysis.run_all, whose values are typed StudyResults",
        DeprecationWarning,
        stacklevel=2,
    )
    return {name: result.to_dict()
            for name, result in experiments.run_all(fast=fast).items()}
