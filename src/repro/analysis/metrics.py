"""Comparison metrics: EDP, EDAP and technology gains.

Section V and the conclusions report composite figures of merit — the
Energy-Delay Product (EDP) and the Energy-Delay-Area Product (EDAP) — in
addition to the individual delay/energy/area gains.  The helpers here keep
those definitions in one place so every benchmark reports them the same
way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TechnologyFigures:
    """Delay / energy / area of one implementation of a circuit."""

    name: str
    delay_s: float
    energy_per_cycle_j: float
    area_lambda2: Optional[float] = None

    @property
    def edp(self) -> float:
        """Energy-delay product [J·s]."""
        return self.delay_s * self.energy_per_cycle_j

    @property
    def edap(self) -> Optional[float]:
        """Energy-delay-area product [J·s·λ²] (``None`` without an area)."""
        if self.area_lambda2 is None:
            return None
        return self.edp * self.area_lambda2


@dataclass(frozen=True)
class GainReport:
    """Gains of a CNFET implementation over its CMOS reference."""

    cnfet: TechnologyFigures
    cmos: TechnologyFigures

    @property
    def delay_gain(self) -> float:
        return self.cmos.delay_s / self.cnfet.delay_s

    @property
    def energy_gain(self) -> float:
        return self.cmos.energy_per_cycle_j / self.cnfet.energy_per_cycle_j

    @property
    def area_gain(self) -> Optional[float]:
        if self.cnfet.area_lambda2 is None or self.cmos.area_lambda2 is None:
            return None
        return self.cmos.area_lambda2 / self.cnfet.area_lambda2

    @property
    def edp_gain(self) -> float:
        return self.cmos.edp / self.cnfet.edp

    @property
    def edap_gain(self) -> Optional[float]:
        cnfet_edap = self.cnfet.edap
        cmos_edap = self.cmos.edap
        if cnfet_edap is None or cmos_edap is None or cnfet_edap == 0:
            return None
        return cmos_edap / cnfet_edap

    def summary(self) -> str:
        """One-line-per-metric report."""
        lines = [
            f"delay gain : {self.delay_gain:.2f}x "
            f"({self.cmos.delay_s * 1e12:.1f} ps -> {self.cnfet.delay_s * 1e12:.1f} ps)",
            f"energy gain: {self.energy_gain:.2f}x "
            f"({self.cmos.energy_per_cycle_j * 1e15:.2f} fJ -> "
            f"{self.cnfet.energy_per_cycle_j * 1e15:.2f} fJ)",
            f"EDP gain   : {self.edp_gain:.2f}x",
        ]
        if self.area_gain is not None:
            lines.insert(2, f"area gain  : {self.area_gain:.2f}x")
        if self.edap_gain is not None:
            lines.append(f"EDAP gain  : {self.edap_gain:.2f}x")
        return "\n".join(lines)


def edp(energy_j: float, delay_s: float) -> float:
    """Energy-delay product."""
    return energy_j * delay_s


def edap(energy_j: float, delay_s: float, area: float) -> float:
    """Energy-delay-area product."""
    return energy_j * delay_s * area


def gain(reference: float, improved: float) -> float:
    """``reference / improved`` — how many times better the improved value is."""
    if improved == 0:
        return float("inf")
    return reference / improved
