"""CNFET standard-cell library: generation, characterisation, Liberty export."""

from .characterize import (
    LIBRARY_CNT_PITCH_NM,
    TechnologyConfig,
    characterize_gate,
    cmos_technology,
    cnfet_technology,
    device_for_width,
)
from .liberty import save_liberty, write_liberty
from .library import (
    DEFAULT_DRIVE_STRENGTHS,
    DEFAULT_GATE_SET,
    LibraryCell,
    StandardCellLibrary,
    build_cmos_timing_library,
    build_library,
    cell_key,
)

__all__ = [
    "LIBRARY_CNT_PITCH_NM",
    "TechnologyConfig",
    "characterize_gate",
    "cmos_technology",
    "cnfet_technology",
    "device_for_width",
    "save_liberty",
    "write_liberty",
    "DEFAULT_DRIVE_STRENGTHS",
    "DEFAULT_GATE_SET",
    "LibraryCell",
    "StandardCellLibrary",
    "build_cmos_timing_library",
    "build_library",
    "cell_key",
]
