"""Standard-cell electrical characterisation.

Turns a sized gate into the RC abstraction used by the gate-level analysis
(:class:`~repro.circuit.logical_effort.CellTimingModel`), for either
technology:

* **CNFET cells** instantiate :class:`~repro.devices.cnfet.CNFET` devices;
  the number of tubes per device follows from the drawn width and the CNT
  pitch (the library is built at the optimal ~5 nm pitch found in Case
  study 1, which is how the paper sizes its cells "at their optimal EDP
  point").
* **CMOS cells** instantiate 65 nm :class:`~repro.devices.mosfet.MOSFET`
  devices with the conventional 1.4× pMOS up-sizing.

Drive resistance is the worst of the pull-up and pull-down path
resistances; input capacitance is per pin; output parasitics sum the drain
capacitances of devices on the output node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..circuit.logical_effort import CellTimingModel
from ..devices.calibration import calibrated_cnfet_parameters
from ..devices.cnfet import CNFET, CNFETParameters
from ..devices.mosfet import MOSFET, MOSFETParameters, NMOS_65, PMOS_65
from ..errors import CharacterizationError
from ..logic.network import GateNetworks, SPLeaf, SPNode, SPParallel, SPSeries
from ..core.sizing import CellSizing, size_gate
from ..tech.lambda_rules import LAMBDA_NM_65

#: CNT pitch the standard-cell library is built at (the optimal range found
#: in Case study 1 is 4.5-5.5 nm).
LIBRARY_CNT_PITCH_NM = 5.0


@dataclass(frozen=True)
class TechnologyConfig:
    """Which devices a characterisation run instantiates."""

    name: str                       # "cnfet" | "cmos"
    vdd: float = 1.0
    lambda_nm: float = LAMBDA_NM_65
    cnt_pitch_nm: float = LIBRARY_CNT_PITCH_NM
    cnfet_parameters: Optional[CNFETParameters] = None
    nmos_parameters: MOSFETParameters = NMOS_65
    pmos_parameters: MOSFETParameters = PMOS_65
    pmos_ratio: float = 1.4

    def __post_init__(self):
        if self.name not in ("cnfet", "cmos"):
            raise CharacterizationError(f"Unknown technology {self.name!r}")


def cnfet_technology(vdd: float = 1.0,
                     pitch_nm: float = LIBRARY_CNT_PITCH_NM) -> TechnologyConfig:
    """The calibrated CNFET platform."""
    return TechnologyConfig(
        name="cnfet", vdd=vdd, cnt_pitch_nm=pitch_nm,
        cnfet_parameters=calibrated_cnfet_parameters(),
    )


def cmos_technology(vdd: float = 1.0) -> TechnologyConfig:
    """The reference 65 nm CMOS platform."""
    return TechnologyConfig(name="cmos", vdd=vdd)


def device_for_width(width_factor: float, polarity: str,
                     tech: TechnologyConfig):
    """Instantiate the device of one transistor given its width as a
    multiple of the unit (INV1X) device.

    Section IV sizes every cell "with reference to the smallest inverter
    (INV1X) realizable by the chosen 65 nm technology node", so the
    electrical unit is the INV1X device of each platform:

    * CNFET: the FO4-calibrated inverter device (gate width
      ``FO4_GATE_WIDTH_NM`` populated at the optimal pitch); a ``k×`` wider
      device carries ``k×`` as many tubes.
    * CMOS: the 200 nm (1.4 × 280 nm for pMOS) minimum inverter device.
    """
    from ..devices.calibration import CMOS_NMOS_WIDTH_NM, FO4_GATE_WIDTH_NM

    if width_factor <= 0:
        raise CharacterizationError("width_factor must be positive")
    if tech.name == "cnfet":
        unit_tubes = max(1, int(round(FO4_GATE_WIDTH_NM / tech.cnt_pitch_nm)))
        tubes = max(1, int(round(width_factor * unit_tubes)))
        return CNFET(
            polarity,
            num_tubes=tubes,
            gate_width_nm=width_factor * FO4_GATE_WIDTH_NM,
            pitch_nm=tech.cnt_pitch_nm,
            parameters=tech.cnfet_parameters or calibrated_cnfet_parameters(),
        )
    parameters = tech.nmos_parameters if polarity == "n" else tech.pmos_parameters
    width_nm = width_factor * CMOS_NMOS_WIDTH_NM
    if polarity == "p":
        width_nm *= tech.pmos_ratio
    return MOSFET(polarity, width_nm, parameters)


def _worst_path_resistance(tree: SPNode, width_factors: List[float], polarity: str,
                           tech: TechnologyConfig) -> float:
    """Worst-case end-to-end resistance of a sized network."""
    index = {"value": 0}

    def visit(node: SPNode) -> float:
        if isinstance(node, SPLeaf):
            width_factor = width_factors[index["value"]]
            index["value"] += 1
            device = device_for_width(width_factor, polarity, tech)
            return device.effective_resistance(tech.vdd)
        if isinstance(node, SPSeries):
            return sum(visit(child) for child in node.children)
        if isinstance(node, SPParallel):
            return max(visit(child) for child in node.children)
        raise CharacterizationError(f"Unsupported SP node {type(node).__name__}")

    return visit(tree)


def characterize_gate(
    gate: GateNetworks,
    tech: TechnologyConfig,
    unit_width: float = 4.0,
    drive_strength: float = 1.0,
    extra_output_capacitance: float = 0.0,
) -> CellTimingModel:
    """Characterise one gate at one drive strength for one technology.

    ``extra_output_capacitance`` lets callers add extracted wiring
    parasitics from the physical layout.
    """
    sizing = size_gate(gate, unit_width, drive_strength)

    # Device widths are produced by the sizing rule in λ; the electrical
    # models work in multiples of the INV1X unit device.
    def factor(width_lambda: float) -> float:
        return width_lambda / unit_width

    # Input capacitance per pin: one PUN device and one PDN device hang off
    # each input.  Use the average over pins (pins of symmetric gates are
    # identical; asymmetric gates differ only marginally).
    input_caps: Dict[str, float] = {name: 0.0 for name in gate.inputs}
    for transistor in gate.pun.transistors:
        device = device_for_width(factor(sizing.pun_widths[transistor.name]), "p", tech)
        input_caps[transistor.gate] += device.gate_capacitance()
    for transistor in gate.pdn.transistors:
        device = device_for_width(factor(sizing.pdn_widths[transistor.name]), "n", tech)
        input_caps[transistor.gate] += device.gate_capacitance()
    input_capacitance = sum(input_caps.values()) / max(1, len(input_caps))

    pun_factors = [factor(sizing.pun_widths[t.name]) for t in gate.pun.transistors]
    pdn_factors = [factor(sizing.pdn_widths[t.name]) for t in gate.pdn.transistors]
    pull_up_resistance = _worst_path_resistance(gate.pun_tree, pun_factors, "p", tech)
    pull_down_resistance = _worst_path_resistance(gate.pdn_tree, pdn_factors, "n", tech)
    drive_resistance = max(pull_up_resistance, pull_down_resistance)

    # Output parasitics: drain capacitance of every device whose drain or
    # source touches the output net.
    parasitic = extra_output_capacitance
    for transistor, width_table, polarity in (
        *((t, sizing.pun_widths, "p") for t in gate.pun.transistors),
        *((t, sizing.pdn_widths, "n") for t in gate.pdn.transistors),
    ):
        if "out" in (transistor.source, transistor.drain):
            device = device_for_width(factor(width_table[transistor.name]), polarity, tech)
            parasitic += device.drain_capacitance()

    return CellTimingModel(
        cell_type=gate.name,
        drive_strength=drive_strength,
        input_capacitance=input_capacitance,
        drive_resistance=drive_resistance,
        parasitic_capacitance=parasitic,
    )
