"""Standard-cell electrical characterisation.

Two complementary characterisation paths feed the gate-level analysis and
the Liberty export:

* :func:`characterize_gate` — the fast **logical-effort abstraction**: a
  sized gate reduced to input capacitance, worst-path drive resistance and
  output parasitics (:class:`~repro.circuit.logical_effort.CellTimingModel`).
* :func:`characterize_sweep` — the **measured path**: every cell is
  flattened to a transistor-level netlist
  (:func:`gate_transistor_netlist`), stimulated with a sensitised input
  pulse, and its 50 %-to-50 % delays and supply energy are measured on
  waveforms from the vectorized batch transient engine
  (:func:`~repro.circuit.simulator.run_transient_batch`).  One batch
  integrates a whole ``(drive × load × slew × corner)`` grid per cell.
  :func:`measured_timing_models` distils the grid back into linear-delay
  :class:`CellTimingModel` entries so the Liberty export can carry
  measured rather than estimated delays
  (``build_library(timing_source="measured")``).

Either technology can be instantiated:

* **CNFET cells** instantiate :class:`~repro.devices.cnfet.CNFET` devices;
  the number of tubes per device follows from the drawn width and the CNT
  pitch (the library is built at the optimal ~5 nm pitch found in Case
  study 1, which is how the paper sizes its cells "at their optimal EDP
  point").
* **CMOS cells** instantiate 65 nm :class:`~repro.devices.mosfet.MOSFET`
  devices with the conventional 1.4× pMOS up-sizing.

Drive resistance is the worst of the pull-up and pull-down path
resistances; input capacitance is per pin; output parasitics sum the drain
capacitances of devices on the output node.

Batch-axis semantics of the sweep
---------------------------------
``characterize_sweep`` lays its grid out in ``itertools.product`` order —
``(cell, drive, load, slew, corner)``, last axis fastest — and
:meth:`CharacterizationSweep.grid` reshapes the flat point list back into
that dense array:

>>> from repro.cells.characterize import characterize_sweep, cnfet_technology
>>> sweep = characterize_sweep(
...     gate_names=("INV",), drive_strengths=(1.0, 2.0),
...     load_capacitances_f=(1e-15, 4e-15), input_slews_s=(5e-12,),
...     corners={"tt": cnfet_technology()})
>>> sweep.grid().shape   # (cells, drives, loads, slews, corners)
(1, 2, 2, 1, 1)
>>> point = sweep.point("INV", 1.0, 4e-15, 5e-12, "tt")
>>> point.delay_fall_s > 0 and point.energy_per_cycle_j > 0
True
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..circuit.logical_effort import CellTimingModel
from ..circuit.netlist import GND, VDD, TransistorNetlist
from ..circuit.simulator import (
    SimulationCase,
    TransientResult,
    TransientSimulator,
    constant_source,
    pulse_source,
    run_transient_batch,
)
from ..devices.calibration import calibrated_cnfet_parameters
from ..devices.cnfet import CNFET, CNFETParameters
from ..devices.mosfet import MOSFET, MOSFETParameters, NMOS_65, PMOS_65
from ..errors import CharacterizationError
from ..logic.network import GateNetworks, SPLeaf, SPNode, SPParallel, SPSeries
from ..core.sizing import CellSizing, size_gate
from ..tech.lambda_rules import LAMBDA_NM_65

#: CNT pitch the standard-cell library is built at (the optimal range found
#: in Case study 1 is 4.5-5.5 nm).
LIBRARY_CNT_PITCH_NM = 5.0


@dataclass(frozen=True)
class TechnologyConfig:
    """Which devices a characterisation run instantiates."""

    name: str                       # "cnfet" | "cmos"
    vdd: float = 1.0
    lambda_nm: float = LAMBDA_NM_65
    cnt_pitch_nm: float = LIBRARY_CNT_PITCH_NM
    cnfet_parameters: Optional[CNFETParameters] = None
    nmos_parameters: MOSFETParameters = NMOS_65
    pmos_parameters: MOSFETParameters = PMOS_65
    pmos_ratio: float = 1.4

    def __post_init__(self):
        if self.name not in ("cnfet", "cmos"):
            raise CharacterizationError(f"Unknown technology {self.name!r}")


def cnfet_technology(vdd: float = 1.0,
                     pitch_nm: float = LIBRARY_CNT_PITCH_NM) -> TechnologyConfig:
    """The calibrated CNFET platform."""
    return TechnologyConfig(
        name="cnfet", vdd=vdd, cnt_pitch_nm=pitch_nm,
        cnfet_parameters=calibrated_cnfet_parameters(),
    )


def cmos_technology(vdd: float = 1.0) -> TechnologyConfig:
    """The reference 65 nm CMOS platform."""
    return TechnologyConfig(name="cmos", vdd=vdd)


def device_for_width(width_factor: float, polarity: str,
                     tech: TechnologyConfig):
    """Instantiate the device of one transistor given its width as a
    multiple of the unit (INV1X) device.

    Section IV sizes every cell "with reference to the smallest inverter
    (INV1X) realizable by the chosen 65 nm technology node", so the
    electrical unit is the INV1X device of each platform:

    * CNFET: the FO4-calibrated inverter device (gate width
      ``FO4_GATE_WIDTH_NM`` populated at the optimal pitch); a ``k×`` wider
      device carries ``k×`` as many tubes.
    * CMOS: the 200 nm (1.4 × 280 nm for pMOS) minimum inverter device.
    """
    from ..devices.calibration import CMOS_NMOS_WIDTH_NM, FO4_GATE_WIDTH_NM

    if width_factor <= 0:
        raise CharacterizationError("width_factor must be positive")
    if tech.name == "cnfet":
        unit_tubes = max(1, int(round(FO4_GATE_WIDTH_NM / tech.cnt_pitch_nm)))
        tubes = max(1, int(round(width_factor * unit_tubes)))
        return CNFET(
            polarity,
            num_tubes=tubes,
            gate_width_nm=width_factor * FO4_GATE_WIDTH_NM,
            pitch_nm=tech.cnt_pitch_nm,
            parameters=tech.cnfet_parameters or calibrated_cnfet_parameters(),
        )
    parameters = tech.nmos_parameters if polarity == "n" else tech.pmos_parameters
    width_nm = width_factor * CMOS_NMOS_WIDTH_NM
    if polarity == "p":
        width_nm *= tech.pmos_ratio
    return MOSFET(polarity, width_nm, parameters)


def _worst_path_resistance(tree: SPNode, width_factors: List[float], polarity: str,
                           tech: TechnologyConfig) -> float:
    """Worst-case end-to-end resistance of a sized network."""
    index = {"value": 0}

    def visit(node: SPNode) -> float:
        if isinstance(node, SPLeaf):
            width_factor = width_factors[index["value"]]
            index["value"] += 1
            device = device_for_width(width_factor, polarity, tech)
            return device.effective_resistance(tech.vdd)
        if isinstance(node, SPSeries):
            return sum(visit(child) for child in node.children)
        if isinstance(node, SPParallel):
            return max(visit(child) for child in node.children)
        raise CharacterizationError(f"Unsupported SP node {type(node).__name__}")

    return visit(tree)


def characterize_gate(
    gate: GateNetworks,
    tech: TechnologyConfig,
    unit_width: float = 4.0,
    drive_strength: float = 1.0,
    extra_output_capacitance: float = 0.0,
) -> CellTimingModel:
    """Characterise one gate at one drive strength for one technology.

    ``extra_output_capacitance`` lets callers add extracted wiring
    parasitics from the physical layout.
    """
    sizing = size_gate(gate, unit_width, drive_strength)

    # Device widths are produced by the sizing rule in λ; the electrical
    # models work in multiples of the INV1X unit device.
    def factor(width_lambda: float) -> float:
        return width_lambda / unit_width

    # Input capacitance per pin: one PUN device and one PDN device hang off
    # each input.  Use the average over pins (pins of symmetric gates are
    # identical; asymmetric gates differ only marginally).
    input_caps: Dict[str, float] = {name: 0.0 for name in gate.inputs}
    for transistor in gate.pun.transistors:
        device = device_for_width(factor(sizing.pun_widths[transistor.name]), "p", tech)
        input_caps[transistor.gate] += device.gate_capacitance()
    for transistor in gate.pdn.transistors:
        device = device_for_width(factor(sizing.pdn_widths[transistor.name]), "n", tech)
        input_caps[transistor.gate] += device.gate_capacitance()
    input_capacitance = sum(input_caps.values()) / max(1, len(input_caps))

    pun_factors = [factor(sizing.pun_widths[t.name]) for t in gate.pun.transistors]
    pdn_factors = [factor(sizing.pdn_widths[t.name]) for t in gate.pdn.transistors]
    pull_up_resistance = _worst_path_resistance(gate.pun_tree, pun_factors, "p", tech)
    pull_down_resistance = _worst_path_resistance(gate.pdn_tree, pdn_factors, "n", tech)
    drive_resistance = max(pull_up_resistance, pull_down_resistance)

    # Output parasitics: drain capacitance of every device whose drain or
    # source touches the output net.
    parasitic = extra_output_capacitance
    for transistor, width_table, polarity in (
        *((t, sizing.pun_widths, "p") for t in gate.pun.transistors),
        *((t, sizing.pdn_widths, "n") for t in gate.pdn.transistors),
    ):
        if "out" in (transistor.source, transistor.drain):
            device = device_for_width(factor(width_table[transistor.name]), polarity, tech)
            parasitic += device.drain_capacitance()

    return CellTimingModel(
        cell_type=gate.name,
        drive_strength=drive_strength,
        input_capacitance=input_capacitance,
        drive_resistance=drive_resistance,
        parasitic_capacitance=parasitic,
    )


# ---------------------------------------------------------------------------
# Measured characterisation: transistor netlists + the batch sweep
# ---------------------------------------------------------------------------

#: Load points used when distilling measured delays into a linear model.
MEASURED_LOADS_F: Tuple[float, ...] = (1.0e-15, 4.0e-15)

#: Input slew used for the measured timing models.
MEASURED_SLEW_S = 5.0e-12


def gate_transistor_netlist(
    gate: GateNetworks,
    tech: TechnologyConfig,
    unit_width: float = 4.0,
    drive_strength: float = 1.0,
    load_capacitance: float = 0.0,
    name: Optional[str] = None,
) -> TransistorNetlist:
    """Flatten one sized gate into a simulatable transistor netlist.

    PUN devices sit between ``vdd`` and ``out``, PDN devices between
    ``gnd`` and ``out``; the internal nets of the two series-parallel
    networks are prefixed (``pu_``/``pd_``) so they cannot collide.  The
    device of every transistor comes from :func:`device_for_width` at its
    sized width, so the netlist embodies one (technology, drive) corner
    and an optional output load.
    """
    sizing = size_gate(gate, unit_width, drive_strength)
    netlist = TransistorNetlist(
        name or f"{gate.name}_{drive_strength:g}X", vdd=tech.vdd
    )

    def lowered(net: str, prefix: str) -> str:
        if net in (VDD, GND, "out") or net in gate.inputs:
            return net
        return f"{prefix}{net}"

    for transistor in gate.pun.transistors:
        device = device_for_width(
            sizing.pun_widths[transistor.name] / unit_width, "p", tech
        )
        netlist.add_transistor(
            transistor.name, device, gate=transistor.gate,
            drain=lowered(transistor.drain, "pu_"),
            source=lowered(transistor.source, "pu_"),
        )
    for transistor in gate.pdn.transistors:
        device = device_for_width(
            sizing.pdn_widths[transistor.name] / unit_width, "n", tech
        )
        netlist.add_transistor(
            transistor.name, device, gate=transistor.gate,
            drain=lowered(transistor.drain, "pd_"),
            source=lowered(transistor.source, "pd_"),
        )
    if load_capacitance > 0:
        netlist.add_capacitor("CLOAD", "out", load_capacitance)
    netlist.declare_io(list(gate.inputs), ["out"])
    return netlist


def sensitizing_assignment(gate: GateNetworks, pin: str) -> Dict[str, bool]:
    """Side-input values under which toggling ``pin`` toggles the output.

    For the negation-free (positive-unate) pull-down functions of the
    standard gates, the sensitised output always *falls* when ``pin``
    rises, which is what the characterisation stimulus relies on.
    """
    if pin not in gate.inputs:
        raise CharacterizationError(
            f"Gate {gate.name!r} has no input {pin!r}; inputs: {gate.inputs}"
        )
    others = [name for name in gate.inputs if name != pin]
    for bits in itertools.product((False, True), repeat=len(others)):
        assignment = dict(zip(others, bits))
        low = gate.output_value({pin: False, **assignment})
        high = gate.output_value({pin: True, **assignment})
        if low is not None and high is not None and low != high:
            return assignment
    raise CharacterizationError(
        f"No side-input assignment sensitises {pin!r} of {gate.name!r}"
    )


@dataclass(frozen=True)
class CellSweepPoint:
    """Measured figures of one (cell, drive, load, slew, corner) corner."""

    cell: str
    drive_strength: float
    load_capacitance_f: float
    input_slew_s: float
    corner: str
    vdd: float
    delay_rise_s: float          # input fall -> output rise
    delay_fall_s: float          # input rise -> output fall
    energy_per_cycle_j: float    # supply energy of one full output cycle

    @property
    def worst_delay_s(self) -> float:
        return max(self.delay_rise_s, self.delay_fall_s)


@dataclass
class CharacterizationSweep:
    """The dense result grid of :func:`characterize_sweep`.

    ``points`` is flat in ``itertools.product`` order over
    ``(cells, drive_strengths, loads, slews, corners)`` — last axis
    fastest — and :meth:`grid` reshapes any per-point metric back into the
    dense 5-D array.
    """

    cells: Tuple[str, ...]
    drive_strengths: Tuple[float, ...]
    load_capacitances_f: Tuple[float, ...]
    input_slews_s: Tuple[float, ...]
    corners: Tuple[str, ...]
    points: List[CellSweepPoint]

    @property
    def shape(self) -> Tuple[int, int, int, int, int]:
        return (
            len(self.cells), len(self.drive_strengths),
            len(self.load_capacitances_f), len(self.input_slews_s),
            len(self.corners),
        )

    def grid(self, metric: str = "worst_delay_s") -> np.ndarray:
        """Any per-point metric as a ``(cell, drive, load, slew, corner)``
        array (``metric`` names a :class:`CellSweepPoint` attribute)."""
        values = [getattr(point, metric) for point in self.points]
        return np.array(values).reshape(self.shape)

    def point(self, cell: str, drive_strength: float, load_capacitance_f: float,
              input_slew_s: float, corner: str) -> CellSweepPoint:
        """Look one grid point up by its coordinates."""
        try:
            flat = np.ravel_multi_index(
                (
                    self.cells.index(cell.upper()),
                    self.drive_strengths.index(drive_strength),
                    self.load_capacitances_f.index(load_capacitance_f),
                    self.input_slews_s.index(input_slew_s),
                    self.corners.index(corner),
                ),
                self.shape,
            )
        except ValueError:
            raise CharacterizationError(
                f"No sweep point ({cell}, {drive_strength}, "
                f"{load_capacitance_f}, {input_slew_s}, {corner})"
            ) from None
        return self.points[flat]


def _measure_case(result: TransientResult, pin: str, vdd: float) -> Tuple[float, float, float]:
    """(rise delay, fall delay, energy) of one characterisation waveform."""
    level = vdd / 2.0
    in_rise = result.crossing_time(pin, level, rising=True)
    out_fall = result.crossing_time("out", level, rising=False, after=in_rise)
    in_fall = result.crossing_time(pin, level, rising=False, after=out_fall)
    out_rise = result.crossing_time("out", level, rising=True, after=in_fall)
    return out_rise - in_fall, out_fall - in_rise, result.supply_energy


def _grid_estimates(
    gate: GateNetworks,
    drive_strengths: Sequence[float],
    load_capacitances_f: Sequence[float],
    input_slews_s: Sequence[float],
    corners: Mapping[str, TechnologyConfig],
    unit_width: float,
) -> List[float]:
    """Analytical delay estimates over one cell's full grid, flat in
    ``itertools.product`` order over ``(drive, load, slew, corner)``."""
    return [
        max(characterize_gate(
            gate, tech, unit_width=unit_width, drive_strength=drive
        ).stage_delay(load), 1.0e-13)
        for drive, load, slew, (corner_name, tech) in itertools.product(
            drive_strengths, load_capacitances_f, input_slews_s,
            corners.items()
        )
    ]


def _time_base(estimates: Sequence[float],
               input_slews_s: Sequence[float]) -> Tuple[float, float, float, float]:
    """``(delay, width, stop, time_step)`` shared by a whole grid.

    The pulse must be slow enough for the laziest corner and sampled
    finely enough for the snappiest one.
    """
    slowest = max(estimates)
    max_slew = max(input_slews_s)
    delay = max(6.0 * slowest, 2.0 * max_slew)
    width = max(10.0 * slowest, 4.0 * max_slew)
    stop = delay + 2.0 * max_slew + width + max(10.0 * slowest, 2.0 * max_slew)
    time_step = max(min(min(estimates) / 20.0, min(input_slews_s) / 4.0),
                    stop / 8000.0, 1.0e-14)
    return delay, width, stop, time_step


def grid_time_base(
    gate_name: str,
    drive_strengths: Sequence[float],
    load_capacitances_f: Sequence[float],
    input_slews_s: Sequence[float],
    corners: Mapping[str, TechnologyConfig],
    unit_width: float = 4.0,
    switched_pin: Optional[str] = None,
) -> Tuple[str, float, float, float, float]:
    """The shared time base one cell's grid would be integrated on:
    ``(switched pin, pulse delay, pulse width, stop time, time step)``.

    This is exactly the planning arithmetic of :func:`characterize_sweep`
    / :func:`characterize_cases` — analytical, no netlists built — exposed
    so callers can *address* a grid's waveform context without paying for
    simulation.  The runtime layer hashes it into per-corner cache
    fingerprints: a point's measured waveform depends on the whole grid
    through this time base, so two grids may share a corner's results iff
    they agree on it.
    """
    from ..logic.functions import standard_gate

    gate = standard_gate(gate_name)
    pin = switched_pin or gate.inputs[0]
    estimates = _grid_estimates(gate, drive_strengths, load_capacitances_f,
                                input_slews_s, corners, unit_width)
    if not estimates:
        raise CharacterizationError("grid_time_base needs non-empty axes")
    delay, width, stop, time_step = _time_base(estimates, input_slews_s)
    return pin, delay, width, stop, time_step


def _plan_cell_cases(
    gate_name: str,
    drive_strengths: Sequence[float],
    load_capacitances_f: Sequence[float],
    input_slews_s: Sequence[float],
    corners: Mapping[str, TechnologyConfig],
    unit_width: float,
    switched_pin: Optional[str],
):
    """Lower one cell's full (drive × load × slew × corner) grid into
    simulation cases sharing one deterministic time base.

    The time base (pulse timing, stop time, step) is derived from the
    analytical delay estimates of the **whole** grid
    (:func:`_grid_estimates` + :func:`_time_base` — the same arithmetic
    :func:`grid_time_base` exposes), so any caller that plans the same
    grid — even to integrate only a subset of its cases — lands on
    bit-identical waveforms.  That invariant is what lets the runtime
    scheduler shard a characterisation sweep across workers
    (:func:`characterize_cases`) without perturbing results.

    Returns ``(gate, pin, labels, cases, stop_time, time_step)`` with
    ``labels``/``cases`` flat in ``itertools.product`` order over
    ``(drive, load, slew, corner)`` — last axis fastest.
    """
    from ..logic.functions import standard_gate

    gate = standard_gate(gate_name)
    pin = switched_pin or gate.inputs[0]
    sides = sensitizing_assignment(gate, pin)

    staged: List[Tuple[TransistorNetlist, float, float]] = []
    labels: List[Tuple[float, float, float, str, float]] = []
    for drive, load, slew, (corner_name, tech) in itertools.product(
        drive_strengths, load_capacitances_f, input_slews_s, corners.items()
    ):
        netlist = gate_transistor_netlist(
            gate, tech, unit_width=unit_width, drive_strength=drive,
            load_capacitance=load,
        )
        labels.append((drive, load, slew, corner_name, tech.vdd))
        staged.append((netlist, tech.vdd, slew))

    estimates = _grid_estimates(gate, drive_strengths, load_capacitances_f,
                                input_slews_s, corners, unit_width)
    delay, width, stop, time_step = _time_base(estimates, input_slews_s)

    built: List[SimulationCase] = []
    for netlist, vdd, slew in staged:
        sources = {pin: pulse_source(vdd, delay=delay, rise_time=slew,
                                     width=width)}
        for side, value in sides.items():
            sources[side] = constant_source(vdd if value else 0.0)
        initial = {"out": vdd}
        for net in netlist.nets():
            if net.startswith("pu_"):
                initial[net] = vdd
            elif net.startswith("pd_"):
                initial[net] = 0.0
        built.append(SimulationCase(netlist, sources, initial))

    return gate, pin, labels, built, stop, time_step


def _measure_cases(gate, pin, labels, cases, stop, time_step,
                   engine: str) -> List[CellSweepPoint]:
    """Integrate planned cases as one batch and reduce the waveforms."""
    if engine == "batch":
        results = run_transient_batch(cases, stop_time=stop,
                                      time_step=time_step)
    else:
        results = [
            TransientSimulator(case.netlist, case.sources,
                               case.initial_conditions)
            .run(stop, time_step, engine="loop")
            for case in cases
        ]

    points: List[CellSweepPoint] = []
    for (drive, load, slew, corner_name, vdd), result in zip(labels, results):
        rise, fall, energy = _measure_case(result, pin, vdd)
        points.append(
            CellSweepPoint(
                cell=gate.name,
                drive_strength=drive,
                load_capacitance_f=load,
                input_slew_s=slew,
                corner=corner_name,
                vdd=vdd,
                delay_rise_s=rise,
                delay_fall_s=fall,
                energy_per_cycle_j=energy,
            )
        )
    return points


def characterize_sweep(
    gate_names: Sequence[str] = ("INV", "NAND2"),
    drive_strengths: Sequence[float] = (1.0, 2.0),
    load_capacitances_f: Sequence[float] = MEASURED_LOADS_F,
    input_slews_s: Sequence[float] = (MEASURED_SLEW_S,),
    corners: Optional[Mapping[str, TechnologyConfig]] = None,
    unit_width: float = 4.0,
    switched_pin: Optional[str] = None,
    engine: str = "batch",
) -> CharacterizationSweep:
    """Measure every cell across a (drive × load × slew × corner) grid.

    For each cell the whole grid is lowered to topology-identical
    :class:`~repro.circuit.simulator.SimulationCase` corners — device
    sizes per drive, explicit output capacitors per load, stimulus edges
    per slew, devices/supply per corner — and integrated in **one**
    vectorized batch; the per-corner waveforms are then reduced to rise /
    fall delay and energy.  ``engine="loop"`` runs the same cases one at a
    time through the scalar reference engine (bit-identical results, used
    by the regression tests).
    """
    from ..logic.functions import standard_gate

    corners = dict(corners) if corners else {"nominal": cnfet_technology()}
    if not (gate_names and drive_strengths and load_capacitances_f
            and input_slews_s and corners):
        raise CharacterizationError("characterize_sweep needs non-empty axes")
    if engine not in ("batch", "loop"):
        raise CharacterizationError(f"Unknown engine {engine!r}")

    points: List[CellSweepPoint] = []
    for gate_name in gate_names:
        gate, pin, labels, built, stop, time_step = _plan_cell_cases(
            gate_name, drive_strengths, load_capacitances_f, input_slews_s,
            corners, unit_width, switched_pin,
        )
        points.extend(
            _measure_cases(gate, pin, labels, built, stop, time_step, engine)
        )

    return CharacterizationSweep(
        cells=tuple(standard_gate(name).name for name in gate_names),
        drive_strengths=tuple(drive_strengths),
        load_capacitances_f=tuple(load_capacitances_f),
        input_slews_s=tuple(input_slews_s),
        corners=tuple(corners),
        points=points,
    )


def characterize_cases(
    gate_name: str,
    case_indices: Sequence[int],
    drive_strengths: Sequence[float] = (1.0, 2.0),
    load_capacitances_f: Sequence[float] = MEASURED_LOADS_F,
    input_slews_s: Sequence[float] = (MEASURED_SLEW_S,),
    corners: Optional[Mapping[str, TechnologyConfig]] = None,
    unit_width: float = 4.0,
    switched_pin: Optional[str] = None,
    engine: str = "batch",
) -> List[CellSweepPoint]:
    """Evaluate a subset of one cell's characterisation grid.

    ``case_indices`` are flat ``itertools.product`` indices over the
    ``(drive, load, slew, corner)`` grid — the same order as the per-cell
    block of :meth:`CharacterizationSweep.points`.  The **whole** grid is
    planned (cheap, analytical) so the shared time base matches the full
    batch exactly, then only the selected cases are integrated; the
    returned points are bit-identical to the corresponding points of
    :func:`characterize_sweep`.  This is the primitive the runtime
    scheduler shards transient sweeps on.
    """
    corners = dict(corners) if corners else {"nominal": cnfet_technology()}
    if not (drive_strengths and load_capacitances_f and input_slews_s
            and corners):
        raise CharacterizationError("characterize_cases needs non-empty axes")
    if engine not in ("batch", "loop"):
        raise CharacterizationError(f"Unknown engine {engine!r}")

    gate, pin, labels, built, stop, time_step = _plan_cell_cases(
        gate_name, drive_strengths, load_capacitances_f, input_slews_s,
        corners, unit_width, switched_pin,
    )
    total = len(built)
    for index in case_indices:
        if not 0 <= index < total:
            raise CharacterizationError(
                f"Case index {index} outside the {total}-case grid of "
                f"{gate.name!r}"
            )
    selected_labels = [labels[index] for index in case_indices]
    selected_cases = [built[index] for index in case_indices]
    return _measure_cases(gate, pin, selected_labels, selected_cases,
                          stop, time_step, engine)


def format_characterization(sweep: CharacterizationSweep) -> str:
    """Render a characterisation sweep as a text table."""
    header = (
        f"{'cell':>6} {'drive':>6} {'load(fF)':>9} {'slew(ps)':>9} "
        f"{'corner':>8} {'t_rise(ps)':>11} {'t_fall(ps)':>11} {'E(fJ)':>8}"
    )
    lines = [header, "-" * len(header)]
    for p in sweep.points:
        lines.append(
            f"{p.cell:>6} {p.drive_strength:>5g}X {p.load_capacitance_f * 1e15:>9.2f} "
            f"{p.input_slew_s * 1e12:>9.2f} {p.corner:>8} "
            f"{p.delay_rise_s * 1e12:>11.2f} {p.delay_fall_s * 1e12:>11.2f} "
            f"{p.energy_per_cycle_j * 1e15:>8.3f}"
        )
    return "\n".join(lines)


def measured_timing_models(
    gate: GateNetworks,
    tech: TechnologyConfig,
    unit_width: float = 4.0,
    drive_strengths: Sequence[float] = (1.0,),
    loads: Sequence[float] = MEASURED_LOADS_F,
    slew: float = MEASURED_SLEW_S,
) -> Dict[float, CellTimingModel]:
    """Distil measured waveform delays into linear Liberty-ready models.

    Runs one batch sweep of the gate over ``drive_strengths × loads``,
    fits worst-case delay against load per drive (least squares), and
    returns models whose ``drive_resistance`` is the fitted slope and
    ``parasitic_capacitance`` the zero-load intercept — so
    ``stage_delay(load)`` reproduces the *measured* delays instead of the
    logical-effort estimate.  Input capacitance keeps the analytical
    per-pin value (the delay fit cannot observe it).
    """
    if len(loads) < 2:
        raise CharacterizationError(
            "measured_timing_models needs >= 2 load points for the delay fit"
        )
    sweep = characterize_sweep(
        gate_names=(gate.name,),
        drive_strengths=drive_strengths,
        load_capacitances_f=loads,
        input_slews_s=(slew,),
        corners={"nominal": tech},
        unit_width=unit_width,
    )
    delays = sweep.grid("worst_delay_s")[0, :, :, 0, 0]     # (drive, load)
    load_axis = np.array(loads)
    models: Dict[float, CellTimingModel] = {}
    for drive_i, drive in enumerate(drive_strengths):
        slope, intercept = np.polyfit(load_axis, delays[drive_i], 1)
        if slope <= 0:
            raise CharacterizationError(
                f"Measured delay of {gate.name!r} at {drive:g}X does not "
                "increase with load; fit is unusable"
            )
        analytical = characterize_gate(
            gate, tech, unit_width=unit_width, drive_strength=drive
        )
        models[drive] = CellTimingModel(
            cell_type=gate.name,
            drive_strength=drive,
            input_capacitance=analytical.input_capacitance,
            drive_resistance=float(slope),
            parasitic_capacitance=float(max(intercept, 0.0) / slope),
        )
    return models
