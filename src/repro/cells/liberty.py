"""Minimal Liberty (.lib) export of a characterised cell library.

The conventional logic-to-GDSII flow the paper plugs into consumes Liberty
timing views.  This writer emits the subset downstream tools (and our own
parser-free tests) need: library-level units, and per-cell area, pin
directions, pin capacitances and a single linear delay model expressed as
``intrinsic + resistance × load``.

The delay numbers carry whatever timing view the library was built with:
the logical-effort RC abstraction, or — for
``build_library(timing_source="measured")`` — delays fitted to waveforms
from the batch transient engine.  The export records the origin in a
``/* timing_source : ... */`` comment so downstream consumers can tell
the two apart.
"""

from __future__ import annotations

from typing import List

from ..errors import LibraryError
from .library import StandardCellLibrary


def _fmt(value: float, digits: int = 6) -> str:
    return f"{value:.{digits}g}"


def write_liberty(library: StandardCellLibrary, area_unit_um2: float = None) -> str:
    """Render the library as Liberty text and return it."""
    if len(library) == 0:
        raise LibraryError(f"Library {library.name!r} has no cells to export")
    lambda_um = library.rules.lambda_nm / 1000.0
    area_scale = lambda_um * lambda_um if area_unit_um2 is None else area_unit_um2

    lines: List[str] = []
    lines.append(f"library ({library.name}) {{")
    lines.append("  delay_model : table_lookup;")
    lines.append("  time_unit : \"1ps\";")
    lines.append("  voltage_unit : \"1V\";")
    lines.append("  current_unit : \"1uA\";")
    lines.append("  capacitive_load_unit (1, ff);")
    lines.append(f"  nom_voltage : {_fmt(library.technology.vdd)};")
    lines.append(f"  /* timing_source : {library.timing_source} */")
    lines.append("")

    for cell in sorted(library.cells(), key=lambda c: c.name):
        timing = cell.timing
        area_um2 = cell.area * area_scale
        lines.append(f"  cell ({cell.name}) {{")
        lines.append(f"    area : {_fmt(area_um2)};")
        for pin_name in cell.gate.inputs:
            lines.append(f"    pin ({pin_name}) {{")
            lines.append("      direction : input;")
            lines.append(
                f"      capacitance : {_fmt(timing.input_capacitance * 1e15)};"
            )
            lines.append("    }")
        lines.append("    pin (out) {")
        lines.append("      direction : output;")
        lines.append(f"      function : \"{_liberty_function(cell)}\";")
        lines.append("      timing () {")
        lines.append(f"        related_pin : \"{' '.join(cell.gate.inputs)}\";")
        intrinsic_ps = timing.drive_resistance * timing.parasitic_capacitance * 1e12
        slope_ps_per_ff = timing.drive_resistance * 1e12 * 1e-15
        lines.append(f"        intrinsic_rise : {_fmt(intrinsic_ps)};")
        lines.append(f"        intrinsic_fall : {_fmt(intrinsic_ps)};")
        lines.append(f"        rise_resistance : {_fmt(slope_ps_per_ff)};")
        lines.append(f"        fall_resistance : {_fmt(slope_ps_per_ff)};")
        lines.append("      }")
        lines.append("    }")
        lines.append("  }")
        lines.append("")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _liberty_function(cell) -> str:
    """Liberty boolean function string of an inverting gate: ``!(f)``."""
    expression = str(cell.gate.pulldown_function)
    expression = expression.replace("*", " & ").replace("+", " | ")
    return f"!({expression})"


def save_liberty(library: StandardCellLibrary, path: str) -> str:
    """Write the Liberty file to ``path`` and return the path."""
    text = write_liberty(library)
    with open(path, "w", encoding="ascii") as stream:
        stream.write(text)
    return path
