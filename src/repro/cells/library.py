"""CNFET standard-cell library generation (Section IV.A).

A :class:`StandardCellLibrary` bundles, for every (gate, drive strength)
pair, the physical layout produced by the compact technique (in either
standardisation scheme), the electrical timing model, and the area of the
equivalent CMOS cell, so the flow and the case studies can pull everything
from one place.  Cells are referenced by names like ``NAND2_4X``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuit.logical_effort import CellTimingModel, TimingLibrary
from ..core.standard_cell import (
    SCHEME_SIDE_BY_SIDE,
    SCHEME_STACKED,
    CMOSCellArea,
    StandardCell,
    assemble_cell,
    cmos_cell_area,
)
from ..errors import LibraryError
from ..logic.functions import standard_gate
from ..logic.network import GateNetworks
from ..tech.lambda_rules import CMOS_RULES, CNFET_RULES, DesignRules
from .characterize import (
    MEASURED_LOADS_F,
    MEASURED_SLEW_S,
    TechnologyConfig,
    characterize_gate,
    cnfet_technology,
    cmos_technology,
    measured_timing_models,
)

#: Default gate set of the library (the cells of Table 1 plus the OAI duals
#: and the AOI31 example of Figure 4).
DEFAULT_GATE_SET: Tuple[str, ...] = (
    "INV", "NAND2", "NAND3", "NOR2", "NOR3", "AOI21", "AOI22", "AOI31",
    "OAI21", "OAI22",
)

#: Default drive strengths, matching the full adder of Figure 8 (2X/4X/7X/9X).
DEFAULT_DRIVE_STRENGTHS: Tuple[float, ...] = (1.0, 2.0, 4.0, 7.0, 9.0)


@dataclass
class LibraryCell:
    """One library entry: layout + timing + CMOS reference."""

    name: str
    gate: GateNetworks
    drive_strength: float
    layout: StandardCell
    timing: CellTimingModel
    cmos_reference: CMOSCellArea

    @property
    def area(self) -> float:
        """CNFET cell area in λ²."""
        return self.layout.area

    @property
    def height(self) -> float:
        return self.layout.height

    @property
    def width(self) -> float:
        return self.layout.width

    @property
    def area_gain_vs_cmos(self) -> float:
        """How many times smaller than the equivalent CMOS cell."""
        return self.cmos_reference.area / self.layout.area if self.layout.area else 0.0


def cell_key(gate_name: str, drive_strength: float) -> str:
    """Canonical library cell name, e.g. ``NAND2_4X``."""
    return f"{gate_name.upper()}_{drive_strength:g}X"


class StandardCellLibrary:
    """A generated CNFET standard-cell library."""

    def __init__(self, name: str, scheme: int, technology: TechnologyConfig,
                 unit_width: float, rules: DesignRules,
                 timing_source: str = "logical_effort"):
        self.name = name
        self.scheme = scheme
        self.technology = technology
        self.unit_width = unit_width
        self.rules = rules
        #: "logical_effort" (RC abstraction) or "measured" (delays fitted
        #: to batch transient waveforms); recorded in the Liberty export.
        self.timing_source = timing_source
        self._cells: Dict[str, LibraryCell] = {}

    # -- construction -------------------------------------------------------------

    def add_cell(self, cell: LibraryCell) -> None:
        if cell.name in self._cells:
            raise LibraryError(f"Duplicate library cell {cell.name!r}")
        self._cells[cell.name] = cell

    # -- queries -------------------------------------------------------------------

    def cell(self, gate_name: str, drive_strength: float = 1.0) -> LibraryCell:
        key = cell_key(gate_name, drive_strength)
        try:
            return self._cells[key]
        except KeyError:
            raise LibraryError(
                f"Library {self.name!r} has no cell {key!r}; available: "
                f"{sorted(self._cells)}"
            ) from None

    def has_cell(self, gate_name: str, drive_strength: float = 1.0) -> bool:
        return cell_key(gate_name, drive_strength) in self._cells

    def cells(self) -> List[LibraryCell]:
        return list(self._cells.values())

    def cell_names(self) -> List[str]:
        return sorted(self._cells)

    def gate_types(self) -> List[str]:
        return sorted({cell.gate.name for cell in self._cells.values()})

    def drive_strengths(self, gate_name: str) -> List[float]:
        return sorted(
            cell.drive_strength
            for cell in self._cells.values()
            if cell.gate.name == gate_name.upper()
        )

    def max_cell_height(self) -> float:
        """Tallest cell height — the standardised row height of scheme 1."""
        if not self._cells:
            raise LibraryError(f"Library {self.name!r} is empty")
        return max(cell.height for cell in self._cells.values())

    def timing_library(self) -> TimingLibrary:
        """Export all timing models as a :class:`TimingLibrary`."""
        timing = TimingLibrary(self.name, vdd=self.technology.vdd)
        for cell in self._cells.values():
            timing.add(cell.timing)
        return timing

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self):
        return iter(self._cells.values())


def build_library(
    name: str = "cnfet65_compact",
    gate_names: Sequence[str] = DEFAULT_GATE_SET,
    drive_strengths: Sequence[float] = DEFAULT_DRIVE_STRENGTHS,
    scheme: int = SCHEME_STACKED,
    technique: str = "compact",
    unit_width: float = 4.0,
    technology: Optional[TechnologyConfig] = None,
    rules: DesignRules = CNFET_RULES,
    cmos_rules: DesignRules = CMOS_RULES,
    timing_source: str = "logical_effort",
    measured_loads: Sequence[float] = MEASURED_LOADS_F,
    measured_slew: float = MEASURED_SLEW_S,
) -> StandardCellLibrary:
    """Generate a complete standard-cell library.

    Every cell gets the compact immune layout (or the requested technique),
    its timing characterisation, and the area of the equivalent CMOS cell
    for the comparisons of Section V.

    ``timing_source`` selects the electrical view: ``"logical_effort"``
    keeps the fast RC abstraction; ``"measured"`` runs each gate's drive
    strengths through one batch transient sweep
    (:func:`~repro.cells.characterize.measured_timing_models`) so the
    Liberty export carries waveform-measured delays.
    """
    if scheme not in (SCHEME_STACKED, SCHEME_SIDE_BY_SIDE):
        raise LibraryError(f"Unknown scheme {scheme}")
    if timing_source not in ("logical_effort", "measured"):
        raise LibraryError(f"Unknown timing source {timing_source!r}")
    technology = technology or cnfet_technology()
    library = StandardCellLibrary(name, scheme, technology, unit_width, rules,
                                  timing_source=timing_source)

    for gate_name in gate_names:
        gate_timing: Dict[float, object] = {}
        if timing_source == "measured":
            gate_timing = measured_timing_models(
                standard_gate(gate_name), technology, unit_width=unit_width,
                drive_strengths=drive_strengths, loads=measured_loads,
                slew=measured_slew,
            )
        for drive in drive_strengths:
            gate = standard_gate(gate_name)
            layout = assemble_cell(
                gate,
                technique=technique,
                scheme=scheme,
                unit_width=unit_width,
                drive_strength=drive,
                rules=rules,
                name=cell_key(gate_name, drive),
            )
            timing = gate_timing.get(drive) or characterize_gate(
                gate, technology, unit_width=unit_width, drive_strength=drive
            )
            cmos_ref = cmos_cell_area(
                gate, unit_width=unit_width, drive_strength=drive, rules=cmos_rules
            )
            library.add_cell(
                LibraryCell(
                    name=cell_key(gate_name, drive),
                    gate=gate,
                    drive_strength=drive,
                    layout=layout,
                    timing=timing,
                    cmos_reference=cmos_ref,
                )
            )
    return library


def build_cmos_timing_library(
    gate_names: Sequence[str] = DEFAULT_GATE_SET,
    drive_strengths: Sequence[float] = DEFAULT_DRIVE_STRENGTHS,
    unit_width: float = 4.0,
    technology: Optional[TechnologyConfig] = None,
) -> TimingLibrary:
    """Timing library of the reference CMOS cells (same logic, 65 nm MOSFETs)."""
    technology = technology or cmos_technology()
    timing = TimingLibrary("cmos65_reference", vdd=technology.vdd)
    for gate_name in gate_names:
        for drive in drive_strengths:
            gate = standard_gate(gate_name)
            timing.add(
                characterize_gate(gate, technology, unit_width=unit_width,
                                  drive_strength=drive)
            )
    return timing
