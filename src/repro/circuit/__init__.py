"""Circuit substrate: netlists, simulation, FO4 analysis, timing models."""

from .extraction import (
    ExtractionParameters,
    ExtractionReport,
    NetParasitics,
    ParasiticExtractor,
)
from .fo4 import (
    DELAY_FIT_CONSTANT,
    FO4Comparison,
    FO4Metrics,
    compare_fo4,
    fo4_load_capacitance,
    fo4_metrics,
    fo4_metrics_transient,
    fo4_transient_sweep,
)
from .inverter import Inverter, cmos_inverter, cnfet_inverter
from .logical_effort import (
    CellTimingModel,
    PathTimingResult,
    TimingLibrary,
    analyse_netlist,
)
from .netlist import (
    GND,
    VDD,
    CapacitorInstance,
    GateInstance,
    GateNetlist,
    TransistorInstance,
    TransistorNetlist,
)
from .simulator import (
    CompiledTransientBatch,
    InverterChainResult,
    PiecewiseLinearSource,
    SimulationCase,
    TransientResult,
    TransientSimulator,
    build_inverter_chain,
    constant_source,
    pulse_source,
    run_transient_batch,
    simulate_inverter_chain,
    simulate_inverter_chain_batch,
    stability_substep,
    step_source,
)
from .spice_writer import save_spice, write_spice

__all__ = [
    "ExtractionParameters", "ExtractionReport", "NetParasitics", "ParasiticExtractor",
    "DELAY_FIT_CONSTANT", "FO4Comparison", "FO4Metrics", "compare_fo4",
    "fo4_load_capacitance", "fo4_metrics", "fo4_metrics_transient",
    "fo4_transient_sweep",
    "Inverter", "cmos_inverter", "cnfet_inverter",
    "CellTimingModel", "PathTimingResult", "TimingLibrary", "analyse_netlist",
    "GND", "VDD", "CapacitorInstance", "GateInstance", "GateNetlist",
    "TransistorInstance", "TransistorNetlist",
    "CompiledTransientBatch", "InverterChainResult", "PiecewiseLinearSource",
    "SimulationCase", "TransientResult", "TransientSimulator",
    "build_inverter_chain", "constant_source", "pulse_source",
    "run_transient_batch", "simulate_inverter_chain",
    "simulate_inverter_chain_batch", "stability_substep", "step_source",
    "save_spice", "write_spice",
]
