"""Post-layout parasitic extraction.

The design kit's post-layout analysis block (Figure 5) extracts parasitics
from the drawn cells so the electrical comparison includes layout loading,
not just intrinsic device capacitance.  The extractor here is deliberately
simple but complete for the cell-level layouts this library generates:

* metal area capacitance to the substrate per routing layer,
* metal-to-metal coupling is folded into an effective per-area factor,
* contact resistance per contact cut, and
* poly gate resistance per square.

All values are per the 65 nm-class back-end the paper reuses above the CNT
plane; they are applied per layer area measured straight off the layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import NetlistError
from ..geometry.layout import LayoutCell
from ..tech.lambda_rules import CNFET_RULES, DesignRules


@dataclass(frozen=True)
class ExtractionParameters:
    """Back-end parasitic coefficients (65 nm-class defaults)."""

    #: metal area capacitance to substrate [F/um^2] (includes coupling share)
    metal_area_cap_per_um2: float = 0.06e-15
    #: poly area capacitance outside the channel [F/um^2]
    poly_area_cap_per_um2: float = 0.08e-15
    #: resistance of one contact cut [ohm]
    contact_resistance: float = 12.0
    #: metal sheet resistance [ohm/square]
    metal_sheet_resistance: float = 0.15
    #: poly sheet resistance [ohm/square]
    poly_sheet_resistance: float = 8.0


@dataclass(frozen=True)
class NetParasitics:
    """Extracted parasitics of one net."""

    net: str
    capacitance: float
    resistance: float


@dataclass
class ExtractionReport:
    """Per-net parasitics plus cell-level summaries."""

    cell_name: str
    nets: Dict[str, NetParasitics] = field(default_factory=dict)

    @property
    def total_capacitance(self) -> float:
        return sum(p.capacitance for p in self.nets.values())

    def capacitance(self, net: str) -> float:
        return self.nets[net].capacitance if net in self.nets else 0.0

    def resistance(self, net: str) -> float:
        return self.nets[net].resistance if net in self.nets else 0.0


class ParasiticExtractor:
    """Extract wiring parasitics from an annotated cell layout."""

    def __init__(self, rules: DesignRules = CNFET_RULES,
                 parameters: Optional[ExtractionParameters] = None):
        self.rules = rules
        self.parameters = parameters or ExtractionParameters()

    def extract(self, cell: LayoutCell) -> ExtractionReport:
        """Extract per-net parasitics from a generated cell.

        Metal shapes are attributed to nets through the cell annotations
        (contacts carry net names); remaining routing metal is charged to an
        ``__routing__`` pseudo-net so nothing is silently dropped.
        """
        from ..core.spec import get_annotations  # local import avoids a cycle

        report = ExtractionReport(cell_name=cell.name)
        try:
            annotations = get_annotations(cell)
        except Exception:
            annotations = None

        lambda_um = self.rules.lambda_nm / 1000.0
        area_factor = lambda_um * lambda_um

        assigned_area: Dict[str, float] = {}
        contact_counts: Dict[str, int] = {}
        if annotations is not None:
            for contact in annotations.contacts:
                area_um2 = contact.rect.area * area_factor
                assigned_area[contact.net] = assigned_area.get(contact.net, 0.0) + area_um2
                contact_counts[contact.net] = contact_counts.get(contact.net, 0) + 1

        total_metal_area = 0.0
        for layer in cell.layers():
            if not layer.startswith("metal"):
                continue
            for rect in cell.shapes(layer):
                total_metal_area += rect.area * area_factor
        unassigned_area = max(0.0, total_metal_area - sum(assigned_area.values()))

        params = self.parameters
        for net, area_um2 in assigned_area.items():
            count = max(1, contact_counts.get(net, 1))
            resistance = params.contact_resistance / count
            capacitance = area_um2 * params.metal_area_cap_per_um2
            report.nets[net] = NetParasitics(net, capacitance, resistance)

        if unassigned_area > 0:
            report.nets["__routing__"] = NetParasitics(
                "__routing__",
                unassigned_area * params.metal_area_cap_per_um2,
                params.metal_sheet_resistance,
            )
        return report

    def wire_capacitance(self, length_lambda: float,
                         width_lambda: Optional[float] = None) -> float:
        """Capacitance of a metal-1 wire of the given length [F]."""
        if length_lambda < 0:
            raise NetlistError("Wire length must be non-negative")
        width_lambda = width_lambda or self.rules.min_metal_width
        lambda_um = self.rules.lambda_nm / 1000.0
        area_um2 = length_lambda * width_lambda * lambda_um * lambda_um
        return area_um2 * self.parameters.metal_area_cap_per_um2

    def wire_resistance(self, length_lambda: float,
                        width_lambda: Optional[float] = None) -> float:
        """Resistance of a metal-1 wire of the given length [ohm]."""
        if length_lambda < 0:
            raise NetlistError("Wire length must be non-negative")
        width_lambda = width_lambda or self.rules.min_metal_width
        squares = length_lambda / width_lambda if width_lambda else 0.0
        return squares * self.parameters.metal_sheet_resistance
