"""FO4 (fan-out-of-4) delay and switching-energy analysis.

Case study 1 of the paper measures the third stage of a five-stage FO4
inverter chain at 1 V.  This module provides two ways to obtain the same
metrics:

* :func:`fo4_metrics` — a fast analytical estimate
  (``delay = k · C_load · Vdd / I_drive``, ``energy = C_load · Vdd²``)
  used by the large parameter sweeps of Figure 7; and
* :func:`fo4_metrics_transient` — a waveform measurement on the actual
  five-stage chain using :mod:`repro.circuit.simulator`, used to sanity
  check the analytical model.

Both report the delay of a representative mid-chain stage loaded by four
copies of itself, which is what "FO4 delay" means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

from ..errors import SimulationError
from .inverter import Inverter

#: Proportionality constant of the analytical delay estimate.  It cancels in
#: every CNFET/CMOS ratio the paper reports; the absolute value is chosen so
#: the reference CMOS inverter lands in the usual ~20-25 ps FO4 range.
DELAY_FIT_CONSTANT = 0.69


@dataclass(frozen=True)
class FO4Metrics:
    """FO4 figures of one inverter flavour."""

    delay_s: float
    energy_per_cycle_j: float
    load_capacitance_f: float
    drive_current_a: float
    supply_voltage: float

    @property
    def edp(self) -> float:
        """Energy-delay product [J·s]."""
        return self.delay_s * self.energy_per_cycle_j


def fo4_load_capacitance(inverter: Inverter, fanout: int = 4) -> float:
    """Capacitance switched by one FO4 stage: its own drain parasitics plus
    ``fanout`` copies of its input capacitance."""
    return inverter.output_capacitance() + fanout * inverter.input_capacitance()


def fo4_metrics(inverter: Inverter, vdd: float = 1.0, fanout: int = 4) -> FO4Metrics:
    """Analytical FO4 delay and switching energy per cycle."""
    if vdd <= 0:
        raise SimulationError("vdd must be positive")
    load = fo4_load_capacitance(inverter, fanout)
    drive = inverter.drive_current(vdd)
    if drive <= 0:
        raise SimulationError(f"Inverter {inverter.name!r} has no drive at {vdd} V")
    delay = DELAY_FIT_CONSTANT * load * vdd / drive
    # One full cycle charges and discharges the load once: E = C V^2.
    energy = load * vdd * vdd
    return FO4Metrics(
        delay_s=delay,
        energy_per_cycle_j=energy,
        load_capacitance_f=load,
        drive_current_a=drive,
        supply_voltage=vdd,
    )


@dataclass(frozen=True)
class FO4Comparison:
    """CNFET-vs-CMOS gains for one configuration (paper Figure 7 points)."""

    cnfet: FO4Metrics
    cmos: FO4Metrics

    @property
    def delay_gain(self) -> float:
        """How many times faster the CNFET inverter is."""
        return self.cmos.delay_s / self.cnfet.delay_s

    @property
    def energy_gain(self) -> float:
        """How many times less energy per cycle the CNFET inverter uses."""
        return self.cmos.energy_per_cycle_j / self.cnfet.energy_per_cycle_j

    @property
    def edp_gain(self) -> float:
        """Energy-delay-product improvement."""
        return self.cmos.edp / self.cnfet.edp


def compare_fo4(cnfet_inverter: Inverter, cmos_inverter: Inverter,
                vdd: float = 1.0) -> FO4Comparison:
    """Run the analytical FO4 analysis for both flavours at the same supply."""
    return FO4Comparison(
        cnfet=fo4_metrics(cnfet_inverter, vdd),
        cmos=fo4_metrics(cmos_inverter, vdd),
    )


def fo4_metrics_transient(inverter: Inverter, vdd: float = 1.0,
                          stages: int = 5, fanout: int = 4) -> FO4Metrics:
    """FO4 metrics measured on a transient simulation of the inverter chain.

    Builds the paper's five-stage chain where every stage drives ``fanout``
    copies of itself (the extra copies are modelled as load capacitance),
    applies a full-swing step and measures the 50 %-to-50 % propagation
    delay of the middle stage and the total switched charge per cycle.
    """
    from .simulator import simulate_inverter_chain  # local import to avoid cycle

    if stages < 3:
        raise SimulationError("The FO4 chain needs at least 3 stages")
    result = simulate_inverter_chain(inverter, vdd=vdd, stages=stages, fanout=fanout)
    return FO4Metrics(
        delay_s=result.mid_stage_delay_s,
        energy_per_cycle_j=result.energy_per_cycle_j,
        load_capacitance_f=fo4_load_capacitance(inverter, fanout),
        drive_current_a=inverter.drive_current(vdd),
        supply_voltage=vdd,
    )


def fo4_transient_sweep(
    inverters: Sequence[Inverter],
    vdd: Union[float, Sequence[float]] = 1.0,
    stages: int = 5,
    fanout: int = 4,
) -> List[FO4Metrics]:
    """Waveform-level FO4 metrics for many inverter corners in one batch.

    The multi-corner counterpart of :func:`fo4_metrics_transient`: every
    corner's five-stage chain (a CNT-count/pitch sweep, a supply sweep, or
    the CMOS reference riding along) is integrated in a single vectorized
    :func:`~repro.circuit.simulator.run_transient_batch` call, which is
    how Figure 7's waveform cross-checks stay affordable at many corners.

    ``vdd`` is a shared scalar or one supply per corner.
    """
    from .simulator import _per_corner_supplies, simulate_inverter_chain_batch

    if stages < 3:
        raise SimulationError("The FO4 chain needs at least 3 stages")
    supplies = _per_corner_supplies(vdd, len(inverters))
    results = simulate_inverter_chain_batch(
        inverters, vdd=supplies, stages=stages, fanout=fanout
    )
    return [
        FO4Metrics(
            delay_s=result.mid_stage_delay_s,
            energy_per_cycle_j=result.energy_per_cycle_j,
            load_capacitance_f=fo4_load_capacitance(inverter, fanout),
            drive_current_a=inverter.drive_current(supply),
            supply_voltage=supply,
        )
        for inverter, supply, result in zip(inverters, supplies, results)
    ]
