"""Inverter abstractions shared by the CNFET and CMOS comparisons.

An :class:`Inverter` couples one pull-up and one pull-down device (either
:class:`~repro.devices.cnfet.CNFET` or :class:`~repro.devices.mosfet.MOSFET`
— they expose the same electrical interface) and provides the aggregate
quantities the FO4 analysis of Section V needs: input capacitance, output
self-capacitance and effective drive current.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..devices.cnfet import CNFET, CNFETParameters
from ..devices.mosfet import MOSFET, MOSFETParameters
from ..errors import DeviceModelError

Device = Union[CNFET, MOSFET]


@dataclass
class Inverter:
    """A static inverter built from one pull-up and one pull-down device."""

    pull_down: Device
    pull_up: Device
    name: str = "INV"

    def __post_init__(self):
        if self.pull_down.polarity != "n":
            raise DeviceModelError("pull_down device must be n-type")
        if self.pull_up.polarity != "p":
            raise DeviceModelError("pull_up device must be p-type")

    # -- aggregate electrical quantities ----------------------------------------

    def input_capacitance(self) -> float:
        """Total gate capacitance presented to the driver [F]."""
        return self.pull_down.gate_capacitance() + self.pull_up.gate_capacitance()

    def output_capacitance(self) -> float:
        """Self-loading (drain parasitic) capacitance at the output [F]."""
        return self.pull_down.drain_capacitance() + self.pull_up.drain_capacitance()

    def drive_current(self, vdd: float) -> float:
        """Effective switching drive: the average of the pull-up and
        pull-down on-currents [A]."""
        return 0.5 * (self.pull_down.on_current(vdd) + self.pull_up.on_current(vdd))

    def scaled(self, factor: float) -> "Inverter":
        """An inverter ``factor`` times stronger (both devices scaled)."""
        return Inverter(
            pull_down=self.pull_down.scaled(factor),
            pull_up=self.pull_up.scaled(factor),
            name=f"{self.name}x{factor:g}",
        )


def cnfet_inverter(
    num_tubes: int = 1,
    gate_width_nm: float = 130.0,
    pitch_nm: Optional[float] = None,
    parameters: Optional[CNFETParameters] = None,
) -> Inverter:
    """A CNFET inverter with symmetric n/p devices (Section V sizes the two
    devices identically because their drive is symmetric)."""
    return Inverter(
        pull_down=CNFET("n", num_tubes, gate_width_nm, pitch_nm, parameters),
        pull_up=CNFET("p", num_tubes, gate_width_nm, pitch_nm, parameters),
        name=f"CNFET_INV_{num_tubes}cnt",
    )


def cmos_inverter(
    nmos_width_nm: float = 200.0,
    pmos_width_nm: Optional[float] = None,
    nmos_parameters: Optional[MOSFETParameters] = None,
    pmos_parameters: Optional[MOSFETParameters] = None,
) -> Inverter:
    """The reference 65 nm CMOS inverter (pMOS 1.4× wider than nMOS unless
    given explicitly, matching the paper's Section V sizing)."""
    if pmos_width_nm is None:
        pmos_width_nm = 1.4 * nmos_width_nm
    return Inverter(
        pull_down=MOSFET("n", nmos_width_nm, nmos_parameters),
        pull_up=MOSFET("p", pmos_width_nm, pmos_parameters),
        name="CMOS_INV",
    )
