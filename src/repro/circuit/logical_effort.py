"""Gate-level timing and energy estimation (logical-effort style).

The full-adder case study (Section V.B) compares delay and energy of a
mapped gate-level netlist in both technologies.  Rather than flattening the
whole design to transistors, each library cell is reduced to the classic
RC abstraction: an input capacitance per pin, an effective drive resistance
and a parasitic output capacitance.  Stage delay is then
``R_drive · (C_parasitic + C_load)`` and switching energy is
``(C_parasitic + C_load) · Vdd²``; path delay sums stages along the worst
topological path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import CharacterizationError, NetlistError
from .netlist import GateNetlist, GateInstance


@dataclass(frozen=True)
class CellTimingModel:
    """Electrical abstraction of one library cell (one drive strength)."""

    cell_type: str
    drive_strength: float
    input_capacitance: float        # per input pin [F]
    drive_resistance: float         # effective pull resistance [ohm]
    parasitic_capacitance: float    # output self-loading [F]
    #: switching activity factor used for energy accounting
    activity: float = 1.0

    def stage_delay(self, load_capacitance: float) -> float:
        """Delay of this cell driving ``load_capacitance`` [s]."""
        return self.drive_resistance * (self.parasitic_capacitance + load_capacitance)

    def switching_energy(self, load_capacitance: float, vdd: float) -> float:
        """Energy of one output transition [J]."""
        return (self.parasitic_capacitance + load_capacitance) * vdd * vdd


class TimingLibrary:
    """A set of cell timing models keyed by (cell type, drive strength)."""

    def __init__(self, name: str, vdd: float = 1.0):
        self.name = name
        self.vdd = vdd
        self._models: Dict[Tuple[str, float], CellTimingModel] = {}

    def add(self, model: CellTimingModel) -> None:
        key = (model.cell_type.upper(), model.drive_strength)
        self._models[key] = model

    def lookup(self, cell_type: str, drive_strength: float = 1.0) -> CellTimingModel:
        """Find the model for a cell, falling back to the nearest available
        drive strength (scaling R and C accordingly is the caller's job)."""
        key = (cell_type.upper(), drive_strength)
        if key in self._models:
            return self._models[key]
        candidates = [k for k in self._models if k[0] == cell_type.upper()]
        if not candidates:
            raise CharacterizationError(
                f"Library {self.name!r} has no cell {cell_type!r}"
            )
        nearest = min(candidates, key=lambda k: abs(k[1] - drive_strength))
        base = self._models[nearest]
        scale = drive_strength / base.drive_strength
        return CellTimingModel(
            cell_type=base.cell_type,
            drive_strength=drive_strength,
            input_capacitance=base.input_capacitance * scale,
            drive_resistance=base.drive_resistance / scale,
            parasitic_capacitance=base.parasitic_capacitance * scale,
        )

    def cell_types(self) -> List[str]:
        return sorted({key[0] for key in self._models})


@dataclass(frozen=True)
class PathTimingResult:
    """Worst-path delay and total switching energy of a netlist."""

    critical_path_delay: float
    critical_path: Tuple[str, ...]
    total_energy_per_cycle: float
    arrival_times: Dict[str, float]


def analyse_netlist(
    netlist: GateNetlist,
    library: TimingLibrary,
    output_load: float = 0.0,
    primary_input_arrival: float = 0.0,
) -> PathTimingResult:
    """Static timing + energy analysis of a combinational gate netlist.

    Arrival times propagate in topological order; each net's load is the sum
    of the input capacitances of the gates it fans out to (plus
    ``output_load`` on primary outputs).  Energy assumes every gate switches
    once per cycle (activity 1), matching the paper's energy-per-cycle
    metric for the full adder.
    """
    netlist.validate()
    arrival: Dict[str, float] = {net: primary_input_arrival for net in netlist.inputs}
    worst_driver: Dict[str, Optional[str]] = {net: None for net in netlist.inputs}
    total_energy = 0.0

    models: Dict[str, CellTimingModel] = {}
    for gate in netlist.gates:
        models[gate.name] = library.lookup(gate.cell_type, gate.drive_strength)

    def net_load(net: str) -> float:
        load = sum(
            models[consumer.name].input_capacitance for consumer in netlist.loads(net)
        )
        if net in netlist.outputs:
            load += output_load
        return load

    for gate in netlist.topological_order():
        model = models[gate.name]
        load = net_load(gate.output_net)
        delay = model.stage_delay(load)
        total_energy += model.switching_energy(load, library.vdd)
        input_arrivals = [
            (arrival.get(net, primary_input_arrival), net) for net in gate.input_nets()
        ]
        worst_arrival, worst_net = max(input_arrivals) if input_arrivals else (0.0, None)
        arrival[gate.output_net] = worst_arrival + delay
        worst_driver[gate.output_net] = gate.name

    if not netlist.outputs:
        raise NetlistError(f"Netlist {netlist.name!r} declares no outputs")
    critical_output = max(netlist.outputs, key=lambda net: arrival.get(net, 0.0))
    critical_delay = arrival.get(critical_output, 0.0)

    # Recover the critical path by walking drivers backwards.
    path: List[str] = []
    driver_map = netlist.drivers()
    net = critical_output
    while net in driver_map:
        gate = driver_map[net]
        path.append(gate.name)
        input_nets = gate.input_nets()
        if not input_nets:
            break
        net = max(input_nets, key=lambda n: arrival.get(n, 0.0))
        if arrival.get(net, 0.0) <= primary_input_arrival:
            break
    path.reverse()

    return PathTimingResult(
        critical_path_delay=critical_delay,
        critical_path=tuple(path),
        total_energy_per_cycle=total_energy,
        arrival_times=arrival,
    )
