"""Transistor-level and gate-level netlist structures.

The design-kit flow of Section IV moves between three representations:

* a **gate-level netlist** (the output of logic synthesis / the input of
  technology mapping and placement),
* a **transistor-level netlist** (what the SPICE writer and the transient
  simulator consume), and
* the physical layout (handled by :mod:`repro.core` / :mod:`repro.flow`).

Both netlist flavours live here.  They are deliberately simple containers
with validation — the interesting behaviour is in the tools that use them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..devices.cnfet import CNFET
from ..devices.mosfet import MOSFET
from ..errors import NetlistError

VDD = "vdd"
GND = "gnd"


# ---------------------------------------------------------------------------
# Transistor level
# ---------------------------------------------------------------------------

@dataclass
class TransistorInstance:
    """One FET instance in a transistor-level netlist."""

    name: str
    device: object            # CNFET or MOSFET (duck-typed electrically)
    gate: str
    drain: str
    source: str

    def __post_init__(self):
        if not isinstance(self.device, (CNFET, MOSFET)):
            raise NetlistError(
                f"Transistor {self.name!r} device must be a CNFET or MOSFET, "
                f"got {type(self.device).__name__}"
            )

    @property
    def polarity(self) -> str:
        return self.device.polarity


@dataclass
class CapacitorInstance:
    """A lumped capacitor to ground (wiring load, extracted parasitic)."""

    name: str
    node: str
    capacitance: float

    def __post_init__(self):
        if self.capacitance < 0:
            raise NetlistError(f"Capacitor {self.name!r} must be non-negative")


class TransistorNetlist:
    """A flat transistor-level netlist with Vdd/Gnd rails."""

    def __init__(self, name: str, vdd: float = 1.0):
        if vdd <= 0:
            raise NetlistError("vdd must be positive")
        self.name = name
        self.vdd = vdd
        self.transistors: List[TransistorInstance] = []
        self.capacitors: List[CapacitorInstance] = []
        self.inputs: List[str] = []
        self.outputs: List[str] = []

    def add_transistor(self, name: str, device, gate: str, drain: str,
                       source: str) -> TransistorInstance:
        """Add a FET; names must be unique."""
        if any(t.name == name for t in self.transistors):
            raise NetlistError(f"Duplicate transistor name {name!r}")
        instance = TransistorInstance(name, device, gate, drain, source)
        self.transistors.append(instance)
        return instance

    def add_capacitor(self, name: str, node: str, capacitance: float) -> CapacitorInstance:
        """Add a lumped capacitance from ``node`` to ground."""
        instance = CapacitorInstance(name, node, capacitance)
        self.capacitors.append(instance)
        return instance

    def declare_io(self, inputs: Sequence[str], outputs: Sequence[str]) -> None:
        """Declare primary inputs/outputs (used by the simulator and the
        SPICE writer)."""
        self.inputs = list(inputs)
        self.outputs = list(outputs)

    def nets(self) -> List[str]:
        """Every net name referenced by the netlist."""
        names: List[str] = [VDD, GND]
        for transistor in self.transistors:
            for net in (transistor.gate, transistor.drain, transistor.source):
                if net not in names:
                    names.append(net)
        for capacitor in self.capacitors:
            if capacitor.node not in names:
                names.append(capacitor.node)
        return names

    def internal_nets(self) -> List[str]:
        """Nets that are neither rails nor primary inputs."""
        excluded = {VDD, GND, *self.inputs}
        return [net for net in self.nets() if net not in excluded]

    def total_gate_capacitance(self, net: str) -> float:
        """Gate capacitance presented by all FETs whose gate is ``net``."""
        return sum(
            t.device.gate_capacitance() for t in self.transistors if t.gate == net
        )

    def total_drain_capacitance(self, net: str) -> float:
        """Drain/source parasitics attached to ``net``."""
        total = 0.0
        for transistor in self.transistors:
            if transistor.drain == net or transistor.source == net:
                total += transistor.device.drain_capacitance()
        return total

    def node_capacitance(self, net: str) -> float:
        """Total lumped capacitance of a net (device loading + explicit caps)."""
        explicit = sum(c.capacitance for c in self.capacitors if c.node == net)
        return explicit + self.total_gate_capacitance(net) + self.total_drain_capacitance(net)

    def __len__(self) -> int:
        return len(self.transistors)


# ---------------------------------------------------------------------------
# Gate level
# ---------------------------------------------------------------------------

@dataclass
class GateInstance:
    """One logic-gate instance of a gate-level netlist."""

    name: str
    cell_type: str                   # e.g. "NAND2", "INV"
    connections: Dict[str, str]      # pin name -> net name
    drive_strength: float = 1.0

    def __post_init__(self):
        if "out" not in {pin.lower() for pin in self.connections}:
            raise NetlistError(f"Gate {self.name!r} has no 'out' connection")
        if self.drive_strength <= 0:
            raise NetlistError(f"Gate {self.name!r} drive strength must be positive")

    @property
    def output_net(self) -> str:
        for pin, net in self.connections.items():
            if pin.lower() == "out":
                return net
        raise NetlistError(f"Gate {self.name!r} has no output")  # pragma: no cover

    def input_nets(self) -> List[str]:
        return [net for pin, net in self.connections.items() if pin.lower() != "out"]


class GateNetlist:
    """A gate-level (structural) netlist."""

    def __init__(self, name: str):
        self.name = name
        self.gates: List[GateInstance] = []
        self.inputs: List[str] = []
        self.outputs: List[str] = []

    def add_gate(self, name: str, cell_type: str, connections: Mapping[str, str],
                 drive_strength: float = 1.0) -> GateInstance:
        """Add a gate instance; instance names must be unique."""
        if any(g.name == name for g in self.gates):
            raise NetlistError(f"Duplicate gate instance {name!r}")
        instance = GateInstance(name, cell_type.upper(), dict(connections), drive_strength)
        self.gates.append(instance)
        return instance

    def declare_io(self, inputs: Sequence[str], outputs: Sequence[str]) -> None:
        self.inputs = list(inputs)
        self.outputs = list(outputs)

    def nets(self) -> List[str]:
        names: List[str] = []
        for gate in self.gates:
            for net in gate.connections.values():
                if net not in names:
                    names.append(net)
        return names

    def drivers(self) -> Dict[str, GateInstance]:
        """Map from net to the gate that drives it."""
        driver_map: Dict[str, GateInstance] = {}
        for gate in self.gates:
            net = gate.output_net
            if net in driver_map:
                raise NetlistError(
                    f"Net {net!r} is driven by both {driver_map[net].name!r} "
                    f"and {gate.name!r}"
                )
            driver_map[net] = gate
        return driver_map

    def loads(self, net: str) -> List[GateInstance]:
        """Gates whose inputs are connected to ``net``."""
        return [gate for gate in self.gates if net in gate.input_nets()]

    def validate(self) -> None:
        """Check structural sanity: every internal net has a driver, every
        output is driven, inputs are not driven."""
        driver_map = self.drivers()
        for output in self.outputs:
            if output not in driver_map:
                raise NetlistError(f"Primary output {output!r} has no driver")
        for net in self.nets():
            if net in self.inputs:
                if net in driver_map:
                    raise NetlistError(f"Primary input {net!r} is driven by a gate")
                continue
            if net not in driver_map and net not in (VDD, GND):
                raise NetlistError(f"Net {net!r} has no driver")

    def topological_order(self) -> List[GateInstance]:
        """Gates ordered so every gate appears after the drivers of its
        inputs (combinational netlists only)."""
        driver_map = self.drivers()
        ordered: List[GateInstance] = []
        state: Dict[str, int] = {}

        def visit(gate: GateInstance) -> None:
            status = state.get(gate.name, 0)
            if status == 1:
                raise NetlistError(
                    f"Combinational loop detected through gate {gate.name!r}"
                )
            if status == 2:
                return
            state[gate.name] = 1
            for net in gate.input_nets():
                upstream = driver_map.get(net)
                if upstream is not None:
                    visit(upstream)
            state[gate.name] = 2
            ordered.append(gate)

        for gate in self.gates:
            visit(gate)
        return ordered

    def __len__(self) -> int:
        return len(self.gates)
