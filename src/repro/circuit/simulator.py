"""Transient simulation of transistor-level netlists.

The paper's electrical results come from HSPICE; this module provides the
offline equivalent: a small nodal transient solver over the CNFET/MOSFET
compact models.  Every internal net carries a lumped capacitance (device
loading plus any explicit capacitors); device currents charge and discharge
those capacitances.  Integration is explicit with adaptive sub-stepping,
which is robust for the gate-sized circuits the experiments need (inverter
chains, logic gates, a full adder) and keeps the implementation
dependency-free.

Engines
-------
Two engines implement identical integration semantics:

* the **batch engine** (default) lowers each :class:`SimulationCase` once
  into NumPy structure arrays (see *Precompiled array layout* below) and
  integrates every case of a batch as one ``(batch, nets)`` state matrix
  with array operations — one :func:`run_transient_batch` call sweeps many
  stimuli/corners (supply voltage, CNT pitch / tubes per device, load
  capacitance, input slew) in a single vectorized integration;
* the **loop engine** (``engine="loop"``) is the compatibility path: one
  case at a time, one device at a time, through the scalar
  :meth:`TransientSimulator._channel_current` reference, exactly as the
  original implementation.

Both engines produce **bit-identical waveforms and supply charge** for the
same case.  The contract mirrors the Monte Carlo immunity engine of
:mod:`repro.immunity` (``engine="batch"`` vs ``engine="loop"``): every
floating-point operation of the scalar loop has an elementwise vector
counterpart executed in the same order, and the one transcendental in the
inner loop (the alpha-power law) goes through the shared
:func:`~repro.devices.powerlaw.alpha_power` kernel in both engines.
``benchmarks/bench_sim_scale.py`` asserts both the contract and a >=10x
speedup floor at figure-sized batches; ``docs/architecture.md`` documents
the design.

Precompiled array layout
------------------------
:class:`CompiledTransientBatch` lowers ``B`` topology-identical cases with
``T`` transistors, ``N`` nets (``I`` of them integrated) and ``S`` driven
source nets into:

===================  ==========  ====================================
array                shape       contents
===================  ==========  ====================================
``gate/drain/src``   ``(T,)``    net index of each device terminal
``is_n``             ``(T,)``    device conduction polarity
``prefactor``        ``(B, T)``  saturation current at full drive [A]
``vth``              ``(B, T)``  threshold voltage magnitude [V]
``nominal_ov``       ``(B, T)``  overdrive the prefactor is quoted at
``alpha``            ``(B, T)``  alpha-power saturation index
``capacitance``      ``(B, I)``  lumped capacitance per integrated net
``pwl times/vals``   ``(B,S,P)`` padded source breakpoints
``voltages``         ``(B, N)``  the integration state matrix
===================  ==========  ====================================

Per-case quantities (``prefactor`` .. ``capacitance``) carry the batch
axis, so corners may vary device parameters, loading, supply and stimuli;
the topology (net list, device connectivity and polarity, driven nets)
must match across the batch.

Stability sub-stepping rule
---------------------------
Output samples land every ``time_step``; internally each sample interval
is integrated in sub-steps of ``min(time_step, max(2 fs, stop_time /
40000))``.  A few tens of thousands of sub-steps per run keeps the
explicit integration stable for the RC time constants of gate-sized
circuits without making long runs unaffordable; the rule lives in
:func:`stability_substep` and is shared verbatim by both engines.

Batch-axis semantics
--------------------
The batch axis is first-class: :func:`run_transient_batch` takes a list of
:class:`SimulationCase` and returns one :class:`TransientResult` per case,
in order.

>>> from repro.circuit import (SimulationCase, build_inverter_chain,
...                            cmos_inverter, run_transient_batch,
...                            step_source)
>>> chain = build_inverter_chain(cmos_inverter(), stages=1, fanout=1, vdd=1.0)
>>> cases = [SimulationCase(chain,
...                         {"in": step_source(1.0, 2e-12, slew)},
...                         initial_conditions={"n1": 1.0})
...          for slew in (1e-12, 4e-12)]          # an input-slew sweep
>>> fast, slow = run_transient_batch(cases, stop_time=50e-12,
...                                  time_step=0.5e-12)
>>> bool(fast.voltage("n1")[-1] < 0.1 and slow.voltage("n1")[-1] < 0.1)
True
>>> bool(fast.crossing_time("n1", 0.5, rising=False) <
...      slow.crossing_time("n1", 0.5, rising=False))
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..devices.cnfet import CNFET
from ..devices.mosfet import MOSFET
from ..errors import SimulationError
from .inverter import Inverter
from .netlist import GND, VDD, TransistorNetlist

#: Floor applied to node capacitances so the explicit integrator stays stable
#: even on nets with negligible extracted capacitance [F].
MINIMUM_NODE_CAPACITANCE = 1.0e-18

#: Smallest internal sub-step the stability rule will choose [s].
MINIMUM_SUBSTEP_S = 2.0e-15

#: Upper bound on the number of sub-steps per run implied by the rule.
SUBSTEP_BUDGET = 40000.0


def stability_substep(stop_time: float, time_step: float) -> float:
    """The shared sub-step rule of both engines.

    A few hundred sub-steps per output sample keeps the explicit
    integration stable for the RC time constants of gate-sized circuits
    without making long runs unaffordable:

    >>> stability_substep(stop_time=100e-12, time_step=1e-12) == 2.5e-15
    True
    >>> stability_substep(stop_time=4e-12, time_step=1e-12)  # 2 fs floor
    2e-15
    """
    return min(time_step, max(MINIMUM_SUBSTEP_S, stop_time / SUBSTEP_BUDGET))


@dataclass
class PiecewiseLinearSource:
    """A piecewise-linear voltage source (SPICE ``PWL`` equivalent)."""

    points: Sequence[Tuple[float, float]]

    def __post_init__(self):
        if not self.points:
            raise SimulationError("A PWL source needs at least one point")
        times = [t for t, _ in self.points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise SimulationError("PWL time points must be non-decreasing")

    def value(self, time: float) -> float:
        points = list(self.points)
        if time <= points[0][0]:
            return points[0][1]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if time <= t1:
                if t1 == t0:
                    return v1
                return v0 + (v1 - v0) * (time - t0) / (t1 - t0)
        return points[-1][1]


def step_source(vdd: float, delay: float, rise_time: float,
                falling: bool = False) -> PiecewiseLinearSource:
    """A single rising (or falling) edge."""
    low, high = (vdd, 0.0) if falling else (0.0, vdd)
    return PiecewiseLinearSource([(0.0, low), (delay, low), (delay + rise_time, high)])


def pulse_source(vdd: float, delay: float, rise_time: float, width: float) -> PiecewiseLinearSource:
    """A single full pulse (rise, hold, fall)."""
    return PiecewiseLinearSource(
        [
            (0.0, 0.0),
            (delay, 0.0),
            (delay + rise_time, vdd),
            (delay + rise_time + width, vdd),
            (delay + 2 * rise_time + width, 0.0),
        ]
    )


def constant_source(level: float) -> PiecewiseLinearSource:
    """A DC level (used to hold side inputs during characterisation)."""
    return PiecewiseLinearSource([(0.0, level)])


@dataclass
class TransientResult:
    """Waveforms of a transient run."""

    time: np.ndarray
    waveforms: Dict[str, np.ndarray]
    supply_charge: float      # total charge delivered by Vdd [C]
    vdd: float

    def voltage(self, net: str) -> np.ndarray:
        try:
            return self.waveforms[net]
        except KeyError:
            raise SimulationError(
                f"No waveform recorded for net {net!r}; available: "
                f"{sorted(self.waveforms)}"
            ) from None

    def crossing_time(self, net: str, level: float, rising: Optional[bool] = None,
                      after: float = 0.0) -> float:
        """First time the net crosses ``level`` (optionally in a specific
        direction) at or after ``after``.

        A crossing inside a segment that straddles ``after`` only counts
        when the interpolated crossing instant itself is at or after
        ``after``, so the returned time is never earlier than ``after``
        (``propagation_delay`` relies on this).
        """
        voltages = self.voltage(net)
        times = self.time
        for index in range(1, len(times)):
            if times[index] < after:
                continue
            previous, current = voltages[index - 1], voltages[index]
            crossed_up = previous < level <= current
            crossed_down = previous > level >= current
            if rising is True and not crossed_up:
                continue
            if rising is False and not crossed_down:
                continue
            if crossed_up or crossed_down:
                # A strict crossing implies previous != current, so the
                # interpolation denominator is never zero.
                fraction = (level - previous) / (current - previous)
                crossing = times[index - 1] + fraction * (
                    times[index] - times[index - 1]
                )
                # A segment straddling ``after`` may cross before it; a
                # linear segment crosses a level at most once, so such a
                # crossing is simply outside the window — keep looking.
                if crossing >= after:
                    return crossing
        raise SimulationError(f"Net {net!r} never crosses {level} V after {after}")

    def propagation_delay(self, input_net: str, output_net: str,
                          vdd: Optional[float] = None) -> float:
        """50 %-to-50 % propagation delay between two nets."""
        vdd = self.vdd if vdd is None else vdd
        level = vdd / 2.0
        t_in = self.crossing_time(input_net, level)
        t_out = self.crossing_time(output_net, level, after=t_in)
        return t_out - t_in

    @property
    def supply_energy(self) -> float:
        """Energy drawn from the supply during the run [J]."""
        return self.supply_charge * self.vdd


# ---------------------------------------------------------------------------
# Batch engine: cases, compilation, vectorized integration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SimulationCase:
    """One corner of a batch transient run.

    A case bundles a netlist (which carries the device instances, loading
    and supply of that corner), the stimulus of every driven net, and
    optional initial conditions.  All cases of one batch must share the
    same *topology* — net names and order, device connectivity and
    polarity, and the set of driven nets — while device parameters,
    capacitances, supply voltage, stimuli and initial conditions are free
    to vary per case.
    """

    netlist: TransistorNetlist
    sources: Mapping[str, PiecewiseLinearSource]
    initial_conditions: Optional[Mapping[str, float]] = None


def _device_power_law(device) -> Tuple[float, float, float, float]:
    """Lower one compact model to ``(prefactor, vth, nominal_ov, alpha)``.

    ``prefactor`` is the saturation current at nominal overdrive, built
    with the same association order as the scalar ``ids`` so the batch
    product ``prefactor * ratio ** alpha`` is bit-identical to the loop
    engine's evaluation.
    """
    params = device.parameters
    if isinstance(device, CNFET):
        prefactor = (
            device.num_tubes
            * params.on_current_per_tube
            * (device.screening ** params.current_screening_power)
        )
    elif isinstance(device, MOSFET):
        prefactor = params.saturation_current_per_um * device.width_um
    else:  # pragma: no cover - TransistorInstance already validates this
        raise SimulationError(
            f"Unsupported device type {type(device).__name__}"
        )
    nominal_ov = params.nominal_vdd - params.threshold_voltage
    return prefactor, params.threshold_voltage, nominal_ov, params.alpha


class CompiledTransientBatch:
    """A batch of topology-identical cases lowered to structure arrays.

    Compile once, integrate many times: the constructor performs all
    name-based work (net indexing, terminal lowering, capacitance
    extraction, PWL padding); :meth:`integrate` then runs the explicit
    sub-stepped integration purely on arrays.
    """

    def __init__(self, cases: Sequence[SimulationCase]):
        if not cases:
            raise SimulationError("A batch needs at least one SimulationCase")
        self.cases = list(cases)
        first = self.cases[0].netlist
        self._topology_nets: List[str] = first.nets()
        self.source_nets: List[str] = list(self.cases[0].sources)
        # A source may drive a net no device references (the loop engine
        # simply records its waveform); give such nets state columns too so
        # the engines stay bit-identical.
        self.net_names: List[str] = self._topology_nets + [
            net for net in self.source_nets if net not in self._topology_nets
        ]
        self._validate_topology()

        index = {net: i for i, net in enumerate(self.net_names)}
        batch = len(self.cases)
        self.batch_size = batch

        # -- terminals ----------------------------------------------------
        transistors = first.transistors
        self.gate_idx = np.array([index[t.gate] for t in transistors], dtype=np.intp)
        self.drain_idx = np.array([index[t.drain] for t in transistors], dtype=np.intp)
        self.source_idx = np.array([index[t.source] for t in transistors], dtype=np.intp)
        self.is_n = np.array([t.polarity == "n" for t in transistors], dtype=bool)

        # -- per-case device parameters (B, T) ----------------------------
        rows = [
            [_device_power_law(t.device) for t in case.netlist.transistors]
            for case in self.cases
        ]
        params = np.array(rows, dtype=float)          # (B, T, 4)
        if params.size:
            self.prefactor = np.ascontiguousarray(params[:, :, 0])
            self.vth = np.ascontiguousarray(params[:, :, 1])
            self.nominal_ov = np.ascontiguousarray(params[:, :, 2])
            self.alpha = np.ascontiguousarray(params[:, :, 3])
        else:
            shape = (batch, 0)
            self.prefactor = np.zeros(shape)
            self.vth = np.zeros(shape)
            self.nominal_ov = np.ones(shape)
            self.alpha = np.ones(shape)

        # -- integrated nets and their capacitance (B, I) -----------------
        driven = set(self.source_nets)
        self.integrated_nets = [
            net for net in self._topology_nets
            if net not in (VDD, GND) and net not in driven
        ]
        self.integrated_idx = np.array(
            [index[net] for net in self.integrated_nets], dtype=np.intp
        )
        self.capacitance = np.array(
            [
                [
                    max(case.netlist.node_capacitance(net), MINIMUM_NODE_CAPACITANCE)
                    for net in self.integrated_nets
                ]
                for case in self.cases
            ],
            dtype=float,
        ).reshape(batch, len(self.integrated_nets))

        # -- accumulation schedule ----------------------------------------
        # The loop engine visits device terminals in interleaved order
        # (drain then source, device by device) and accumulates each net's
        # current with sequential ``+=``.  Terminal "slots" reproduce that
        # order: slot 2k is device k's drain, slot 2k+1 its source.  Slots
        # are grouped by *occurrence rank* per net — rank r holds each
        # net's (r+1)-th contribution — so every rank is one buffered
        # fancy-index add (all nets unique within a rank) and the per-net
        # addition order matches the scalar engine exactly.
        integrated_pos = {net: i for i, net in enumerate(self.integrated_nets)}
        slot_targets: List[int] = []
        for t in transistors:
            slot_targets.append(integrated_pos.get(t.drain, -1))
            slot_targets.append(integrated_pos.get(t.source, -1))
        occurrence: Dict[int, int] = {}
        ranked: Dict[int, List[Tuple[int, int]]] = {}
        for slot, target in enumerate(slot_targets):
            if target < 0:
                continue
            rank = occurrence.get(target, 0)
            occurrence[target] = rank + 1
            ranked.setdefault(rank, []).append((slot, target))
        # Each rank entry is (device positions, signed-contribution signs,
        # target net positions): slot 2k (a drain) contributes -i_drain[k],
        # slot 2k+1 (a source) contributes +i_drain[k].
        self.rank_schedule: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = [
            (
                np.array([slot >> 1 for slot, _ in pairs], dtype=np.intp),
                np.array([1.0 if slot & 1 else -1.0 for slot, _ in pairs]),
                np.array([target for _, target in pairs], dtype=np.intp),
            )
            for rank, pairs in sorted(ranked.items())
        ]

        # Supply accounting: the loop engine folds the Vdd-terminal
        # contributions in the same interleaved order, so keep (sign,
        # device) pairs in slot order: +i_drain for a drain on Vdd,
        # -i_drain (= i_source) for a source on Vdd.
        self.supply_terms: List[Tuple[float, int]] = []
        for position, t in enumerate(transistors):
            if t.drain == VDD:
                self.supply_terms.append((+1.0, position))
            if t.source == VDD:
                self.supply_terms.append((-1.0, position))

        # -- per-case rails, clamp bounds, initial state ------------------
        self.vdd = np.array([case.netlist.vdd for case in self.cases])
        self.clamp_low = np.array(
            [-0.1 * case.netlist.vdd for case in self.cases]
        )[:, None]
        self.clamp_high = np.array(
            [1.1 * case.netlist.vdd for case in self.cases]
        )[:, None]

        self.initial_voltages = np.zeros((batch, len(self.net_names)))
        self.initial_voltages[:, index[VDD]] = self.vdd
        for case_i, case in enumerate(self.cases):
            conditions = dict(case.initial_conditions or {})
            for net in self.integrated_nets:
                self.initial_voltages[case_i, index[net]] = conditions.get(net, 0.0)
            for net in self.source_nets:
                self.initial_voltages[case_i, index[net]] = \
                    case.sources[net].value(0.0)

        # -- padded PWL tables (B, S, P) ----------------------------------
        self.source_cols = np.array(
            [index[net] for net in self.source_nets], dtype=np.intp
        )
        longest = 1
        for case in self.cases:
            for net in self.source_nets:
                longest = max(longest, len(case.sources[net].points))
        shape = (batch, len(self.source_nets), longest)
        self.pwl_times = np.full(shape, np.inf)
        self.pwl_values = np.zeros(shape)
        for case_i, case in enumerate(self.cases):
            for source_i, net in enumerate(self.source_nets):
                points = list(case.sources[net].points)
                for point_i, (t, v) in enumerate(points):
                    self.pwl_times[case_i, source_i, point_i] = t
                    self.pwl_values[case_i, source_i, point_i] = v
                # Pad with the final value so interpolation into the pad
                # region reproduces the "hold last value" rule exactly.
                self.pwl_values[case_i, source_i, len(points):] = points[-1][1]

    # -- validation -------------------------------------------------------

    def _validate_topology(self) -> None:
        reference = self.cases[0].netlist
        signature = [
            (t.gate, t.drain, t.source, t.polarity) for t in reference.transistors
        ]
        for case in self.cases:
            missing = [
                net for net in case.netlist.inputs if net not in case.sources
            ]
            if missing:
                raise SimulationError(
                    f"No source provided for input nets {missing}"
                )
            if case.netlist.nets() != self._topology_nets:
                raise SimulationError(
                    "Batch cases must share one topology: net lists differ "
                    f"({case.netlist.name!r} vs {reference.name!r})"
                )
            if [
                (t.gate, t.drain, t.source, t.polarity)
                for t in case.netlist.transistors
            ] != signature:
                raise SimulationError(
                    "Batch cases must share one topology: device "
                    f"connectivity differs ({case.netlist.name!r} vs "
                    f"{reference.name!r})"
                )
            if set(case.sources) != set(self.source_nets):
                raise SimulationError(
                    "Batch cases must drive the same nets; "
                    f"{sorted(case.sources)} != {sorted(self.source_nets)}"
                )

    # -- stimulus ---------------------------------------------------------

    def _evaluate_pwl(self, case_i: int, source_i: int,
                      times: np.ndarray) -> np.ndarray:
        """One source's values at the given instants: ``(len(times),)``.

        Vectorized mirror of :meth:`PiecewiseLinearSource.value`: locate
        the first breakpoint at or after ``t`` (``searchsorted`` over the
        padded breakpoints) and interpolate with the same expression;
        padded entries (``t = inf``, value held) resolve to the last real
        value, and ``t`` at or before the first breakpoint resolves to the
        first value through the degenerate-segment branch.
        """
        longest = self.pwl_times.shape[-1]
        breakpoints = self.pwl_times[case_i, source_i]
        levels = self.pwl_values[case_i, source_i]
        with np.errstate(divide="ignore", invalid="ignore"):
            upper = np.searchsorted(breakpoints, times, side="left")
            hi = np.minimum(upper, longest - 1)
            lo = np.maximum(upper - 1, 0)
            t0, t1 = breakpoints[lo], breakpoints[hi]
            v0, v1 = levels[lo], levels[hi]
            interpolated = v0 + (v1 - v0) * (times - t0) / (t1 - t0)
            return np.where(t1 == t0, v1, interpolated)

    def _source_values(self, times: np.ndarray) -> np.ndarray:
        """Evaluate every PWL source at every instant: ``(len(times), B, S)``.

        Evaluated one (case, source) pair at a time, so no temporary
        exceeds ``len(times)`` elements beyond the returned array itself.
        """
        batch, sources, _ = self.pwl_times.shape
        values = np.empty((len(times), batch, sources))
        for case_i in range(batch):
            for source_i in range(sources):
                values[:, case_i, source_i] = self._evaluate_pwl(
                    case_i, source_i, times
                )
        return values

    def _compressed_source_schedule(
        self, step_times: List[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Source values for only the sub-steps where any source changes.

        Returns ``(changed, values)``: a boolean per sub-step and a
        ``(changed.sum(), B, S)`` value matrix for exactly those steps.
        Stimuli are flat outside their PWL edges, so this keeps the
        precomputed stimulus table a few edge-windows long instead of
        one row per sub-step (which at 40000 sub-steps x wide batches
        costs hundreds of MB).
        """
        times = np.asarray(step_times)
        batch, sources, _ = self.pwl_times.shape
        changed = np.zeros(len(times), dtype=bool)
        changed[0] = True
        for case_i in range(batch):
            for source_i in range(sources):
                values = self._evaluate_pwl(case_i, source_i, times)
                changed[1:] |= values[1:] != values[:-1]
        return changed, self._source_values(times[changed])

    # -- integration ------------------------------------------------------

    def _device_currents(self, voltages: np.ndarray) -> np.ndarray:
        """Current out of each device's drain terminal: ``(B, T)``.

        Elementwise mirror of the loop engine's ``_channel_current``: the
        conduction direction is folded into ``(vgs, vds)`` relative to the
        low (n-type) or high (p-type) channel terminal, and the sign of the
        drain current follows the terminal ordering.  Inactive lanes
        (``overdrive <= 0`` or ``vds <= 0``) are masked to exactly zero.
        """
        gate_v = voltages[:, self.gate_idx]
        drain_v = voltages[:, self.drain_idx]
        source_v = voltages[:, self.source_idx]
        high = np.maximum(drain_v, source_v)
        low = np.minimum(drain_v, source_v)
        vds = high - low
        vgs = np.where(self.is_n, gate_v - low, high - gate_v)
        overdrive = vgs - self.vth
        active = (overdrive > 0.0) & (vds > 0.0)
        # Inactive lanes get a harmless positive base so the power/division
        # lanes never see zero or negative operands.
        safe_overdrive = np.where(active, overdrive, 1.0)
        ratio = safe_overdrive / self.nominal_ov
        saturation = self.prefactor * np.power(ratio, self.alpha)
        triode_ratio = vds / safe_overdrive
        magnitude = np.where(
            vds >= overdrive,
            saturation,
            saturation * triode_ratio * (2.0 - triode_ratio),
        )
        magnitude = np.where(active, magnitude, 0.0)
        return np.where(drain_v >= source_v, magnitude, -magnitude)

    def integrate(self, stop_time: float, time_step: float) -> List[TransientResult]:
        """Integrate every case of the batch over one shared time base."""
        if stop_time <= 0 or time_step <= 0:
            raise SimulationError("stop_time and time_step must be positive")
        sample_count = int(math.ceil(stop_time / time_step)) + 1
        times = np.linspace(0.0, stop_time, sample_count)
        substep = stability_substep(stop_time, time_step)

        # The sub-step schedule is deterministic, so enumerate it (and
        # evaluate every PWL source over it) once, up front.  The schedule
        # loop mirrors the loop engine token for token: sources are read at
        # the *start* of each sub-step, and the sample recorded at a
        # boundary still holds the source value of the previous sub-step.
        step_times: List[float] = []
        step_sizes: List[float] = []
        steps_per_segment: List[int] = []
        for sample_index, sample_time in enumerate(times[:-1]):
            segment_end = times[sample_index + 1]
            time = sample_time
            count = 0
            while time < segment_end - 1e-21:
                dt = min(substep, segment_end - time)
                step_times.append(time)
                step_sizes.append(dt)
                count += 1
                time += dt
            steps_per_segment.append(count)
        if self.source_nets and step_times:
            changed, source_values = self._compressed_source_schedule(step_times)
        else:
            source_values = None
            changed = None

        batch = self.batch_size
        voltages = self.initial_voltages.copy()
        waveforms = np.empty((batch, sample_count, len(self.net_names)))
        supply_charge = np.zeros(batch)
        integrated = self.integrated_idx
        capacitance = self.capacitance
        source_cols = self.source_cols
        supply = np.zeros(batch)
        currents = np.zeros((batch, integrated.size))

        step = 0
        write_index = 0
        for sample_index in range(sample_count):
            waveforms[:, sample_index, :] = voltages
            if sample_index == sample_count - 1:
                break
            for _ in range(steps_per_segment[sample_index]):
                dt = step_sizes[step]
                if source_values is not None and changed[step]:
                    voltages[:, source_cols] = source_values[write_index]
                    write_index += 1
                drain_current = self._device_currents(voltages)
                if self.supply_terms:
                    supply.fill(0.0)
                    for sign, device in self.supply_terms:
                        if sign > 0:
                            supply += drain_current[:, device]
                        else:
                            supply -= drain_current[:, device]
                    supply_charge += supply * dt
                currents.fill(0.0)
                for devices, signs, targets in self.rank_schedule:
                    currents[:, targets] += drain_current[:, devices] * signs
                np.multiply(currents, dt, out=currents)
                np.divide(currents, capacitance, out=currents)
                node_voltages = voltages[:, integrated]
                np.add(node_voltages, currents, out=node_voltages)
                np.maximum(node_voltages, self.clamp_low, out=node_voltages)
                np.minimum(node_voltages, self.clamp_high, out=node_voltages)
                voltages[:, integrated] = node_voltages
                step += 1

        results: List[TransientResult] = []
        for case_i in range(batch):
            case_waveforms = {
                net: waveforms[case_i, :, net_i]
                for net_i, net in enumerate(self.net_names)
            }
            results.append(
                TransientResult(
                    time=times,
                    waveforms=case_waveforms,
                    supply_charge=float(supply_charge[case_i]),
                    vdd=float(self.vdd[case_i]),
                )
            )
        return results


def run_transient_batch(cases: Sequence[SimulationCase], stop_time: float,
                        time_step: float) -> List[TransientResult]:
    """Simulate many corners in one vectorized integration.

    Every case must share one topology (see :class:`SimulationCase`) and
    the whole batch shares one time base; each case keeps its own device
    parameters, loading, supply, stimuli and initial conditions.  Returns
    one :class:`TransientResult` per case, in order, bit-identical to
    running each case through ``TransientSimulator.run(engine="loop")``.
    """
    return CompiledTransientBatch(cases).integrate(stop_time, time_step)


class TransientSimulator:
    """Explicit nodal transient solver for a :class:`TransistorNetlist`.

    ``run`` integrates one case; it is a thin compatibility path over the
    batch engine (a batch of one), with ``engine="loop"`` selecting the
    scalar per-substep reference implementation.  Both produce
    bit-identical waveforms and supply charge.
    """

    def __init__(self, netlist: TransistorNetlist,
                 sources: Mapping[str, PiecewiseLinearSource],
                 initial_conditions: Optional[Mapping[str, float]] = None):
        self.netlist = netlist
        self.sources = dict(sources)
        missing = [net for net in netlist.inputs if net not in self.sources]
        if missing:
            raise SimulationError(f"No source provided for input nets {missing}")
        self.initial_conditions = dict(initial_conditions or {})

    def as_case(self) -> SimulationCase:
        """This simulator's configuration as a batchable case."""
        return SimulationCase(
            netlist=self.netlist,
            sources=self.sources,
            initial_conditions=self.initial_conditions,
        )

    def run(self, stop_time: float, time_step: float,
            engine: str = "batch") -> TransientResult:
        """Integrate from 0 to ``stop_time`` with output samples every
        ``time_step`` (internally sub-stepped for stability).

        ``engine`` selects the vectorized batch integrator (default) or
        the scalar compatibility loop; results are bit-identical.
        """
        if engine == "batch":
            return run_transient_batch([self.as_case()], stop_time, time_step)[0]
        if engine != "loop":
            raise SimulationError(f"Unknown transient engine {engine!r}")
        return self._run_loop(stop_time, time_step)

    def _run_loop(self, stop_time: float, time_step: float) -> TransientResult:
        """The scalar reference integrator (one net dict, one device at a
        time) — the shape the batch engine mirrors operation for
        operation."""
        if stop_time <= 0 or time_step <= 0:
            raise SimulationError("stop_time and time_step must be positive")
        netlist = self.netlist
        vdd = netlist.vdd
        internal = [
            net for net in netlist.nets()
            if net not in (VDD, GND) and net not in self.sources
        ]
        capacitance = {
            net: max(netlist.node_capacitance(net), MINIMUM_NODE_CAPACITANCE)
            for net in internal
        }
        voltages: Dict[str, float] = {VDD: vdd, GND: 0.0}
        for net in internal:
            voltages[net] = self.initial_conditions.get(net, 0.0)
        for net, source in self.sources.items():
            voltages[net] = source.value(0.0)

        sample_count = int(math.ceil(stop_time / time_step)) + 1
        times = np.linspace(0.0, stop_time, sample_count)
        waveforms = {net: np.zeros(sample_count) for net in voltages}
        supply_charge = 0.0

        substep = stability_substep(stop_time, time_step)

        for sample_index, sample_time in enumerate(times):
            for net, value in voltages.items():
                waveforms[net][sample_index] = value
            if sample_index == len(times) - 1:
                break
            segment_end = times[sample_index + 1]
            time = sample_time
            while time < segment_end - 1e-21:
                dt = min(substep, segment_end - time)
                for net, source in self.sources.items():
                    voltages[net] = source.value(time)
                currents = {net: 0.0 for net in internal}
                supply_current = 0.0
                for transistor in netlist.transistors:
                    drain_v = voltages[transistor.drain]
                    source_v = voltages[transistor.source]
                    gate_v = voltages[transistor.gate]
                    current = self._channel_current(
                        transistor, gate_v, drain_v, source_v
                    )
                    # ``current`` flows from the higher-potential terminal to
                    # the lower one through the channel.
                    if transistor.drain in currents:
                        currents[transistor.drain] -= current[0]
                    if transistor.source in currents:
                        currents[transistor.source] -= current[1]
                    # Net supply current: devices back-driving Vdd return
                    # charge, so contributions must be summed before
                    # integrating rather than clamped per device.
                    if transistor.drain == VDD:
                        supply_current += current[0]
                    if transistor.source == VDD:
                        supply_current += current[1]
                supply_charge += supply_current * dt
                for net in internal:
                    voltages[net] += currents[net] * dt / capacitance[net]
                    voltages[net] = min(max(voltages[net], -0.1 * vdd), 1.1 * vdd)
                time += dt
        return TransientResult(times, waveforms, supply_charge, vdd)

    @staticmethod
    def _channel_current(transistor, gate_v: float, drain_v: float,
                         source_v: float) -> Tuple[float, float]:
        """Return (current out of drain, current out of source).

        The compact models report a magnitude for a given (vgs, vds); the
        sign convention here is that current flows through the channel from
        the higher-potential terminal to the lower-potential one.
        """
        device = transistor.device
        if device.polarity == "n":
            if drain_v >= source_v:
                magnitude = device.ids(gate_v - source_v, drain_v - source_v)
                return (+magnitude, -magnitude)
            magnitude = device.ids(gate_v - drain_v, source_v - drain_v)
            return (-magnitude, +magnitude)
        # p-type: conducts when the gate is low relative to source
        if drain_v <= source_v:
            magnitude = device.ids(gate_v - source_v, drain_v - source_v)
            return (-magnitude, +magnitude)
        magnitude = device.ids(gate_v - drain_v, source_v - drain_v)
        return (+magnitude, -magnitude)


# ---------------------------------------------------------------------------
# Inverter-chain convenience used by the FO4 experiment
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InverterChainResult:
    """Measurements from a simulated FO4 inverter chain."""

    mid_stage_delay_s: float
    energy_per_cycle_j: float
    result: TransientResult


def build_inverter_chain(inverter: Inverter, stages: int, fanout: int,
                         vdd: float) -> TransistorNetlist:
    """A chain of identical inverters where each stage additionally drives
    ``fanout - 1`` copies of its own input capacitance (so the loading seen
    by every stage is FO-``fanout``)."""
    netlist = TransistorNetlist(f"fo{fanout}_chain", vdd=vdd)
    extra_load = (fanout - 1) * inverter.input_capacitance()
    previous_net = "in"
    for stage in range(stages):
        out_net = f"n{stage + 1}"
        netlist.add_transistor(
            f"MN{stage}", inverter.pull_down, gate=previous_net,
            drain=out_net, source=GND,
        )
        netlist.add_transistor(
            f"MP{stage}", inverter.pull_up, gate=previous_net,
            drain=out_net, source=VDD,
        )
        if extra_load > 0:
            netlist.add_capacitor(f"CL{stage}", out_net, extra_load)
        previous_net = out_net
    netlist.declare_io(["in"], [previous_net])
    return netlist


def _chain_case(inverter: Inverter, vdd: float, stages: int,
                fanout: int) -> Tuple[SimulationCase, float]:
    """One FO-``fanout`` chain corner and its analytical delay estimate."""
    from .fo4 import fo4_metrics  # local import to avoid a module cycle

    netlist = build_inverter_chain(inverter, stages, fanout, vdd)
    estimate = fo4_metrics(inverter, vdd, fanout).delay_s
    edge = max(estimate * 0.1, 1.0e-13)
    settle = estimate * (stages + 6)
    source = pulse_source(vdd, delay=2 * estimate, rise_time=edge, width=settle)
    # Odd stages invert: precondition internal nodes to their DC values for
    # a low input.
    initial = {
        f"n{stage + 1}": vdd if stage % 2 == 0 else 0.0
        for stage in range(stages)
    }
    case = SimulationCase(netlist, {"in": source}, initial_conditions=initial)
    return case, estimate


def _measure_chain(result: TransientResult, stages: int) -> InverterChainResult:
    """Mid-stage delay and per-stage energy of one simulated chain."""
    delay = result.propagation_delay("n2", "n3")
    energy = result.supply_energy / stages
    return InverterChainResult(
        mid_stage_delay_s=delay,
        energy_per_cycle_j=energy,
        result=result,
    )


def simulate_inverter_chain(inverter: Inverter, vdd: float = 1.0, stages: int = 5,
                            fanout: int = 4,
                            engine: str = "batch") -> InverterChainResult:
    """Simulate the paper's five-stage FO4 chain and measure the mid stage.

    The measured stage is stage 3 (index 2), exactly as in Case study 1.
    Energy per cycle is the supply energy of one full input pulse divided by
    the number of switching stages, attributed to the measured stage's load.
    """
    case, estimate = _chain_case(inverter, vdd, stages, fanout)
    simulator = TransientSimulator(case.netlist, case.sources,
                                   initial_conditions=case.initial_conditions)
    settle = estimate * (stages + 6)
    stop = 2 * estimate + 2 * settle
    result = simulator.run(stop_time=stop,
                           time_step=max(estimate / 50.0, 1.0e-14),
                           engine=engine)
    return _measure_chain(result, stages)


def _per_corner_supplies(vdd, corners: int) -> List[float]:
    """Normalise a scalar-or-per-corner supply argument to one float per
    corner (accepts any iterable, e.g. a NumPy array or range)."""
    if isinstance(vdd, (int, float)):
        return [float(vdd)] * corners
    try:
        supplies = [float(value) for value in vdd]
    except TypeError:
        raise SimulationError(
            f"vdd must be a number or an iterable of numbers, got {vdd!r}"
        ) from None
    if len(supplies) != corners:
        raise SimulationError(
            f"Got {corners} corners but {len(supplies)} supplies"
        )
    return supplies


def simulate_inverter_chain_batch(
    inverters: Sequence[Inverter],
    vdd: float = 1.0,
    stages: int = 5,
    fanout: int = 4,
) -> List[InverterChainResult]:
    """Simulate many inverter corners' FO-``fanout`` chains in one batch.

    Every corner gets its own chain netlist and a stimulus timed from its
    own analytical delay estimate; the shared time base covers the slowest
    corner at the resolution of the fastest, so one vectorized integration
    measures all corners (e.g. the CNT-count sweep of Figure 7, with the
    CMOS reference riding in the same batch).

    ``vdd`` may be a scalar (shared) or a sequence per corner.
    """
    if not inverters:
        raise SimulationError("simulate_inverter_chain_batch needs >= 1 corner")
    if stages < 3:
        raise SimulationError("The FO4 chain needs at least 3 stages")
    supplies = _per_corner_supplies(vdd, len(inverters))
    cases: List[SimulationCase] = []
    estimates: List[float] = []
    for inverter, supply in zip(inverters, supplies):
        case, estimate = _chain_case(inverter, supply, stages, fanout)
        cases.append(case)
        estimates.append(estimate)
    slowest = max(estimates)
    settle = slowest * (stages + 6)
    stop = 2 * slowest + 2 * settle
    time_step = max(min(estimates) / 50.0, 1.0e-14)
    results = run_transient_batch(cases, stop_time=stop, time_step=time_step)
    return [_measure_chain(result, stages) for result in results]
