"""Transient simulation of transistor-level netlists.

The paper's electrical results come from HSPICE; this module provides the
offline equivalent: a small nodal transient solver over the CNFET/MOSFET
compact models.  Every internal net carries a lumped capacitance (device
loading plus any explicit capacitors); device currents charge and discharge
those capacitances.  Integration is explicit with adaptive sub-stepping,
which is robust for the gate-sized circuits the experiments need (inverter
chains, a full adder) and keeps the implementation dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from .inverter import Inverter
from .netlist import GND, VDD, TransistorNetlist

#: Floor applied to node capacitances so the explicit integrator stays stable
#: even on nets with negligible extracted capacitance [F].
MINIMUM_NODE_CAPACITANCE = 1.0e-18


@dataclass
class PiecewiseLinearSource:
    """A piecewise-linear voltage source (SPICE ``PWL`` equivalent)."""

    points: Sequence[Tuple[float, float]]

    def __post_init__(self):
        if not self.points:
            raise SimulationError("A PWL source needs at least one point")
        times = [t for t, _ in self.points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise SimulationError("PWL time points must be non-decreasing")

    def value(self, time: float) -> float:
        points = list(self.points)
        if time <= points[0][0]:
            return points[0][1]
        for (t0, v0), (t1, v1) in zip(points, points[1:]):
            if time <= t1:
                if t1 == t0:
                    return v1
                return v0 + (v1 - v0) * (time - t0) / (t1 - t0)
        return points[-1][1]


def step_source(vdd: float, delay: float, rise_time: float,
                falling: bool = False) -> PiecewiseLinearSource:
    """A single rising (or falling) edge."""
    low, high = (vdd, 0.0) if falling else (0.0, vdd)
    return PiecewiseLinearSource([(0.0, low), (delay, low), (delay + rise_time, high)])


def pulse_source(vdd: float, delay: float, rise_time: float, width: float) -> PiecewiseLinearSource:
    """A single full pulse (rise, hold, fall)."""
    return PiecewiseLinearSource(
        [
            (0.0, 0.0),
            (delay, 0.0),
            (delay + rise_time, vdd),
            (delay + rise_time + width, vdd),
            (delay + 2 * rise_time + width, 0.0),
        ]
    )


@dataclass
class TransientResult:
    """Waveforms of a transient run."""

    time: np.ndarray
    waveforms: Dict[str, np.ndarray]
    supply_charge: float      # total charge delivered by Vdd [C]
    vdd: float

    def voltage(self, net: str) -> np.ndarray:
        try:
            return self.waveforms[net]
        except KeyError:
            raise SimulationError(
                f"No waveform recorded for net {net!r}; available: "
                f"{sorted(self.waveforms)}"
            ) from None

    def crossing_time(self, net: str, level: float, rising: Optional[bool] = None,
                      after: float = 0.0) -> float:
        """First time the net crosses ``level`` (optionally in a specific
        direction) at or after ``after``.

        A crossing inside a segment that straddles ``after`` only counts
        when the interpolated crossing instant itself is at or after
        ``after``, so the returned time is never earlier than ``after``
        (``propagation_delay`` relies on this).
        """
        voltages = self.voltage(net)
        times = self.time
        for index in range(1, len(times)):
            if times[index] < after:
                continue
            previous, current = voltages[index - 1], voltages[index]
            crossed_up = previous < level <= current
            crossed_down = previous > level >= current
            if rising is True and not crossed_up:
                continue
            if rising is False and not crossed_down:
                continue
            if crossed_up or crossed_down:
                # A strict crossing implies previous != current, so the
                # interpolation denominator is never zero.
                fraction = (level - previous) / (current - previous)
                crossing = times[index - 1] + fraction * (
                    times[index] - times[index - 1]
                )
                # A segment straddling ``after`` may cross before it; a
                # linear segment crosses a level at most once, so such a
                # crossing is simply outside the window — keep looking.
                if crossing >= after:
                    return crossing
        raise SimulationError(f"Net {net!r} never crosses {level} V after {after}")

    def propagation_delay(self, input_net: str, output_net: str,
                          vdd: Optional[float] = None) -> float:
        """50 %-to-50 % propagation delay between two nets."""
        vdd = self.vdd if vdd is None else vdd
        level = vdd / 2.0
        t_in = self.crossing_time(input_net, level)
        t_out = self.crossing_time(output_net, level, after=t_in)
        return t_out - t_in

    @property
    def supply_energy(self) -> float:
        """Energy drawn from the supply during the run [J]."""
        return self.supply_charge * self.vdd


class TransientSimulator:
    """Explicit nodal transient solver for a :class:`TransistorNetlist`."""

    def __init__(self, netlist: TransistorNetlist,
                 sources: Mapping[str, PiecewiseLinearSource],
                 initial_conditions: Optional[Mapping[str, float]] = None):
        self.netlist = netlist
        self.sources = dict(sources)
        missing = [net for net in netlist.inputs if net not in self.sources]
        if missing:
            raise SimulationError(f"No source provided for input nets {missing}")
        self.initial_conditions = dict(initial_conditions or {})

    def run(self, stop_time: float, time_step: float) -> TransientResult:
        """Integrate from 0 to ``stop_time`` with output samples every
        ``time_step`` (internally sub-stepped for stability)."""
        if stop_time <= 0 or time_step <= 0:
            raise SimulationError("stop_time and time_step must be positive")
        netlist = self.netlist
        vdd = netlist.vdd
        internal = [
            net for net in netlist.nets()
            if net not in (VDD, GND) and net not in self.sources
        ]
        capacitance = {
            net: max(netlist.node_capacitance(net), MINIMUM_NODE_CAPACITANCE)
            for net in internal
        }
        voltages: Dict[str, float] = {VDD: vdd, GND: 0.0}
        for net in internal:
            voltages[net] = self.initial_conditions.get(net, 0.0)
        for net, source in self.sources.items():
            voltages[net] = source.value(0.0)

        sample_count = int(math.ceil(stop_time / time_step)) + 1
        times = np.linspace(0.0, stop_time, sample_count)
        waveforms = {net: np.zeros(sample_count) for net in voltages}
        supply_charge = 0.0

        # Sub-step limit: a few hundred sub-steps per output sample keeps the
        # explicit integration stable for the RC time constants of these
        # gate-sized circuits without making long runs unaffordable.
        substep = min(time_step, max(2.0e-15, stop_time / 40000.0))

        for sample_index, sample_time in enumerate(times):
            for net, value in voltages.items():
                waveforms[net][sample_index] = value
            if sample_index == len(times) - 1:
                break
            segment_end = times[sample_index + 1]
            time = sample_time
            while time < segment_end - 1e-21:
                dt = min(substep, segment_end - time)
                for net, source in self.sources.items():
                    voltages[net] = source.value(time)
                currents = {net: 0.0 for net in internal}
                supply_current = 0.0
                for transistor in netlist.transistors:
                    drain_v = voltages[transistor.drain]
                    source_v = voltages[transistor.source]
                    gate_v = voltages[transistor.gate]
                    current = self._channel_current(
                        transistor, gate_v, drain_v, source_v
                    )
                    # ``current`` flows from the higher-potential terminal to
                    # the lower one through the channel.
                    if transistor.drain in currents:
                        currents[transistor.drain] -= current[0]
                    if transistor.source in currents:
                        currents[transistor.source] -= current[1]
                    # Net supply current: devices back-driving Vdd return
                    # charge, so contributions must be summed before
                    # integrating rather than clamped per device.
                    if transistor.drain == VDD:
                        supply_current += current[0]
                    if transistor.source == VDD:
                        supply_current += current[1]
                supply_charge += supply_current * dt
                for net in internal:
                    voltages[net] += currents[net] * dt / capacitance[net]
                    voltages[net] = min(max(voltages[net], -0.1 * vdd), 1.1 * vdd)
                time += dt
        return TransientResult(times, waveforms, supply_charge, vdd)

    @staticmethod
    def _channel_current(transistor, gate_v: float, drain_v: float,
                         source_v: float) -> Tuple[float, float]:
        """Return (current out of drain, current out of source).

        The compact models report a magnitude for a given (vgs, vds); the
        sign convention here is that current flows through the channel from
        the higher-potential terminal to the lower-potential one.
        """
        device = transistor.device
        if device.polarity == "n":
            if drain_v >= source_v:
                magnitude = device.ids(gate_v - source_v, drain_v - source_v)
                return (+magnitude, -magnitude)
            magnitude = device.ids(gate_v - drain_v, source_v - drain_v)
            return (-magnitude, +magnitude)
        # p-type: conducts when the gate is low relative to source
        if drain_v <= source_v:
            magnitude = device.ids(gate_v - source_v, drain_v - source_v)
            return (-magnitude, +magnitude)
        magnitude = device.ids(gate_v - drain_v, source_v - drain_v)
        return (+magnitude, -magnitude)


# ---------------------------------------------------------------------------
# Inverter-chain convenience used by the FO4 experiment
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class InverterChainResult:
    """Measurements from a simulated FO4 inverter chain."""

    mid_stage_delay_s: float
    energy_per_cycle_j: float
    result: TransientResult


def build_inverter_chain(inverter: Inverter, stages: int, fanout: int,
                         vdd: float) -> TransistorNetlist:
    """A chain of identical inverters where each stage additionally drives
    ``fanout - 1`` copies of its own input capacitance (so the loading seen
    by every stage is FO-``fanout``)."""
    netlist = TransistorNetlist(f"fo{fanout}_chain", vdd=vdd)
    extra_load = (fanout - 1) * inverter.input_capacitance()
    previous_net = "in"
    for stage in range(stages):
        out_net = f"n{stage + 1}"
        netlist.add_transistor(
            f"MN{stage}", inverter.pull_down, gate=previous_net,
            drain=out_net, source=GND,
        )
        netlist.add_transistor(
            f"MP{stage}", inverter.pull_up, gate=previous_net,
            drain=out_net, source=VDD,
        )
        if extra_load > 0:
            netlist.add_capacitor(f"CL{stage}", out_net, extra_load)
        previous_net = out_net
    netlist.declare_io(["in"], [previous_net])
    return netlist


def simulate_inverter_chain(inverter: Inverter, vdd: float = 1.0, stages: int = 5,
                            fanout: int = 4) -> InverterChainResult:
    """Simulate the paper's five-stage FO4 chain and measure the mid stage.

    The measured stage is stage 3 (index 2), exactly as in Case study 1.
    Energy per cycle is the supply energy of one full input pulse divided by
    the number of switching stages, attributed to the measured stage's load.
    """
    netlist = build_inverter_chain(inverter, stages, fanout, vdd)
    # Time scale: size the run from the analytical FO4 estimate.
    from .fo4 import fo4_metrics  # local import to avoid a module cycle

    estimate = fo4_metrics(inverter, vdd, fanout).delay_s
    edge = max(estimate * 0.1, 1.0e-13)
    settle = estimate * (stages + 6)
    source = pulse_source(vdd, delay=2 * estimate, rise_time=edge, width=settle)
    # Odd stages invert: precondition internal nodes to their DC values for
    # a low input.
    initial = {}
    for stage in range(stages):
        initial[f"n{stage + 1}"] = vdd if stage % 2 == 0 else 0.0
    simulator = TransientSimulator(netlist, {"in": source}, initial_conditions=initial)
    stop = 2 * estimate + 2 * settle
    result = simulator.run(stop_time=stop, time_step=max(estimate / 50.0, 1.0e-14))

    measured_input = "n2"
    measured_output = "n3"
    delay = result.propagation_delay(measured_input, measured_output)
    energy = result.supply_energy / stages
    return InverterChainResult(
        mid_stage_delay_s=delay,
        energy_per_cycle_j=energy,
        result=result,
    )
