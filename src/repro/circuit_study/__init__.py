"""Circuit-level yield / delay / energy studies over mapped netlists.

This package composes the existing layers end to end: structural Verilog
(or a built-in generator) → technology mapping → per-unique-cell Monte
Carlo immunity and measured timing → circuit-level aggregation, returned
as a typed :class:`~repro.study.results.CircuitStudyResult`.
"""

from .circuits import (
    CIRCUIT_GENERATORS,
    generate_circuit,
    resolve_circuit,
)
from .study import run_circuit_study

__all__ = [
    "CIRCUIT_GENERATORS",
    "generate_circuit",
    "resolve_circuit",
    "run_circuit_study",
]
