"""Circuit input resolution for circuit studies.

``run_circuit_study`` accepts three spellings of "a circuit":

* a live :class:`~repro.circuit.netlist.GateNetlist`,
* structural Verilog text (anything containing a ``module`` keyword),
* a generator spec string — ``family[:bits]`` over the built-in circuit
  families (``adder:8``, ``comparator:4``, ``mac:4``, ``fulladder``).

This module normalises all three into ``(netlist, source)`` where
``source`` is a short provenance label.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Tuple, Union

from ..circuit.netlist import GateNetlist
from ..errors import StudyError
from ..flow.verilog import (
    comparator_netlist,
    full_adder_netlist,
    mac_slice_netlist,
    parse_structural_verilog,
    ripple_carry_adder_netlist,
)

CircuitLike = Union[str, GateNetlist]

#: Built-in circuit families by spec-name; each maps ``bits`` to a netlist.
CIRCUIT_GENERATORS: Dict[str, Callable[[int], GateNetlist]] = {
    "adder": ripple_carry_adder_netlist,
    "rca": ripple_carry_adder_netlist,
    "comparator": comparator_netlist,
    "cmp": comparator_netlist,
    "mac": mac_slice_netlist,
    "fulladder": lambda bits: full_adder_netlist(),
    "fa": lambda bits: full_adder_netlist(),
}

_SPEC_RE = re.compile(r"^(?P<family>[a-z]+)(?::(?P<bits>\d+))?$")


def generate_circuit(spec: str) -> GateNetlist:
    """Build a built-in circuit from a ``family[:bits]`` spec string.

    >>> generate_circuit("adder:2").name
    'rca2'
    >>> generate_circuit("comparator:3").name
    'cmp3'
    """
    match = _SPEC_RE.match(spec.strip().lower())
    if not match:
        raise StudyError(
            f"Malformed circuit spec {spec!r}; expected family[:bits], "
            f"e.g. adder:8 (families: {sorted(set(CIRCUIT_GENERATORS))})"
        )
    family = match.group("family")
    generator = CIRCUIT_GENERATORS.get(family)
    if generator is None:
        raise StudyError(
            f"Unknown circuit family {family!r}; "
            f"available: {sorted(set(CIRCUIT_GENERATORS))}"
        )
    bits = int(match.group("bits") or 4)
    if bits < 1:
        raise StudyError(f"Circuit spec {spec!r} needs at least 1 bit")
    return generator(bits)


def resolve_circuit(circuit: CircuitLike) -> Tuple[GateNetlist, str]:
    """Normalise any accepted circuit spelling to ``(netlist, source)``."""
    if isinstance(circuit, GateNetlist):
        return circuit, f"netlist:{circuit.name}"
    if not isinstance(circuit, str):
        raise StudyError(
            f"circuit must be a GateNetlist, Verilog text or a spec string, "
            f"not {type(circuit).__name__}"
        )
    if re.search(r"\bmodule\b", circuit):
        netlist = parse_structural_verilog(circuit)
        return netlist, f"verilog:{netlist.name}"
    return generate_circuit(circuit), circuit.strip().lower()
