"""The circuit-study engine: per-unique-cell analysis, circuit aggregation.

``run_circuit_study`` is the end-to-end composition the ROADMAP's
"synthesized-circuit immunity at scale" item asks for:

1. resolve the circuit (Verilog / generator spec / live netlist) and map
   it onto the generated CNFET standard-cell library;
2. for every **unique** mapped cell — not every instance — run one Monte
   Carlo immunity analysis (failure probability under the chosen defect
   parameters) and one measured-timing characterisation (waveform-fitted
   R/C model); an 8-bit ripple-carry adder has 72 instances but only two
   unique cells, so this is where the study earns its throughput;
3. aggregate to circuit level: analytic and Monte Carlo functional
   yield over defect draws, static-timing critical-path delay through
   the mapped netlist using the measured models, and total switching
   energy per cycle.

Per-unique-cell work is content-addressed in the corner store (two
corners per cell: ``circuit-cell`` immunity and ``circuit-timing``) with
seeds derived from the cell *name* alone — so a warm store serves adder
cells to a comparator run, and a grid extension recomputes only the new
cells (``provenance.cache == "partial:<h>/<n>"``).

Determinism: per-cell seeds are pre-derived (:func:`~repro.immunity.
montecarlo.circuit_cell_seed`), tasks are merged by index, and execution
parameters are excluded from provenance — serial, thread and process
backends produce bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..cells import characterize
from ..cells.characterize import (
    MEASURED_LOADS_F,
    MEASURED_SLEW_S,
    cnfet_technology,
    grid_time_base,
)
from ..cells.library import DEFAULT_DRIVE_STRENGTHS, DEFAULT_GATE_SET, build_library
from ..circuit.logical_effort import CellTimingModel, TimingLibrary, analyse_netlist
from ..circuit.netlist import GateNetlist
from ..core.standard_cell import assemble_cell
from ..errors import MappingError
from ..flow.techmap import map_netlist
from ..immunity import montecarlo
from ..immunity.montecarlo import SeedLike, circuit_cell_seed, circuit_survival_draws
from ..logic.functions import standard_gate
from ..obs import trace as obs_trace
from ..runtime.cache import CacheLike, as_cache, with_cache_status
from ..runtime.fingerprint import corner_fingerprint, netlist_context
from ..runtime.scheduler import plan_delta, run_tasks
from ..study.results import CircuitCellReport, CircuitStudyResult, Provenance
from .circuits import CircuitLike, resolve_circuit

#: Spawn-key token for the circuit-level yield draws; contains characters
#: a netlist cell name can never contain, so it cannot collide with any
#: per-cell seed.
_YIELD_SEED_NAME = "::yield::"


@dataclass(frozen=True)
class _CellTask:
    """One unit of per-unique-cell work (picklable for the process pool)."""

    kind: str                       # "immunity" | "timing"
    cell: str                       # library cell name, e.g. "NAND2_2X"
    gate: str
    drive: float
    technique: str
    unit_width: float
    trials: int
    cnts_per_trial: int
    max_angle_deg: float
    metallic_fraction: float
    seed: Optional[np.random.SeedSequence]
    vdd: float
    pitch_nm: float


def _run_cell_task(task: _CellTask) -> Dict[str, Any]:
    """Execute one per-cell corner; returns its plain-scalar metrics.

    The engines are called through their modules (not direct imports) so
    invocation counters installed by tests and benchmarks observe every
    call on the serial and thread backends.
    """
    gate = standard_gate(task.gate)
    if task.kind == "immunity":
        cell = assemble_cell(
            gate,
            technique=task.technique,
            unit_width=task.unit_width,
            drive_strength=task.drive,
        )
        outcome = montecarlo.run_immunity_trials(
            cell,
            trials=task.trials,
            cnts_per_trial=task.cnts_per_trial,
            max_angle_deg=task.max_angle_deg,
            seed=task.seed,
            metallic_fraction=task.metallic_fraction,
        )
        return {
            "trials": outcome.trials,
            "failures": outcome.failures,
            "failure_rate": outcome.failure_rate,
            "immune": outcome.immune,
        }
    models = characterize.measured_timing_models(
        gate,
        cnfet_technology(vdd=task.vdd, pitch_nm=task.pitch_nm),
        unit_width=task.unit_width,
        drive_strengths=(task.drive,),
    )
    model = models[task.drive]
    return {
        "input_capacitance_f": model.input_capacitance,
        "drive_resistance_ohm": model.drive_resistance,
        "parasitic_capacitance_f": model.parasitic_capacitance,
    }


def _unique_cells(design) -> "List[Tuple[str, Any, List[Any]]]":
    """``(cell_name, library_cell, instances)`` per distinct mapped cell,
    sorted by cell name so evaluation order never depends on netlist
    construction order."""
    groups: Dict[str, Tuple[Any, List[Any]]] = {}
    for mapped in design.gates:
        entry = groups.setdefault(mapped.cell.name, (mapped.cell, []))
        entry[1].append(mapped.instance)
    return [(name, cell, instances)
            for name, (cell, instances) in sorted(groups.items())]


def run_circuit_study(
    circuit: CircuitLike = "adder:4",
    trials: int = 200,
    seed: SeedLike = 2009,
    cnts_per_trial: int = 4,
    max_angle_deg: float = 15.0,
    metallic_fraction: float = 0.0,
    technique: str = "compact",
    vdd: float = 1.0,
    pitch_nm: float = 5.0,
    unit_width: float = 4.0,
    draws: int = 2000,
    output_load_f: float = 1.0e-15,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    cache: CacheLike = None,
) -> CircuitStudyResult:
    """Circuit-level yield / delay / energy study of one mapped netlist.

    ``circuit`` is a generator spec (``"adder:8"``), structural Verilog
    text, or a live :class:`~repro.circuit.netlist.GateNetlist`.
    ``cache`` enables per-unique-cell corner reuse (``True``, a path or a
    :class:`~repro.runtime.cache.ResultCache`); ``workers``/``backend``
    select the scheduler and never change the result.
    """
    netlist, source = resolve_circuit(circuit)
    used_types = sorted({gate.cell_type for gate in netlist.gates})
    unknown = [name for name in used_types if name not in DEFAULT_GATE_SET]
    if unknown:
        raise MappingError(
            f"Circuit {netlist.name!r} uses gate type(s) "
            f"{', '.join(repr(u) for u in unknown)} outside the standard "
            f"library set {DEFAULT_GATE_SET}"
        )
    technology = cnfet_technology(vdd=vdd, pitch_nm=pitch_nm)
    library = build_library(
        gate_names=used_types,
        drive_strengths=DEFAULT_DRIVE_STRENGTHS,
        technique=technique,
        unit_width=unit_width,
        technology=technology,
    )
    design = map_netlist(netlist, library)
    groups = _unique_cells(design)

    tasks: List[_CellTask] = []
    keys: List[str] = []
    for cell_name, cell, _instances in groups:
        cell_seed = circuit_cell_seed(seed, cell_name)
        tasks.append(_CellTask(
            kind="immunity", cell=cell_name, gate=cell.gate.name,
            drive=cell.drive_strength, technique=technique,
            unit_width=unit_width, trials=trials,
            cnts_per_trial=cnts_per_trial, max_angle_deg=max_angle_deg,
            metallic_fraction=metallic_fraction, seed=cell_seed,
            vdd=vdd, pitch_nm=pitch_nm,
        ))
        keys.append(corner_fingerprint(
            "circuit-cell",
            {
                "cell": cell_name, "gate": cell.gate.name,
                "drive": cell.drive_strength, "technique": technique,
                "unit_width": unit_width, "cnts_per_trial": cnts_per_trial,
                "max_angle_deg": max_angle_deg,
                "metallic_fraction": metallic_fraction,
            },
            seed=cell_seed,
            trials=trials,
        ))
        tasks.append(_CellTask(
            kind="timing", cell=cell_name, gate=cell.gate.name,
            drive=cell.drive_strength, technique=technique,
            unit_width=unit_width, trials=trials,
            cnts_per_trial=cnts_per_trial, max_angle_deg=max_angle_deg,
            metallic_fraction=metallic_fraction, seed=None,
            vdd=vdd, pitch_nm=pitch_nm,
        ))
        keys.append(corner_fingerprint(
            "circuit-timing",
            {
                "cell": cell_name, "gate": cell.gate.name,
                "drive": cell.drive_strength, "vdd": vdd,
                "pitch_nm": pitch_nm, "unit_width": unit_width,
                "loads": MEASURED_LOADS_F, "slew": MEASURED_SLEW_S,
            },
            context=grid_time_base(
                cell.gate.name, (cell.drive_strength,), MEASURED_LOADS_F,
                (MEASURED_SLEW_S,), {"nominal": technology},
                unit_width=unit_width,
            ),
        ))

    store = as_cache(cache)
    with obs_trace.span("circuit", circuit=netlist.name,
                        instances=len(netlist.gates),
                        unique_cells=len(groups),
                        cached=store is not None):
        cached: Dict[str, Any] = (
            store.get_corners(keys) if store is not None else {}
        )
        plan = plan_delta(keys, set(cached))
        obs_trace.annotate(hits=plan.hits, misses=plan.misses,
                           status=plan.status)
        miss_results = run_tasks(
            _run_cell_task,
            [tasks[i] for i in plan.miss_indices],
            jobs=workers,
            backend=backend,
        )
        metrics: List[Dict[str, Any]] = [None] * len(keys)  # type: ignore[list-item]
        for index in plan.hit_indices:
            metrics[index] = cached[keys[index]]
        for index, outcome in zip(plan.miss_indices, miss_results):
            metrics[index] = outcome
            if store is not None:
                store.put_corner(keys[index], outcome,
                                 engine=f"circuit-{tasks[index].kind}")

    reports: List[CircuitCellReport] = []
    failure_by_cell: Dict[str, float] = {}
    timing_library = TimingLibrary(f"circuit-{netlist.name}", vdd=vdd)
    for position, (cell_name, cell, instances) in enumerate(groups):
        immunity = metrics[2 * position]
        timing = metrics[2 * position + 1]
        failure_by_cell[cell_name] = float(immunity["failure_rate"])
        reports.append(CircuitCellReport(
            cell=cell_name,
            gate=cell.gate.name,
            drive_strength=cell.drive_strength,
            instances=len(instances),
            trials=int(immunity["trials"]),
            failures=int(immunity["failures"]),
            failure_rate=float(immunity["failure_rate"]),
            immune=bool(immunity["immune"]),
            input_capacitance_f=float(timing["input_capacitance_f"]),
            drive_resistance_ohm=float(timing["drive_resistance_ohm"]),
            parasitic_capacitance_f=float(timing["parasitic_capacitance_f"]),
        ))
        timing_library.add(CellTimingModel(
            cell_type=cell.gate.name,
            drive_strength=cell.drive_strength,
            input_capacitance=float(timing["input_capacitance_f"]),
            drive_resistance=float(timing["drive_resistance_ohm"]),
            parasitic_capacitance=float(timing["parasitic_capacitance_f"]),
        ))

    # Yield aggregation: every instance of a cell shares that cell's
    # failure probability (independent defects per instance).
    cell_of_instance = {
        instance.name: cell_name
        for cell_name, _cell, instances in groups
        for instance in instances
    }
    instance_probs = [
        failure_by_cell[cell_of_instance[gate.name]] for gate in netlist.gates
    ]
    functional_yield = float(np.prod([1.0 - p for p in instance_probs]))
    defect_counts = circuit_survival_draws(
        instance_probs, draws, circuit_cell_seed(seed, _YIELD_SEED_NAME)
    )
    monte_carlo_yield = (
        float(np.count_nonzero(defect_counts == 0) / draws) if draws else 0.0
    )
    histogram = tuple(
        (int(count), int(freq))
        for count, freq in enumerate(np.bincount(defect_counts))
        if freq > 0
    ) if draws else ()

    # Static timing over the measured models: instances analysed at their
    # *mapped* drive so lookups hit the measured models exactly instead of
    # nearest-drive scaling.
    shadow = GateNetlist(netlist.name)
    for mapped in design.gates:
        shadow.add_gate(
            mapped.instance.name,
            mapped.instance.cell_type,
            mapped.instance.connections,
            mapped.cell.drive_strength,
        )
    shadow.declare_io(netlist.inputs, netlist.outputs)
    path = analyse_netlist(shadow, timing_library, output_load=output_load_f)

    provenance = Provenance.capture(
        "circuit",
        params={
            "circuit": (source if isinstance(circuit, str)
                        and "module" not in circuit
                        else netlist_context(netlist)),
            "trials": trials,
            "seed": seed,
            "cnts_per_trial": cnts_per_trial,
            "max_angle_deg": max_angle_deg,
            "metallic_fraction": metallic_fraction,
            "technique": technique,
            "vdd": vdd,
            "pitch_nm": pitch_nm,
            "unit_width": unit_width,
            "draws": draws,
            "output_load_f": output_load_f,
        },
        engine="circuit",
        seed=seed,
    )
    result = CircuitStudyResult(
        provenance=provenance,
        circuit=netlist.name,
        source=source,
        instances=len(netlist.gates),
        unique_cells=len(groups),
        cells=tuple(reports),
        functional_yield=functional_yield,
        monte_carlo_yield=monte_carlo_yield,
        draws=draws,
        defect_histogram=histogram,
        critical_path_delay_s=path.critical_path_delay,
        critical_path=tuple(path.critical_path),
        output_arrivals_s={
            net: path.arrival_times[net] for net in netlist.outputs
        },
        total_energy_per_cycle_j=path.total_energy_per_cycle,
        total_cell_area_lambda2=design.total_cell_area(),
        vdd=vdd,
        pitch_nm=pitch_nm,
    )
    if store is not None:
        result = with_cache_status(result, plan.status)
    return result
