"""The paper's core contribution: compact imperfection-immune CNFET layouts."""

from .area import (
    PAPER_TABLE1,
    TABLE1_CELLS,
    TABLE1_WIDTHS,
    AreaComparisonRow,
    CellAreaGain,
    NetworkAreas,
    area_saving,
    baseline_network_areas,
    cell_area_gain,
    compact_network_areas,
    format_table1,
    inverter_area_gain,
    table1,
)
from .column import (
    ColumnElement,
    ContactElement,
    EtchElement,
    GateElement,
    build_column,
    column_stack_height,
)
from .compact import (
    CompactPlan,
    compact_network_height,
    compact_network_layout,
    plan_compact_network,
)
from .grid import baseline_network_layout, vulnerable_network_layout
from .sizing import (
    CellSizing,
    balanced_sizing,
    leaf_width_factors,
    series_depth,
    size_gate,
    width_map_for_network,
)
from .spec import (
    ActiveRegion,
    CellAnnotations,
    ContactRegion,
    EtchRegion,
    GateRegion,
    NetworkLayoutResult,
    attach_annotations,
    get_annotations,
)
from .standard_cell import (
    SCHEME_SIDE_BY_SIDE,
    SCHEME_STACKED,
    CMOSCellArea,
    StandardCell,
    assemble_cell,
    cmos_cell_area,
)

__all__ = [
    "PAPER_TABLE1", "TABLE1_CELLS", "TABLE1_WIDTHS",
    "AreaComparisonRow", "CellAreaGain", "NetworkAreas",
    "area_saving", "baseline_network_areas", "cell_area_gain",
    "compact_network_areas", "format_table1", "inverter_area_gain", "table1",
    "ColumnElement", "ContactElement", "EtchElement", "GateElement",
    "build_column", "column_stack_height",
    "CompactPlan", "compact_network_height", "compact_network_layout",
    "plan_compact_network",
    "baseline_network_layout", "vulnerable_network_layout",
    "CellSizing", "balanced_sizing", "leaf_width_factors", "series_depth",
    "size_gate", "width_map_for_network",
    "ActiveRegion", "CellAnnotations", "ContactRegion", "EtchRegion",
    "GateRegion", "NetworkLayoutResult", "attach_annotations", "get_annotations",
    "SCHEME_SIDE_BY_SIDE", "SCHEME_STACKED", "CMOSCellArea", "StandardCell",
    "assemble_cell", "cmos_cell_area",
]
