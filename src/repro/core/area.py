"""Analytical area comparisons: Table 1, Figure 3 and the CMOS area gains.

The paper quantifies its contribution through three area comparisons:

* **Table 1** — active-region area of the new compact layouts versus the
  baseline etched-region layouts of [6], per cell type and unit transistor
  width (3/4/6/10 λ);
* **Figure 3** — the NAND3 walk-through (16.67 % smaller at 4 λ);
* **Case study 1** — the 1.4× area gain of a CNFET inverter over the CMOS
  one, which comes from symmetric n/p devices and the smaller PUN-to-PDN
  separation (6 λ vs 10 λ).

The functions here drive the layout generators and report paper-vs-measured
values; the benchmarks print them as tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.functions import standard_gate
from ..logic.network import GateNetworks
from ..tech.lambda_rules import CMOS_RULES, CNFET_RULES, DesignRules
from .grid import baseline_network_layout
from .compact import compact_network_layout
from .standard_cell import assemble_cell, cmos_cell_area

#: Table 1 of the paper: relative area saving of the new layouts over the
#: baseline technique, per cell and unit transistor width (in λ).
PAPER_TABLE1: Dict[str, Dict[float, float]] = {
    "INV": {3: 0.0, 4: 0.0, 6: 0.0, 10: 0.0},
    "NAND2": {3: 0.1718, 4: 0.1452, 6: 0.1167, 10: 0.0925},
    "NAND3": {3: 0.1964, 4: 0.1667, 6: 0.1345, 10: 0.1071},
    "AOI22": {3: 0.322, 4: 0.277, 6: 0.225, 10: 0.149},
    "AOI21": {3: 0.443, 4: 0.406, 6: 0.364, 10: 0.325},
}

#: Cell order used when printing Table 1.
TABLE1_CELLS: Tuple[str, ...] = ("INV", "NAND2", "NAND3", "AOI22", "AOI21")

#: Unit transistor widths of Table 1 (λ).
TABLE1_WIDTHS: Tuple[float, ...] = (3.0, 4.0, 6.0, 10.0)


@dataclass(frozen=True)
class NetworkAreas:
    """Bounding-box areas (λ²) of one gate's PUN and PDN for one technique."""

    pun_area: float
    pdn_area: float

    @property
    def total(self) -> float:
        return self.pun_area + self.pdn_area


def compact_network_areas(gate: GateNetworks, unit_width: float,
                          rules: DesignRules = CNFET_RULES) -> NetworkAreas:
    """PUN/PDN bounding-box areas of the compact (Euler-path) technique."""
    pun = compact_network_layout(gate.pun, gate.pun_tree, unit_width, rules)
    pdn = compact_network_layout(gate.pdn, gate.pdn_tree, unit_width, rules)
    return NetworkAreas(pun.bbox_area, pdn.bbox_area)


def baseline_network_areas(gate: GateNetworks, unit_width: float,
                           rules: DesignRules = CNFET_RULES) -> NetworkAreas:
    """PUN/PDN bounding-box areas of the baseline etched-region technique."""
    pun = baseline_network_layout(gate, "pun", unit_width, rules)
    pdn = baseline_network_layout(gate, "pdn", unit_width, rules)
    return NetworkAreas(pun.bbox_area, pdn.bbox_area)


@dataclass(frozen=True)
class AreaComparisonRow:
    """One (cell, width) entry of the Table 1 comparison."""

    cell: str
    unit_width: float
    baseline_area: float
    compact_area: float
    paper_saving: Optional[float]

    @property
    def measured_saving(self) -> float:
        """Fractional area saved by the compact technique."""
        if self.baseline_area <= 0:
            return 0.0
        return (self.baseline_area - self.compact_area) / self.baseline_area

    @property
    def error_vs_paper(self) -> Optional[float]:
        """Absolute difference from the paper's value (percentage points)."""
        if self.paper_saving is None:
            return None
        return abs(self.measured_saving - self.paper_saving)


def area_saving(gate: GateNetworks, unit_width: float,
                rules: DesignRules = CNFET_RULES) -> AreaComparisonRow:
    """Compute one Table 1 entry for an arbitrary gate."""
    baseline = baseline_network_areas(gate, unit_width, rules)
    compact = compact_network_areas(gate, unit_width, rules)
    paper = PAPER_TABLE1.get(gate.name, {}).get(unit_width)
    return AreaComparisonRow(
        cell=gate.name,
        unit_width=unit_width,
        baseline_area=baseline.total,
        compact_area=compact.total,
        paper_saving=paper,
    )


def table1(
    cells: Sequence[str] = TABLE1_CELLS,
    widths: Sequence[float] = TABLE1_WIDTHS,
    rules: DesignRules = CNFET_RULES,
) -> List[AreaComparisonRow]:
    """Regenerate Table 1: one row per (cell, unit width)."""
    rows: List[AreaComparisonRow] = []
    for cell_name in cells:
        gate = standard_gate(cell_name)
        for width in widths:
            rows.append(area_saving(gate, width, rules))
    return rows


def format_table1(rows: Sequence[AreaComparisonRow]) -> str:
    """Render Table 1 rows as a fixed-width text table (paper vs measured)."""
    header = (
        f"{'cell':<8} {'W(λ)':>5} {'baseline(λ²)':>13} {'compact(λ²)':>12} "
        f"{'measured':>9} {'paper':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        paper = f"{row.paper_saving * 100:6.2f}%" if row.paper_saving is not None else "   n/a"
        lines.append(
            f"{row.cell:<8} {row.unit_width:>5.0f} {row.baseline_area:>13.1f} "
            f"{row.compact_area:>12.1f} {row.measured_saving * 100:>8.2f}% {paper:>7}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CNFET vs CMOS cell-area gains (Case studies 1 and 2)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellAreaGain:
    """Area of a CNFET cell versus the equivalent CMOS cell."""

    gate_name: str
    scheme: int
    cnfet_area: float
    cmos_area: float

    @property
    def gain(self) -> float:
        """How many times smaller the CNFET cell is."""
        if self.cnfet_area <= 0:
            return float("inf")
        return self.cmos_area / self.cnfet_area


def inverter_area_gain(
    unit_width: float = 4.0,
    scheme: int = 1,
    cnfet_rules: DesignRules = CNFET_RULES,
    cmos_rules: DesignRules = CMOS_RULES,
) -> CellAreaGain:
    """The ~1.4× inverter area gain of Case study 1.

    The CNFET inverter has symmetric n/p widths and a 6 λ PUN-to-PDN
    separation; the CMOS inverter needs a 1.4× wider pMOS and a 10 λ
    separation.
    """
    gate = standard_gate("INV")
    cnfet = assemble_cell(gate, technique="compact", scheme=scheme,
                          unit_width=unit_width, rules=cnfet_rules)
    cmos = cmos_cell_area(gate, unit_width=unit_width, rules=cmos_rules)
    return CellAreaGain(
        gate_name="INV",
        scheme=scheme,
        cnfet_area=cnfet.area,
        cmos_area=cmos.area,
    )


def cell_area_gain(
    gate_name: str,
    unit_width: float = 4.0,
    drive_strength: float = 1.0,
    scheme: int = 1,
    cnfet_rules: DesignRules = CNFET_RULES,
    cmos_rules: DesignRules = CMOS_RULES,
) -> CellAreaGain:
    """CNFET-vs-CMOS area gain of an arbitrary library cell."""
    gate = standard_gate(gate_name)
    cnfet = assemble_cell(gate, technique="compact", scheme=scheme,
                          unit_width=unit_width, drive_strength=drive_strength,
                          rules=cnfet_rules)
    cmos = cmos_cell_area(gate, unit_width=unit_width,
                          drive_strength=drive_strength, rules=cmos_rules)
    return CellAreaGain(
        gate_name=gate_name,
        scheme=scheme,
        cnfet_area=cnfet.area,
        cmos_area=cmos.area,
    )
