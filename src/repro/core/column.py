"""Column-stack drawing primitive shared by the layout generators.

Every CNFET network layout in this library is assembled from vertical
*columns*: a strip of CNT plane of some width in which metal contacts, poly
gates and (for the baseline technique) etched regions are stacked bottom-up
along the CNT direction.  Gates and contacts span the full column width so
that a CNT anywhere in the column — aligned or mispositioned — cannot avoid
them; this is the geometric property the immunity analysis verifies.

The builder works in λ units and records both the geometry (rectangles on
the ``cnt`` / ``poly`` / ``contact`` / ``metal1`` / doping / ``cnt_etch``
layers of :func:`repro.tech.layers.cnfet_layer_stack`) and the electrical
annotations (:mod:`repro.core.spec`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import LayoutGenerationError
from ..geometry.layout import LayoutCell
from ..geometry.primitives import Rect
from ..tech.lambda_rules import DesignRules
from .spec import ActiveRegion, CellAnnotations, ContactRegion, EtchRegion, GateRegion


@dataclass(frozen=True)
class ContactElement:
    """A source/drain metal contact tied to ``net``."""

    net: str


@dataclass(frozen=True)
class GateElement:
    """A poly gate controlled by ``signal``."""

    signal: str


@dataclass(frozen=True)
class EtchElement:
    """An etched (CNT-free) break inside the column."""

    pass


ColumnElement = Union[ContactElement, GateElement, EtchElement]


@dataclass
class ColumnResult:
    """Geometry summary of one drawn column."""

    x_left: float
    width: float
    y_bottom: float
    y_top: float
    contact_rects: List[Tuple[Rect, str]]
    gate_rects: List[Tuple[Rect, str]]
    etch_rects: List[Rect]
    active_rect: Rect

    @property
    def height(self) -> float:
        return self.y_top - self.y_bottom


def _spacing_between(rules: DesignRules, below: ColumnElement, above: ColumnElement) -> float:
    """Vertical spacing required between two stacked column elements."""
    below_is_gate = isinstance(below, GateElement)
    above_is_gate = isinstance(above, GateElement)
    if below_is_gate and above_is_gate:
        return rules.gate_gate_spacing
    if below_is_gate or above_is_gate:
        return rules.gate_contact_spacing
    # contact/etch against contact/etch: keep them directly abutted — the
    # etch region itself provides the separation.
    if isinstance(below, EtchElement) or isinstance(above, EtchElement):
        return 0.0
    raise LayoutGenerationError(
        "Two metal contacts may not be stacked without a gate or etched "
        "region between them (the doped CNT in between would short them)"
    )


def _element_height(rules: DesignRules, element: ColumnElement) -> float:
    if isinstance(element, ContactElement):
        return rules.contact_length
    if isinstance(element, GateElement):
        return rules.gate_length
    if isinstance(element, EtchElement):
        return rules.etch_width
    raise LayoutGenerationError(f"Unknown column element {element!r}")


def build_column(
    cell: LayoutCell,
    annotations: CellAnnotations,
    elements: Sequence[ColumnElement],
    device: str,
    width: float,
    rules: DesignRules,
    x_left: float = 0.0,
    y_bottom: float = 0.0,
    draw_active: bool = True,
) -> ColumnResult:
    """Draw one column into ``cell`` and record its annotations.

    Parameters
    ----------
    elements:
        Bottom-to-top stack of contacts, gates and etched regions.
    device:
        ``"nfet"`` (n⁺ doping) or ``"pfet"`` (p⁺ doping).
    width:
        Column (transistor) width in λ.
    draw_active:
        When False the caller draws a shared active region itself (used by
        multi-column parallel groups that share one CNT plane rectangle).
    """
    if not elements:
        raise LayoutGenerationError("A column needs at least one element")
    if width < rules.min_transistor_width:
        raise LayoutGenerationError(
            f"Column width {width}λ is below the minimum transistor width "
            f"{rules.min_transistor_width}λ"
        )
    if device not in ("nfet", "pfet"):
        raise LayoutGenerationError(f"Unknown device type {device!r}")

    doping_layer = "nplus" if device == "nfet" else "pplus"
    doping = "n" if device == "nfet" else "p"
    overhang = rules.active_contact_overhang

    contact_rects: List[Tuple[Rect, str]] = []
    gate_rects: List[Tuple[Rect, str]] = []
    etch_rects: List[Rect] = []

    y_cursor = y_bottom
    previous: Optional[ColumnElement] = None
    for element in elements:
        if previous is not None:
            y_cursor += _spacing_between(rules, previous, element)
        height = _element_height(rules, element)
        if isinstance(element, ContactElement):
            rect = Rect(x_left, y_cursor, x_left + width, y_cursor + height)
            cell.add_rect("contact", rect)
            cell.add_rect("metal1", rect)
            contact_rects.append((rect, element.net))
            annotations.contacts.append(ContactRegion(rect, element.net))
        elif isinstance(element, GateElement):
            rect = Rect(
                x_left - overhang, y_cursor, x_left + width + overhang, y_cursor + height
            )
            cell.add_rect("poly", rect)
            gate_rects.append((rect, element.signal))
            annotations.gates.append(GateRegion(rect, element.signal, device))
        else:  # EtchElement
            rect = Rect(
                x_left - overhang, y_cursor, x_left + width + overhang, y_cursor + height
            )
            cell.add_rect("cnt_etch", rect)
            etch_rects.append(rect)
            annotations.etches.append(EtchRegion(rect))
        y_cursor += height
        previous = element

    y_top = y_cursor
    active_rect = Rect(x_left, y_bottom, x_left + width, y_top)
    if draw_active:
        cell.add_rect("cnt", active_rect)
        cell.add_rect(doping_layer, active_rect)
        annotations.actives.append(ActiveRegion(active_rect, doping))

    return ColumnResult(
        x_left=x_left,
        width=width,
        y_bottom=y_bottom,
        y_top=y_top,
        contact_rects=contact_rects,
        gate_rects=gate_rects,
        etch_rects=etch_rects,
        active_rect=active_rect,
    )


def column_stack_height(rules: DesignRules, elements: Sequence[ColumnElement]) -> float:
    """Height (in λ) a stack of elements will occupy, without drawing it."""
    if not elements:
        return 0.0
    total = 0.0
    previous: Optional[ColumnElement] = None
    for element in elements:
        if previous is not None:
            total += _spacing_between(rules, previous, element)
        total += _element_height(rules, element)
        previous = element
    return total
