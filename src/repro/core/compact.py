"""The paper's contribution: compact misaligned-CNT-immune layouts.

Section III linearises each pull-up / pull-down network along an Euler path
of its transistor graph (metal contacts = nodes, gates = edges).  The
resulting layout is a **single CNT column** in which gates and contacts
alternate; wherever the Euler path revisits a net, a *redundant* metal
contact is placed instead of the etched region the baseline technique [6]
needs.  Because every gate spans the full column width and any two contacts
are separated by at least one gate, a mispositioned CNT can never connect
two contacts without passing under the correct gates — the layout is
functionally immune by construction, without vertical gating and within
conventional 65 nm rules.

Series junctions that the Euler path visits exactly once do not need a
metal contact at all (ordinary diffusion/CNT sharing), which is what keeps
the column short.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import LayoutGenerationError
from ..euler.path import LinearizedNetwork, euler_path_for_network
from ..geometry.layout import LayoutCell
from ..logic.network import GateNetworks, SPNode, Transistor, TransistorNetwork
from ..tech.lambda_rules import CNFET_RULES, DesignRules
from .column import (
    ColumnElement,
    ContactElement,
    EtchElement,
    GateElement,
    build_column,
    column_stack_height,
)
from .sizing import width_map_for_network
from .spec import CellAnnotations, NetworkLayoutResult, attach_annotations


@dataclass(frozen=True)
class CompactPlan:
    """The element stack of a compact network column, before drawing."""

    elements: Tuple[ColumnElement, ...]
    column_width: float
    redundant_contacts: int
    omitted_junctions: int
    linearization: LinearizedNetwork


def plan_compact_network(
    network: TransistorNetwork,
    tree: Optional[SPNode] = None,
    unit_width: float = 4.0,
    rules: DesignRules = CNFET_RULES,
) -> CompactPlan:
    """Derive the column element stack for a network via its Euler path."""
    linearization = euler_path_for_network(network)
    widths: Dict[str, float]
    if tree is not None:
        widths = width_map_for_network(tree, network, unit_width)
    else:
        widths = {t.name: unit_width for t in network.transistors}
    column_width = max(max(widths.values()), rules.min_transistor_width)

    terminal_nets = {network.power_net, network.output_net}
    net_visits = Counter(linearization.contact_nets())

    elements: List[ColumnElement] = []
    redundant = 0
    omitted = 0
    break_positions = set(linearization.breaks)

    for index, item in enumerate(linearization.elements):
        if isinstance(item, Transistor):
            elements.append(GateElement(item.gate))
            continue
        net = item
        needs_contact = (
            net in terminal_nets
            or net_visits[net] > 1
            or index in break_positions
        )
        if not needs_contact:
            omitted += 1
            continue
        if elements and isinstance(elements[-1], ContactElement):
            # Two adjacent contacts only happen at a trail break between
            # different nets; an etched region must separate them so the
            # doped CNT in between does not short the nets.  The standard
            # cells of the paper never hit this path.
            elements.append(EtchElement())
        elements.append(ContactElement(net))

    for net, visits in net_visits.items():
        if visits > 1 and net not in terminal_nets:
            redundant += visits - 1
    for net in terminal_nets:
        if net_visits[net] > 1:
            redundant += net_visits[net] - 1

    _validate_alternation(elements)
    return CompactPlan(
        elements=tuple(elements),
        column_width=column_width,
        redundant_contacts=redundant,
        omitted_junctions=omitted,
        linearization=linearization,
    )


def _validate_alternation(elements: Sequence[ColumnElement]) -> None:
    if not elements:
        raise LayoutGenerationError("Compact plan produced an empty column")
    if not isinstance(elements[0], ContactElement) or not isinstance(
        elements[-1], ContactElement
    ):
        raise LayoutGenerationError(
            "A compact column must start and end with a metal contact"
        )


def compact_network_layout(
    network: TransistorNetwork,
    tree: Optional[SPNode] = None,
    unit_width: float = 4.0,
    rules: DesignRules = CNFET_RULES,
    cell_name: Optional[str] = None,
    output_net: str = "out",
) -> NetworkLayoutResult:
    """Generate the compact (Euler-path) layout of one network as a cell."""
    plan = plan_compact_network(network, tree, unit_width, rules)
    name = cell_name or f"compact_{network.device}_{network.power_net}"
    cell = LayoutCell(name)
    annotations = CellAnnotations(
        cell_name=name,
        inputs=tuple(network.signals()),
        output_net=output_net,
    )
    column = build_column(
        cell=cell,
        annotations=annotations,
        elements=plan.elements,
        device=network.device,
        width=plan.column_width,
        rules=rules,
    )
    attach_annotations(cell, annotations)
    cell.properties["technique"] = "compact"
    cell.properties["redundant_contacts"] = plan.redundant_contacts
    cell.properties["column_width"] = plan.column_width

    etch_count = sum(1 for e in plan.elements if isinstance(e, EtchElement))
    return NetworkLayoutResult(
        cell=cell,
        annotations=annotations,
        width=plan.column_width,
        height=column.height,
        active_area=column.active_rect.area,
        contact_count=len(column.contact_rects),
        gate_count=len(column.gate_rects),
        etch_count=etch_count,
    )


def compact_network_height(
    network: TransistorNetwork,
    tree: Optional[SPNode] = None,
    unit_width: float = 4.0,
    rules: DesignRules = CNFET_RULES,
) -> float:
    """Column height of the compact layout without drawing it (used by the
    analytical area model)."""
    plan = plan_compact_network(network, tree, unit_width, rules)
    return column_stack_height(rules, plan.elements)
