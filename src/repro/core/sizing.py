"""Transistor sizing for CNFET standard cells.

Two concerns from the paper:

* **Stack sizing** (Section III): devices in series must be widened so the
  worst-case pull resistance matches a single unit device — "n-CNFETs are
  three times bigger than the p-CNFETs for a NAND3 cell".  The rule
  implemented here widens every device by the number of series levels on
  its own conduction path.
* **Drive strength** (Section IV): cells are sized by loading a number of
  minimum inverters (INV1X); a ``k×`` cell multiplies every width by ``k``.
* **Symmetric PUN/PDN balancing** (Figure 4b): the per-branch widths of the
  basic layout can be rescaled so the pull-up and pull-down networks have
  matched worst-case resistance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..errors import NetworkError
from ..logic.network import (
    GateNetworks,
    SPLeaf,
    SPNode,
    SPParallel,
    SPSeries,
    TransistorNetwork,
)


def series_depth(node: SPNode) -> int:
    """Worst-case number of devices in series across the (sub)network."""
    if isinstance(node, SPLeaf):
        return 1
    if isinstance(node, SPSeries):
        return sum(series_depth(child) for child in node.children)
    if isinstance(node, SPParallel):
        return max(series_depth(child) for child in node.children)
    raise NetworkError(f"Unsupported SP node {type(node).__name__}")


def leaf_width_factors(tree: SPNode) -> List[float]:
    """Width multiplier of every leaf (in tree traversal order).

    Each leaf is widened by the number of series levels on the conduction
    path that traverses it, so every end-to-end path has the resistance of
    one unit device.
    """
    factors: List[float] = []

    def visit(node: SPNode, path_levels: int) -> None:
        if isinstance(node, SPLeaf):
            factors.append(float(path_levels))
            return
        if isinstance(node, SPSeries):
            for child in node.children:
                visit(child, path_levels)
            return
        if isinstance(node, SPParallel):
            node_depth = series_depth(node)
            for child in node.children:
                visit(child, path_levels - node_depth + series_depth(child))
            return
        raise NetworkError(f"Unsupported SP node {type(node).__name__}")

    visit(tree, series_depth(tree))
    return factors


def width_map_for_network(tree: SPNode, network: TransistorNetwork,
                          unit_width: float) -> Dict[str, float]:
    """Per-transistor widths (in λ) for a flattened network.

    The flattening in :class:`~repro.logic.network.TransistorNetwork`
    enumerates leaves in the same order as a depth-first traversal of the
    tree, so factors and transistors can be zipped positionally.
    """
    if unit_width <= 0:
        raise NetworkError("unit_width must be positive")
    factors = leaf_width_factors(tree)
    if len(factors) != len(network.transistors):
        raise NetworkError(
            f"Tree has {len(factors)} leaves but network has "
            f"{len(network.transistors)} transistors"
        )
    return {
        transistor.name: factor * unit_width
        for transistor, factor in zip(network.transistors, factors)
    }


@dataclass(frozen=True)
class CellSizing:
    """Complete sizing of a gate: per-device widths for PUN and PDN in λ."""

    gate_name: str
    unit_width: float
    drive_strength: float
    pun_widths: Dict[str, float]
    pdn_widths: Dict[str, float]

    @property
    def max_pun_width(self) -> float:
        return max(self.pun_widths.values())

    @property
    def max_pdn_width(self) -> float:
        return max(self.pdn_widths.values())

    def total_device_width(self) -> float:
        """Sum of all device widths (a proxy for active area / input load)."""
        return sum(self.pun_widths.values()) + sum(self.pdn_widths.values())


def size_gate(gate: GateNetworks, unit_width: float = 4.0,
              drive_strength: float = 1.0) -> CellSizing:
    """Size a gate's PUN and PDN.

    ``unit_width`` is the width (in λ) of the unit device — the "transistor
    size" axis of Table 1.  CNFET n- and p-devices have symmetric drive
    (Section V) so the same unit is used for both networks; the stack rule
    then widens series devices.
    """
    if drive_strength <= 0:
        raise NetworkError("drive_strength must be positive")
    scaled_unit = unit_width * drive_strength
    pun_widths = width_map_for_network(gate.pun_tree, gate.pun, scaled_unit)
    pdn_widths = width_map_for_network(gate.pdn_tree, gate.pdn, scaled_unit)
    return CellSizing(
        gate_name=gate.name,
        unit_width=unit_width,
        drive_strength=drive_strength,
        pun_widths=pun_widths,
        pdn_widths=pdn_widths,
    )


def balanced_sizing(gate: GateNetworks, unit_width: float = 4.0,
                    drive_strength: float = 1.0,
                    pun_to_pdn_ratio: float = 1.0) -> CellSizing:
    """Sizing with an explicit PUN:PDN strength ratio.

    The symmetric layouts of Figure 4(b) rescale whole networks relative to
    each other; ``pun_to_pdn_ratio`` > 1 strengthens the pull-up network.
    With CNFETs the natural ratio is 1.0 (symmetric devices); the CMOS
    reference uses ~1.4.
    """
    if pun_to_pdn_ratio <= 0:
        raise NetworkError("pun_to_pdn_ratio must be positive")
    base = size_gate(gate, unit_width, drive_strength)
    pun_widths = {name: width * pun_to_pdn_ratio for name, width in base.pun_widths.items()}
    return CellSizing(
        gate_name=base.gate_name,
        unit_width=base.unit_width,
        drive_strength=base.drive_strength,
        pun_widths=pun_widths,
        pdn_widths=dict(base.pdn_widths),
    )
