"""Layout-level annotations shared by all CNFET cell generators.

Generated cells are plain :class:`~repro.geometry.layout.LayoutCell` objects
(rectangles on layers), but the immunity analysis and the extraction step
need to know *what each rectangle means electrically*: which poly rectangle
is the gate of which signal, which metal rectangle contacts which net, where
the CNT (active) regions are and how they are doped, and where CNTs have
been etched away.  A :class:`CellAnnotations` object carries exactly that
and is attached to the cell under ``cell.properties["annotations"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import LayoutGenerationError
from ..geometry.layout import LayoutCell
from ..geometry.primitives import Rect

#: property key under which annotations are stored on a LayoutCell
ANNOTATIONS_KEY = "annotations"


@dataclass(frozen=True)
class GateRegion:
    """A poly gate rectangle: controls the CNTs it covers."""

    rect: Rect
    signal: str
    device: str  # "nfet" | "pfet"

    def __post_init__(self):
        if self.device not in ("nfet", "pfet"):
            raise LayoutGenerationError(f"Unknown device type {self.device!r}")


@dataclass(frozen=True)
class ContactRegion:
    """A source/drain metal contact rectangle tied to a net."""

    rect: Rect
    net: str


@dataclass(frozen=True)
class ActiveRegion:
    """A CNT-plane rectangle and the doping applied outside gate masks."""

    rect: Rect
    doping: str  # "p" for PUN regions, "n" for PDN regions

    def __post_init__(self):
        if self.doping not in ("n", "p"):
            raise LayoutGenerationError(f"Unknown doping {self.doping!r}")


@dataclass(frozen=True)
class EtchRegion:
    """A rectangle where CNTs are removed."""

    rect: Rect


@dataclass
class CellAnnotations:
    """Electrical meaning of a generated cell's shapes."""

    cell_name: str
    gates: List[GateRegion] = field(default_factory=list)
    contacts: List[ContactRegion] = field(default_factory=list)
    actives: List[ActiveRegion] = field(default_factory=list)
    etches: List[EtchRegion] = field(default_factory=list)
    #: nominal (intended) truth-table inputs in order
    inputs: Tuple[str, ...] = ()
    #: name of the output net
    output_net: str = "out"
    #: whether the construction relies on vias over the gate (vertical
    #: gating) for intra-cell routing — conventional 65 nm rules forbid it
    requires_vertical_gating: bool = False

    def nets(self) -> List[str]:
        """All contact nets in first-use order."""
        seen: List[str] = []
        for contact in self.contacts:
            if contact.net not in seen:
                seen.append(contact.net)
        return seen

    def signals(self) -> List[str]:
        """All gate signals in first-use order."""
        seen: List[str] = []
        for gate in self.gates:
            if gate.signal not in seen:
                seen.append(gate.signal)
        return seen

    def contacts_of(self, net: str) -> List[ContactRegion]:
        """All contact rectangles of a net."""
        return [contact for contact in self.contacts if contact.net == net]

    def merged_with(self, other: "CellAnnotations",
                    name: Optional[str] = None) -> "CellAnnotations":
        """Combine annotations of two sub-layouts placed in one cell."""
        merged = CellAnnotations(
            cell_name=name or self.cell_name,
            gates=self.gates + other.gates,
            contacts=self.contacts + other.contacts,
            actives=self.actives + other.actives,
            etches=self.etches + other.etches,
            inputs=tuple(dict.fromkeys(self.inputs + other.inputs)),
            output_net=self.output_net,
            requires_vertical_gating=(
                self.requires_vertical_gating or other.requires_vertical_gating
            ),
        )
        return merged

    def translated(self, dx: float, dy: float) -> "CellAnnotations":
        """Annotations shifted by ``(dx, dy)`` (used when sub-layouts are
        placed inside a larger cell)."""
        return CellAnnotations(
            cell_name=self.cell_name,
            gates=[GateRegion(g.rect.translated(dx, dy), g.signal, g.device) for g in self.gates],
            contacts=[ContactRegion(c.rect.translated(dx, dy), c.net) for c in self.contacts],
            actives=[ActiveRegion(a.rect.translated(dx, dy), a.doping) for a in self.actives],
            etches=[EtchRegion(e.rect.translated(dx, dy)) for e in self.etches],
            inputs=self.inputs,
            output_net=self.output_net,
            requires_vertical_gating=self.requires_vertical_gating,
        )

    def transformed(self, transform) -> "CellAnnotations":
        """Annotations mapped through a placement transform (rotation /
        mirror / translation), mirroring what happens to the geometry."""
        return CellAnnotations(
            cell_name=self.cell_name,
            gates=[GateRegion(transform.apply_rect(g.rect), g.signal, g.device)
                   for g in self.gates],
            contacts=[ContactRegion(transform.apply_rect(c.rect), c.net)
                      for c in self.contacts],
            actives=[ActiveRegion(transform.apply_rect(a.rect), a.doping)
                     for a in self.actives],
            etches=[EtchRegion(transform.apply_rect(e.rect)) for e in self.etches],
            inputs=self.inputs,
            output_net=self.output_net,
            requires_vertical_gating=self.requires_vertical_gating,
        )


def attach_annotations(cell: LayoutCell, annotations: CellAnnotations) -> None:
    """Store annotations on a cell."""
    cell.properties[ANNOTATIONS_KEY] = annotations


def get_annotations(cell: LayoutCell) -> CellAnnotations:
    """Retrieve the annotations of a generated cell."""
    annotations = cell.properties.get(ANNOTATIONS_KEY)
    if not isinstance(annotations, CellAnnotations):
        raise LayoutGenerationError(
            f"Cell {cell.name!r} has no CNFET annotations; was it produced by a "
            "repro.core generator?"
        )
    return annotations


@dataclass(frozen=True)
class NetworkLayoutResult:
    """The outcome of laying out one pull-up or pull-down network."""

    cell: LayoutCell
    annotations: CellAnnotations
    width: float            # horizontal extent in λ
    height: float           # vertical extent in λ
    active_area: float      # area of the CNT (active) rectangles in λ²
    contact_count: int
    gate_count: int
    etch_count: int

    @property
    def bbox_area(self) -> float:
        """Bounding-box area of the network layout in λ²."""
        return self.width * self.height
