"""Standard-cell assembly: PUN + PDN into complete cells (schemes 1 and 2).

Section IV standardises the compact layouts into library cells two ways:

* **Scheme 1** mimics CMOS rows: the PUN sits above the PDN, separated by
  the intra-cell routing gap.  For CNFETs that gap is limited by the input
  pin size (6 λ) instead of the 10 λ n-to-p diffusion spacing of CMOS.
* **Scheme 2** places the PUN *next to* the PDN, shrinking the cell height
  to the taller of the two columns; cells keep their natural height, which
  is what gives the full-adder of Case study 2 its extra area gain.

The same assembly code also builds cells from the baseline (etched-region)
and vulnerable network generators so the three techniques can be compared
and fed to the immunity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import LayoutGenerationError
from ..geometry.layout import LayoutCell
from ..geometry.primitives import Point, Rect
from ..geometry.transform import Orientation, Transform
from ..logic.network import GateNetworks
from ..tech.lambda_rules import CMOS_RULES, CNFET_RULES, DesignRules
from .compact import compact_network_layout
from .grid import baseline_network_layout, vulnerable_network_layout
from .sizing import CellSizing, size_gate
from .spec import (
    CellAnnotations,
    EtchRegion,
    NetworkLayoutResult,
    attach_annotations,
    get_annotations,
)

SCHEME_STACKED = 1   # PUN above PDN (CMOS-like)
SCHEME_SIDE_BY_SIDE = 2  # PUN next to PDN (novel compact scheme)


@dataclass
class StandardCell:
    """A fully assembled standard cell."""

    name: str
    gate: GateNetworks
    cell: LayoutCell
    scheme: int
    technique: str
    width: float
    height: float
    sizing: CellSizing
    pun: NetworkLayoutResult
    pdn: NetworkLayoutResult

    @property
    def area(self) -> float:
        """Cell area in λ² (bounding box of the abutment boundary)."""
        return self.width * self.height

    @property
    def active_area(self) -> float:
        """Total CNT-plane area in λ²."""
        return self.pun.active_area + self.pdn.active_area

    def annotations(self) -> CellAnnotations:
        """Merged electrical annotations of the assembled cell."""
        return get_annotations(self.cell)


_NETWORK_GENERATORS: Dict[str, Callable] = {}


def _compact_networks(gate: GateNetworks, unit_width: float,
                      rules: DesignRules) -> Tuple[NetworkLayoutResult, NetworkLayoutResult]:
    pun = compact_network_layout(
        gate.pun, gate.pun_tree, unit_width, rules, cell_name=f"{gate.name}_pun_compact"
    )
    pdn = compact_network_layout(
        gate.pdn, gate.pdn_tree, unit_width, rules, cell_name=f"{gate.name}_pdn_compact"
    )
    return pun, pdn


def _baseline_networks(gate: GateNetworks, unit_width: float,
                       rules: DesignRules) -> Tuple[NetworkLayoutResult, NetworkLayoutResult]:
    return (
        baseline_network_layout(gate, "pun", unit_width, rules),
        baseline_network_layout(gate, "pdn", unit_width, rules),
    )


def _vulnerable_networks(gate: GateNetworks, unit_width: float,
                         rules: DesignRules) -> Tuple[NetworkLayoutResult, NetworkLayoutResult]:
    return (
        vulnerable_network_layout(gate, "pun", unit_width, rules),
        vulnerable_network_layout(gate, "pdn", unit_width, rules),
    )


_NETWORK_GENERATORS.update(
    compact=_compact_networks,
    baseline=_baseline_networks,
    vulnerable=_vulnerable_networks,
)


def assemble_cell(
    gate: GateNetworks,
    technique: str = "compact",
    scheme: int = SCHEME_STACKED,
    unit_width: float = 4.0,
    drive_strength: float = 1.0,
    rules: DesignRules = CNFET_RULES,
    name: Optional[str] = None,
) -> StandardCell:
    """Assemble a complete standard cell.

    Parameters
    ----------
    technique:
        ``"compact"`` (the paper's new layouts), ``"baseline"`` (etched
        regions, [6]) or ``"vulnerable"`` (no protection).
    scheme:
        1 = PUN stacked above the PDN, 2 = PUN beside the PDN.
    unit_width:
        Width in λ of the unit transistor before stack sizing.
    drive_strength:
        Multiplier applied to every device width (e.g. 4.0 for a 4X cell).
    """
    if scheme not in (SCHEME_STACKED, SCHEME_SIDE_BY_SIDE):
        raise LayoutGenerationError(f"Unknown scheme {scheme!r} (use 1 or 2)")
    try:
        generator = _NETWORK_GENERATORS[technique]
    except KeyError:
        raise LayoutGenerationError(
            f"Unknown technique {technique!r}; available: {sorted(_NETWORK_GENERATORS)}"
        ) from None

    scaled_width = unit_width * drive_strength
    sizing = size_gate(gate, unit_width, drive_strength)
    pun, pdn = generator(gate, scaled_width, rules)

    cell_name = name or _default_cell_name(gate, technique, scheme, drive_strength)
    cell = LayoutCell(cell_name)

    # The network generators draw vertical CNT columns.  Inside a standard
    # cell the CNT (current-flow) direction runs horizontally — exactly like
    # the diffusion of a CMOS cell (Figure 6) — so each network is rotated
    # by 90° before placement: its column height becomes the cell length and
    # its transistor width becomes a slice of the cell height.
    if scheme == SCHEME_STACKED:
        separation = rules.pun_pdn_separation
        pdn_offset = (0.0, 0.0)
        pun_offset = (0.0, pdn.width + separation)
        width = max(pun.height, pdn.height)
        height = pdn.width + separation + pun.width
    else:
        # Scheme 2: the PUN strip continues the PDN strip horizontally; the
        # gap leaves room for the poly overhang of both strips plus the
        # minimum poly spacing so unrelated gates cannot touch across it.
        separation = rules.gate_gate_spacing + 2.0 * rules.active_contact_overhang
        pdn_offset = (0.0, 0.0)
        pun_offset = (pdn.height + separation, 0.0)
        width = pdn.height + separation + pun.height
        height = max(pun.width, pdn.width)

    annotations = _copy_network_into(cell, pdn, pdn_offset).merged_with(
        _copy_network_into(cell, pun, pun_offset), name=cell_name
    )
    annotations.inputs = gate.inputs
    annotations.output_net = "out"

    # The inter-network gap is etched (it fits the cell-boundary etching
    # step the paper mentions): a mispositioned CNT wandering from one
    # network strip into the other is cut before it can short a PDN contact
    # to a PUN contact.  The strip is inset by the poly-endcap overhang so
    # it never overlaps the gates.
    overhang = rules.active_contact_overhang
    if separation - 2.0 * overhang >= rules.etch_width - 1e-9:
        if scheme == SCHEME_STACKED:
            gap_etch = Rect(0.0, pdn.width + overhang, width,
                            pdn.width + separation - overhang)
        else:
            gap_etch = Rect(pdn.height + overhang, 0.0,
                            pdn.height + separation - overhang, height)
        cell.add_rect("cnt_etch", gap_etch)
        annotations.etches.append(EtchRegion(gap_etch))

    attach_annotations(cell, annotations)

    boundary = Rect(0.0, 0.0, width, height)
    cell.add_rect("boundary", boundary)
    _add_pins(cell, gate, boundary, rules)

    cell.properties.update(
        technique=technique,
        scheme=scheme,
        drive_strength=drive_strength,
        unit_width=unit_width,
        gate_name=gate.name,
    )

    return StandardCell(
        name=cell_name,
        gate=gate,
        cell=cell,
        scheme=scheme,
        technique=technique,
        width=width,
        height=height,
        sizing=sizing,
        pun=pun,
        pdn=pdn,
    )


def _default_cell_name(gate: GateNetworks, technique: str, scheme: int,
                       drive_strength: float) -> str:
    drive = f"{drive_strength:g}X"
    return f"{gate.name}_{drive}_{technique}_s{scheme}"


def _copy_network_into(cell: LayoutCell, network: NetworkLayoutResult,
                       offset: Tuple[float, float]) -> CellAnnotations:
    """Rotate a vertical network column into the horizontal cell orientation
    and copy its shapes/annotations at ``offset``.

    The rotation maps column coordinates ``(x, y)`` (x across the transistor
    width, y along the CNTs) to cell coordinates ``(y, x)`` so the CNT
    direction runs along the cell length; it is a mirror-plus-rotation,
    which keeps all rectangles axis-aligned.
    """
    dx, dy = offset
    transform = Transform(dx=dx, dy=dy, orientation=Orientation.MXR90)
    for layer, rect in network.cell.all_shapes():
        cell.add_rect(layer, transform.apply_rect(rect))
    return network.annotations.transformed(transform)


def _add_pins(cell: LayoutCell, gate: GateNetworks, boundary: Rect,
              rules: DesignRules) -> None:
    """Attach input/output/power pins along the cell boundary."""
    pin_side = min(rules.pin_size, max(boundary.width, rules.min_metal_width))
    pitch = boundary.width / (len(gate.inputs) + 1)
    for index, signal in enumerate(gate.inputs, start=1):
        center_x = boundary.x1 + index * pitch
        rect = Rect.centered(
            Point(center_x, boundary.y2 - pin_side / 2.0), pin_side / 2.0, pin_side / 2.0
        )
        cell.add_pin(signal, rect, "pin", direction="input")
    out_rect = Rect.centered(
        Point(boundary.x2 - pin_side / 2.0, boundary.center.y),
        pin_side / 2.0,
        pin_side / 2.0,
    )
    cell.add_pin("out", out_rect, "pin", direction="output")


# ---------------------------------------------------------------------------
# Reference CMOS cell area model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CMOSCellArea:
    """Analytical area of the equivalent CMOS standard cell (in λ and λ²)."""

    name: str
    width: float
    height: float
    nmos_width: float
    pmos_width: float

    @property
    def area(self) -> float:
        return self.width * self.height


def cmos_cell_area(
    gate: GateNetworks,
    unit_width: float = 4.0,
    drive_strength: float = 1.0,
    rules: DesignRules = CMOS_RULES,
    pmos_ratio: float = 1.4,
) -> CMOSCellArea:
    """Area of the corresponding CMOS cell at the 65 nm node.

    The CMOS layout follows the conventional diffusion-shared style: cell
    length is one contact/gate alternation per input, and cell height is
    the n-diffusion height plus the p-diffusion height plus the 10 λ n-to-p
    separation (Section V).  The pMOS network is ``pmos_ratio`` wider to
    compensate for hole mobility.
    """
    sizing = size_gate(gate, unit_width, drive_strength)
    nmos_width = sizing.max_pdn_width
    pmos_width = sizing.max_pun_width * pmos_ratio
    num_inputs = len(gate.inputs)
    length = rules.linear_chain_length(num_inputs + 1, num_inputs)
    height = nmos_width + rules.pun_pdn_separation + pmos_width
    return CMOSCellArea(
        name=f"CMOS_{gate.name}_{drive_strength:g}X",
        width=length,
        height=height,
        nmos_width=nmos_width,
        pmos_width=pmos_width,
    )
