"""Device models: CNT physics, CNFET compact model, reference 65 nm MOSFET."""

from .calibration import (
    CMOS_NMOS_WIDTH_NM,
    CMOS_PMOS_WIDTH_NM,
    FO4_GATE_WIDTH_NM,
    PaperAnchors,
    calibrated_cnfet_parameters,
    calibrated_nmos_parameters,
    calibrated_pmos_parameters,
    fit_report,
    paper_anchors,
)
from .cnfet import CNFET, CNFETParameters
from .cnt import (
    Chirality,
    DEFAULT_CHIRALITY,
    ballistic_on_current,
    oxide_capacitance_per_length,
    quantum_capacitance_per_length,
)
from .mosfet import MOSFET, MOSFETParameters, NMOS_65, PMOS_65
from .powerlaw import alpha_power

__all__ = [
    "CMOS_NMOS_WIDTH_NM",
    "CMOS_PMOS_WIDTH_NM",
    "FO4_GATE_WIDTH_NM",
    "PaperAnchors",
    "calibrated_cnfet_parameters",
    "calibrated_nmos_parameters",
    "calibrated_pmos_parameters",
    "fit_report",
    "paper_anchors",
    "CNFET",
    "CNFETParameters",
    "Chirality",
    "DEFAULT_CHIRALITY",
    "ballistic_on_current",
    "oxide_capacitance_per_length",
    "quantum_capacitance_per_length",
    "MOSFET",
    "MOSFETParameters",
    "NMOS_65",
    "PMOS_65",
    "alpha_power",
]
