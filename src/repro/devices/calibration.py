"""Calibrated device parameters and the paper's anchor values.

The paper does not publish its HSPICE decks, so the free constants of the
CNFET compact model (per-tube capacitance, fixed parasitics, screening
strength) are calibrated against the anchor points it *does* report for the
FO4 inverter experiment (Case study 1 / Figure 7):

* 1 CNT per device: 2.75× faster, 6.3× lower switching energy per cycle
  than the 65 nm CMOS inverter at 1 V;
* at the optimal pitch of 5 nm: 4.2× faster, 2× lower energy per cycle;
* the optimal-pitch plateau spans roughly 4.5-5.5 nm (≤1 % delay change).

``fit_report()`` re-evaluates the calibrated model against these anchors so
tests and benchmarks can verify the calibration instead of trusting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .cnfet import CNFETParameters
from .mosfet import MOSFETParameters, NMOS_65, PMOS_65

#: Fixed CNFET gate width used for the Figure 7 sweep (the paper keeps the
#: gate width constant while increasing the number of tubes; the value below
#: is chosen together with the screening calibration so the optimum lands at
#: a 5 nm pitch).
FO4_GATE_WIDTH_NM = 32.5

#: Reference CMOS inverter sizes at 65 nm (minimum-size nMOS, 1.4× pMOS).
CMOS_NMOS_WIDTH_NM = 200.0
CMOS_PMOS_WIDTH_NM = 280.0


@dataclass(frozen=True)
class PaperAnchors:
    """Numbers reported by the paper, used by benchmarks for comparison."""

    fo4_delay_gain_single_cnt: float = 2.75
    fo4_energy_gain_single_cnt: float = 6.3
    fo4_delay_gain_optimal: float = 4.2
    fo4_energy_gain_optimal: float = 2.0
    optimal_pitch_nm: float = 5.0
    optimal_pitch_range_nm: tuple = (4.5, 5.5)
    optimal_pitch_delay_variation: float = 0.01
    inverter_area_gain: float = 1.4
    fulladder_delay_gain: float = 3.5
    fulladder_energy_gain: float = 1.5
    fulladder_area_gain_scheme1: float = 1.4
    fulladder_area_gain_scheme2: float = 1.6
    edp_gain_headline: float = 10.0
    edap_gain_headline: float = 12.0
    nand3_area_saving_4lambda: float = 0.1667


def paper_anchors() -> PaperAnchors:
    """The paper's reported values (see :class:`PaperAnchors`)."""
    return PaperAnchors()


def calibrated_cnfet_parameters() -> CNFETParameters:
    """The CNFET parameter set calibrated against the Figure 7 anchors.

    Provenance of each value:

    * ``on_current_per_tube`` — pinned by the 2.75×/6.3× single-tube
      anchors given the CMOS reference; lands at ~28 µA, consistent with
      the near-ballistic on-current of a single tube at 1 V (~25-30 µA).
    * ``gate_cap_per_tube`` / ``fixed_*`` — pinned by the 6.3× (single
      tube) and 2× (optimal pitch) energy anchors.
    * ``screening_pitch_nm`` / ``screening_exponent`` /
      ``current_screening_power`` — pinned by the 4.2× optimal gain and by
      the optimum falling at a 5 nm pitch.
    """
    return CNFETParameters(
        threshold_voltage=0.29,
        on_current_per_tube=27.94e-6,
        gate_cap_per_tube=21.53e-18,
        drain_cap_per_tube=3.13e-18,
        fixed_gate_cap_per_um=0.408e-15,
        fixed_drain_cap_per_um=0.544e-15,
        screening_pitch_nm=5.15,
        screening_exponent=2.0,
        current_screening_power=1.0,
        alpha=1.2,
        series_resistance_per_tube=12.0e3,
        nominal_vdd=1.0,
    )


def calibrated_nmos_parameters() -> MOSFETParameters:
    """Reference 65 nm nMOS parameters."""
    return NMOS_65


def calibrated_pmos_parameters() -> MOSFETParameters:
    """Reference 65 nm pMOS parameters."""
    return PMOS_65


def fit_report(num_tubes_max: int = 40) -> Dict[str, float]:
    """Evaluate the calibrated model against the paper anchors.

    Returns measured values for the single-tube and optimal-pitch gains and
    the located optimal pitch, so callers can report paper-vs-measured.
    """
    from ..circuit.fo4 import compare_fo4
    from ..circuit.inverter import cmos_inverter, cnfet_inverter

    params = calibrated_cnfet_parameters()
    reference = cmos_inverter(CMOS_NMOS_WIDTH_NM, CMOS_PMOS_WIDTH_NM)

    single = compare_fo4(
        cnfet_inverter(1, FO4_GATE_WIDTH_NM, parameters=params), reference
    )

    best = None
    best_tubes = 1
    for tubes in range(1, num_tubes_max + 1):
        comparison = compare_fo4(
            cnfet_inverter(tubes, FO4_GATE_WIDTH_NM, parameters=params), reference
        )
        if best is None or comparison.delay_gain > best.delay_gain:
            best = comparison
            best_tubes = tubes

    pitch_at_best = FO4_GATE_WIDTH_NM / best_tubes
    return {
        "delay_gain_single_cnt": single.delay_gain,
        "energy_gain_single_cnt": single.energy_gain,
        "delay_gain_optimal": best.delay_gain,
        "energy_gain_optimal": best.energy_gain,
        "optimal_pitch_nm": pitch_at_best,
        "optimal_num_tubes": float(best_tubes),
        "edp_gain_optimal": best.edp_gain,
        "cmos_fo4_delay_ps": reference and single.cmos.delay_s * 1e12,
    }
