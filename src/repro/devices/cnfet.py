"""Circuit-compatible CNFET compact model.

The model follows the structure of the Stanford CNFET model the paper uses
as its electrical foundation [14, 15, 20]: a MOSFET-like top-gated device
whose channel is an array of parallel semiconducting CNTs.  Per device it
captures

* the ballistic-limited on-current per tube,
* the gate capacitance per tube (electrostatic in series with the quantum
  capacitance),
* inter-CNT **charge screening**: when tubes are packed at a small pitch the
  gate-to-channel coupling per tube drops, which reduces both the gate
  capacitance and the drive current per tube (Section V / Figure 7 of the
  paper — the origin of the optimal pitch), and
* fixed per-device parasitics (contact and fringe capacitance) that do not
  scale with the number of tubes.

The I-V relation is an alpha-power-law MOSFET-like characteristic scaled so
that the full-drive current equals ``num_tubes × I_on(pitch)``; this is what
the transient simulator integrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import DeviceModelError
from .cnt import Chirality, DEFAULT_CHIRALITY
from .powerlaw import alpha_power


@dataclass(frozen=True)
class CNFETParameters:
    """Calibrated parameters of the CNFET compact model.

    All capacitances are in farads, currents in amperes, lengths in
    nanometres.  ``repro.devices.calibration`` documents how each value was
    pinned to the paper's anchor points.
    """

    #: tube chirality (sets diameter / band gap / threshold)
    chirality: Chirality = DEFAULT_CHIRALITY
    #: threshold voltage magnitude [V] (same for n and p devices)
    threshold_voltage: float = 0.3
    #: unscreened (isolated-tube) on-current per tube at nominal Vdd [A]
    on_current_per_tube: float = 20.1e-6
    #: unscreened gate capacitance per tube (includes Cox in series with Cq) [F]
    gate_cap_per_tube: float = 25.0e-18
    #: drain/source parasitic capacitance per tube [F]
    drain_cap_per_tube: float = 0.6e-18
    #: fixed gate capacitance per device per µm of gate width (fringe, poly) [F/um]
    fixed_gate_cap_per_um: float = 0.25e-15
    #: fixed drain capacitance per device per µm of gate width (contacts) [F/um]
    fixed_drain_cap_per_um: float = 0.40e-15
    #: pitch at which screening becomes significant [nm]
    screening_pitch_nm: float = 10.0
    #: exponent of the screening roll-off (larger = sharper)
    screening_exponent: float = 2.0
    #: drive current degrades as screening**current_screening_power
    current_screening_power: float = 1.0
    #: alpha-power-law saturation index of the I-V characteristic
    alpha: float = 1.2
    #: source/drain series resistance per tube [ohm]
    series_resistance_per_tube: float = 12.0e3
    #: nominal supply the on-current is quoted at [V]
    nominal_vdd: float = 1.0

    def __post_init__(self):
        for name in (
            "threshold_voltage",
            "on_current_per_tube",
            "gate_cap_per_tube",
            "fixed_gate_cap_per_um",
            "screening_pitch_nm",
            "screening_exponent",
            "current_screening_power",
            "alpha",
            "nominal_vdd",
        ):
            if getattr(self, name) <= 0:
                raise DeviceModelError(f"CNFET parameter {name!r} must be positive")
        if self.drain_cap_per_tube < 0 or self.fixed_drain_cap_per_um < 0:
            raise DeviceModelError("CNFET capacitances must be non-negative")
        if self.threshold_voltage >= self.nominal_vdd:
            raise DeviceModelError(
                "threshold_voltage must be below the nominal supply "
                f"({self.threshold_voltage} >= {self.nominal_vdd})"
            )

    def screening_factor(self, pitch_nm: float) -> float:
        """Gate-coupling screening factor in (0, 1] as a function of the
        inter-CNT pitch.

        ``tanh((pitch/p0)^m)`` saturates to 1 for isolated tubes and rolls
        off super-linearly for dense arrays, which is what produces the
        optimal pitch of Figure 7.
        """
        if pitch_nm <= 0:
            raise DeviceModelError(f"pitch must be positive, got {pitch_nm}")
        ratio = (pitch_nm / self.screening_pitch_nm) ** self.screening_exponent
        return math.tanh(ratio)


class CNFET:
    """A single CNFET instance (one finger of a gate).

    Parameters
    ----------
    polarity:
        ``"n"`` or ``"p"``.  The paper's devices have symmetric n/p drive
        (Section V: "nCNFET = pCNFET due to similar electrical
        characteristics"), so polarity only selects the conduction polarity.
    num_tubes:
        Number of CNTs under the gate.
    gate_width_nm:
        Drawn gate width; together with ``num_tubes`` it sets the pitch
        unless ``pitch_nm`` is given explicitly.
    pitch_nm:
        Inter-CNT pitch override.  When omitted the tubes are spread evenly
        across the gate width (``width / num_tubes``).
    """

    def __init__(
        self,
        polarity: str,
        num_tubes: int = 1,
        gate_width_nm: float = 65.0,
        pitch_nm: Optional[float] = None,
        parameters: Optional[CNFETParameters] = None,
    ):
        if polarity not in ("n", "p"):
            raise DeviceModelError(f"polarity must be 'n' or 'p', got {polarity!r}")
        if num_tubes < 1:
            raise DeviceModelError(f"num_tubes must be >= 1, got {num_tubes}")
        if gate_width_nm <= 0:
            raise DeviceModelError("gate_width_nm must be positive")
        self.polarity = polarity
        self.num_tubes = int(num_tubes)
        self.gate_width_nm = float(gate_width_nm)
        self.parameters = parameters or CNFETParameters()
        if pitch_nm is None:
            pitch_nm = self.gate_width_nm / self.num_tubes
        if pitch_nm <= 0:
            raise DeviceModelError("pitch_nm must be positive")
        self.pitch_nm = float(pitch_nm)

    # -- derived electrical quantities -----------------------------------------

    @property
    def screening(self) -> float:
        """Screening factor at this device's pitch (1.0 for a single tube)."""
        if self.num_tubes == 1:
            return 1.0
        return self.parameters.screening_factor(self.pitch_nm)

    def on_current(self, vdd: Optional[float] = None) -> float:
        """Full-drive (``|Vgs| = |Vds| = Vdd``) current [A]."""
        params = self.parameters
        vdd = params.nominal_vdd if vdd is None else vdd
        per_tube = params.on_current_per_tube
        # Scale with overdrive so supply sweeps behave sensibly.
        overdrive = max(0.0, vdd - params.threshold_voltage)
        nominal_overdrive = params.nominal_vdd - params.threshold_voltage
        per_tube = per_tube * (overdrive / nominal_overdrive) ** params.alpha
        screen = self.screening ** params.current_screening_power
        return self.num_tubes * per_tube * screen

    def gate_capacitance(self) -> float:
        """Total gate capacitance of the device [F]."""
        params = self.parameters
        per_tube = params.gate_cap_per_tube * self.screening
        fixed = params.fixed_gate_cap_per_um * (self.gate_width_nm / 1000.0)
        return self.num_tubes * per_tube + fixed

    def drain_capacitance(self) -> float:
        """Drain-side parasitic capacitance of the device [F]."""
        params = self.parameters
        fixed = params.fixed_drain_cap_per_um * (self.gate_width_nm / 1000.0)
        return self.num_tubes * params.drain_cap_per_tube + fixed

    # -- I-V characteristic ------------------------------------------------------

    def ids(self, vgs: float, vds: float) -> float:
        """Drain current [A] for the given terminal voltages.

        For a p-type device pass the physical (negative) ``vgs``/``vds``;
        the returned current is the magnitude flowing source→drain.  The
        characteristic is an alpha-power law with a linear/saturation
        cross-over at ``Vdsat = overdrive``; adequate for delay/energy
        estimation which is what the paper's comparisons need.

        The exponentiation goes through the shared
        :func:`~repro.devices.powerlaw.alpha_power` kernel so the scalar
        transient engine stays bit-identical to the vectorized batch
        engine (see :mod:`repro.circuit.simulator`).
        """
        params = self.parameters
        if self.polarity == "p":
            vgs, vds = -vgs, -vds
        overdrive = vgs - params.threshold_voltage
        if overdrive <= 0 or vds <= 0:
            return 0.0
        nominal_overdrive = params.nominal_vdd - params.threshold_voltage
        saturation_current = (
            self.num_tubes
            * params.on_current_per_tube
            * (self.screening ** params.current_screening_power)
            * alpha_power(overdrive / nominal_overdrive, params.alpha)
        )
        vdsat = overdrive
        if vds >= vdsat:
            return saturation_current
        # Smooth quadratic transition through the triode region.
        ratio = vds / vdsat
        return saturation_current * ratio * (2.0 - ratio)

    def effective_resistance(self, vdd: Optional[float] = None) -> float:
        """Switching-averaged channel resistance ``R ≈ Vdd / I_on`` plus the
        source/drain series resistance, used by the RC delay estimators."""
        params = self.parameters
        vdd = params.nominal_vdd if vdd is None else vdd
        on_current = self.on_current(vdd)
        if on_current <= 0:
            raise DeviceModelError("Device has zero on-current at the requested supply")
        series = params.series_resistance_per_tube / self.num_tubes
        return vdd / on_current + series

    def scaled(self, factor: float) -> "CNFET":
        """A device ``factor`` times wider (more tubes at the same pitch)."""
        if factor <= 0:
            raise DeviceModelError("Scale factor must be positive")
        new_tubes = max(1, int(round(self.num_tubes * factor)))
        return CNFET(
            polarity=self.polarity,
            num_tubes=new_tubes,
            gate_width_nm=self.gate_width_nm * factor,
            pitch_nm=self.pitch_nm,
            parameters=self.parameters,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CNFET({self.polarity}, tubes={self.num_tubes}, "
            f"pitch={self.pitch_nm:.2f}nm, W={self.gate_width_nm:.0f}nm)"
        )
