"""Carbon-nanotube physics helpers.

The CNFET compact model needs a handful of single-tube quantities: the
diameter and band gap that follow from the chirality ``(n, m)``, whether the
tube is semiconducting or metallic, an estimate of the threshold voltage and
the quantum capacitance limit.  The formulas are the standard tight-binding
expressions used by the Stanford CNFET model family [Deng & Wong, TED 2007].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DeviceModelError
from ..units import CC_BOND_LENGTH_NM, ELECTRON_CHARGE, GRAPHENE_HOPPING_EV


@dataclass(frozen=True)
class Chirality:
    """Chiral indices ``(n, m)`` of a carbon nanotube."""

    n: int
    m: int

    def __post_init__(self):
        if self.n < 0 or self.m < 0 or (self.n == 0 and self.m == 0):
            raise DeviceModelError(f"Invalid chirality ({self.n}, {self.m})")
        if self.m > self.n:
            raise DeviceModelError(
                f"Chirality convention requires n >= m, got ({self.n}, {self.m})"
            )

    @property
    def is_metallic(self) -> bool:
        """A tube is metallic when ``(n - m) mod 3 == 0``."""
        return (self.n - self.m) % 3 == 0

    @property
    def is_semiconducting(self) -> bool:
        return not self.is_metallic

    def diameter_nm(self) -> float:
        """Tube diameter ``d = a·sqrt(n² + nm + m²)/π`` with the graphene
        lattice constant ``a = sqrt(3)·a_cc``."""
        lattice_constant = math.sqrt(3.0) * CC_BOND_LENGTH_NM
        return lattice_constant * math.sqrt(
            self.n**2 + self.n * self.m + self.m**2
        ) / math.pi

    def band_gap_ev(self) -> float:
        """Band gap of a semiconducting tube: ``Eg ≈ 2·a_cc·t / d`` (0 for
        metallic tubes)."""
        if self.is_metallic:
            return 0.0
        return 2.0 * CC_BOND_LENGTH_NM * GRAPHENE_HOPPING_EV / self.diameter_nm()

    def threshold_voltage(self) -> float:
        """First-order threshold estimate ``Vt ≈ Eg / (2q)`` in volts."""
        return self.band_gap_ev() / 2.0


#: The (19, 0) zig-zag tube used by the Stanford model's default deck —
#: diameter ~1.49 nm, band gap ~0.57 eV, threshold ~0.29 V.
DEFAULT_CHIRALITY = Chirality(19, 0)


def quantum_capacitance_per_length() -> float:
    """Quantum capacitance of a 1-D CNT channel [F/m].

    The flat-band value ``Cq = 8 q² / (h v_F)`` (four conducting modes, two
    spins each) with the Fermi velocity of graphene (~8×10⁵ m/s) evaluates
    to roughly 4×10⁻¹⁰ F/m — the commonly quoted ~400 aF/µm that caps the
    achievable gate capacitance per tube.
    """
    fermi_velocity = 8.0e5  # m/s
    planck = 6.62607015e-34
    return 8.0 * ELECTRON_CHARGE**2 / (planck * fermi_velocity)


def oxide_capacitance_per_length(
    dielectric_constant: float, oxide_thickness_nm: float, diameter_nm: float
) -> float:
    """Electrostatic gate-to-tube capacitance per unit length [F/m] of a
    planar gate over a tube: ``Cox = 2πε / acosh((t + d/2)/(d/2))``.

    This is the isolated-tube (no screening) value; array screening is
    applied separately by the CNFET model.
    """
    if oxide_thickness_nm <= 0 or diameter_nm <= 0:
        raise DeviceModelError("Oxide thickness and diameter must be positive")
    epsilon = dielectric_constant * 8.8541878128e-12
    radius = diameter_nm / 2.0
    ratio = (oxide_thickness_nm + radius) / radius
    return 2.0 * math.pi * epsilon / math.acosh(ratio)


def ballistic_on_current(vdd: float, threshold_voltage: float,
                         transmission: float = 0.9,
                         saturation_voltage: float = 0.16) -> float:
    """First-order ballistic on-current of one semiconducting CNT [A].

    Four conducting modes give a channel conductance of ``4q²/h``
    (~155 µS); the drive saturates once carriers reach the optical-phonon
    emission energy, which caps the effective drain bias near
    ``saturation_voltage`` (~0.16 V).  With a transmission around 0.9 this
    lands at the widely quoted 20-25 µA per tube at 1 V.
    """
    if vdd <= 0:
        raise DeviceModelError("vdd must be positive")
    overdrive = max(0.0, vdd - threshold_voltage)
    conductance = 4.0 * ELECTRON_CHARGE**2 / 6.62607015e-34
    return transmission * conductance * min(overdrive, saturation_voltage)
