"""Reference 65 nm bulk-MOSFET model.

The paper benchmarks its CNFET platform against an industrial 65 nm CMOS
library.  That library is proprietary, so this module provides an
alpha-power-law MOSFET whose headline figures (FO4 delay around 25 ps at
1 V, ~1 fF/µm gate capacitance, p/n drive ratio requiring a 1.4× wider
pMOS) match what is publicly known about the node.  All CNFET-vs-CMOS
results in the paper are ratios, so a representative CMOS calibration is
what matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import DeviceModelError
from .powerlaw import alpha_power


@dataclass(frozen=True)
class MOSFETParameters:
    """Calibrated parameters of the 65 nm MOSFET model (per polarity)."""

    #: threshold voltage magnitude [V]
    threshold_voltage: float = 0.35
    #: effective switching drive current per µm of width at nominal Vdd [A/um]
    saturation_current_per_um: float = 320.0e-6
    #: gate capacitance per µm of width [F/um]
    gate_cap_per_um: float = 0.9e-15
    #: drain junction + overlap capacitance per µm of width [F/um]
    drain_cap_per_um: float = 0.6e-15
    #: alpha-power-law saturation index (velocity-saturated short channel)
    alpha: float = 1.25
    #: nominal supply [V]
    nominal_vdd: float = 1.0

    def __post_init__(self):
        for name in (
            "threshold_voltage",
            "saturation_current_per_um",
            "gate_cap_per_um",
            "drain_cap_per_um",
            "alpha",
            "nominal_vdd",
        ):
            if getattr(self, name) <= 0:
                raise DeviceModelError(f"MOSFET parameter {name!r} must be positive")
        if self.threshold_voltage >= self.nominal_vdd:
            raise DeviceModelError("threshold_voltage must be below the nominal supply")


#: Default n-channel parameters.
NMOS_65 = MOSFETParameters()

#: Default p-channel parameters: holes are slower, hence the classic 1.4×
#: up-sizing of the pMOS the paper quotes for the CMOS inverter.
PMOS_65 = MOSFETParameters(saturation_current_per_um=320.0e-6 / 1.4)


class MOSFET:
    """A single 65 nm MOSFET of a given polarity and drawn width."""

    def __init__(
        self,
        polarity: str,
        width_nm: float,
        parameters: Optional[MOSFETParameters] = None,
    ):
        if polarity not in ("n", "p"):
            raise DeviceModelError(f"polarity must be 'n' or 'p', got {polarity!r}")
        if width_nm <= 0:
            raise DeviceModelError("width_nm must be positive")
        self.polarity = polarity
        self.width_nm = float(width_nm)
        if parameters is None:
            parameters = NMOS_65 if polarity == "n" else PMOS_65
        self.parameters = parameters

    @property
    def width_um(self) -> float:
        return self.width_nm / 1000.0

    def on_current(self, vdd: Optional[float] = None) -> float:
        """Full-drive current [A]."""
        params = self.parameters
        vdd = params.nominal_vdd if vdd is None else vdd
        overdrive = max(0.0, vdd - params.threshold_voltage)
        nominal_overdrive = params.nominal_vdd - params.threshold_voltage
        scale = (overdrive / nominal_overdrive) ** params.alpha if overdrive > 0 else 0.0
        return params.saturation_current_per_um * self.width_um * scale

    def gate_capacitance(self) -> float:
        """Gate capacitance [F]."""
        return self.parameters.gate_cap_per_um * self.width_um

    def drain_capacitance(self) -> float:
        """Drain parasitic capacitance [F]."""
        return self.parameters.drain_cap_per_um * self.width_um

    def ids(self, vgs: float, vds: float) -> float:
        """Alpha-power-law drain current magnitude [A] (see
        :meth:`repro.devices.cnfet.CNFET.ids` for conventions)."""
        params = self.parameters
        if self.polarity == "p":
            vgs, vds = -vgs, -vds
        overdrive = vgs - params.threshold_voltage
        if overdrive <= 0 or vds <= 0:
            return 0.0
        nominal_overdrive = params.nominal_vdd - params.threshold_voltage
        saturation_current = (
            params.saturation_current_per_um
            * self.width_um
            * alpha_power(overdrive / nominal_overdrive, params.alpha)
        )
        vdsat = overdrive
        if vds >= vdsat:
            return saturation_current
        ratio = vds / vdsat
        return saturation_current * ratio * (2.0 - ratio)

    def effective_resistance(self, vdd: Optional[float] = None) -> float:
        """``R ≈ Vdd / I_on`` used by RC delay estimators."""
        params = self.parameters
        vdd = params.nominal_vdd if vdd is None else vdd
        current = self.on_current(vdd)
        if current <= 0:
            raise DeviceModelError("Device has zero on-current at the requested supply")
        return vdd / current

    def scaled(self, factor: float) -> "MOSFET":
        """A device ``factor`` times wider."""
        if factor <= 0:
            raise DeviceModelError("Scale factor must be positive")
        return MOSFET(self.polarity, self.width_nm * factor, self.parameters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MOSFET({self.polarity}, W={self.width_nm:.0f}nm)"
