"""The shared alpha-power kernel of the compact device models.

Both compact models (:class:`~repro.devices.cnfet.CNFET` and
:class:`~repro.devices.mosfet.MOSFET`) and both transient engines (the
scalar per-substep loop and the vectorized batch integrator in
:mod:`repro.circuit.simulator`) evaluate the same alpha-power-law
saturation current ``I_sat ∝ (overdrive / nominal_overdrive) ** alpha``.

The exponentiation must go through **one** kernel: NumPy's array ``power``
ufunc is allowed to dispatch to a SIMD implementation whose results differ
from CPython's ``float.__pow__`` (libm ``pow``) by one ulp on a few percent
of inputs.  That one-ulp difference is invisible electrically but breaks
the bit-identity contract between the loop and batch transient engines
(``docs/architecture.md``), so scalar callers route their exponentiation
through the same ufunc loop the batch engine uses.  ``np.power`` is a pure
element function — its result for a value does not depend on array length,
position, stride or shape — which is what makes the shared kernel well
defined.

>>> from repro.devices.powerlaw import alpha_power
>>> alpha_power(1.0, 1.2)
1.0
>>> abs(alpha_power(0.5, 1.2) - 0.5 ** 1.2) <= 2e-16
True
"""

from __future__ import annotations

import numpy as np


def alpha_power(base: float, exponent: float) -> float:
    """``base ** exponent`` evaluated by NumPy's array-power ufunc loop.

    ``base`` must be positive (the device models only exponentiate positive
    overdrive ratios); the result is a plain Python float.
    """
    return float(np.power(base, exponent))
