"""Exception hierarchy for the CNFET layout reproduction library.

All library-specific exceptions derive from :class:`ReproError` so that
callers can catch a single base class.  Each subsystem raises the most
specific subclass that applies; messages carry enough context (cell name,
rule name, node name, ...) to be actionable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class UnitError(ReproError):
    """Raised when a quantity is used with an incompatible or unknown unit."""


class TechnologyError(ReproError):
    """Raised for invalid or inconsistent technology definitions."""


class DesignRuleError(TechnologyError):
    """Raised when a design-rule set is malformed (not for DRC violations)."""


class DRCViolationError(ReproError):
    """Raised when a layout fails design-rule checking and the caller asked
    for violations to be fatal."""

    def __init__(self, violations):
        self.violations = list(violations)
        summary = "; ".join(str(v) for v in self.violations[:5])
        more = len(self.violations) - 5
        if more > 0:
            summary += f"; ... ({more} more)"
        super().__init__(f"{len(self.violations)} DRC violation(s): {summary}")


class GeometryError(ReproError):
    """Raised for invalid geometric constructions (degenerate rectangles,
    non-manhattan polygons where manhattan geometry is required, ...)."""


class GDSError(ReproError):
    """Raised when GDSII serialisation cannot represent the layout."""


class LogicError(ReproError):
    """Raised for malformed Boolean expressions or unsupported logic forms."""


class ExpressionParseError(LogicError):
    """Raised by the Boolean expression parser on invalid syntax."""

    def __init__(self, message, text=None, position=None):
        self.text = text
        self.position = position
        if text is not None and position is not None:
            pointer = " " * position + "^"
            message = f"{message}\n  {text}\n  {pointer}"
        super().__init__(message)


class NetworkError(LogicError):
    """Raised when a transistor network cannot be built or is inconsistent."""


class EulerPathError(ReproError):
    """Raised when no Euler path exists or path construction fails."""


class DeviceModelError(ReproError):
    """Raised for invalid device-model parameters or operating points."""


class LayoutGenerationError(ReproError):
    """Raised when a cell layout cannot be generated from its specification."""


class ImmunityAnalysisError(ReproError):
    """Raised by the mispositioned-CNT immunity analysis."""


class NetlistError(ReproError):
    """Raised for malformed circuit netlists."""


class SimulationError(ReproError):
    """Raised when a circuit simulation fails to converge or is ill-posed."""


class CharacterizationError(ReproError):
    """Raised when a standard cell cannot be characterised."""


class LibraryError(ReproError):
    """Raised for standard-cell library inconsistencies (duplicate cells,
    missing drive strengths, unknown cell references)."""


class FlowError(ReproError):
    """Raised by the logic-to-GDSII flow (parsing, mapping, placement)."""


class MappingError(FlowError):
    """Raised when a netlist gate cannot be mapped onto the cell library."""


class VerilogParseError(FlowError):
    """Raised by the structural Verilog parser with source location.

    ``line`` and ``column`` are 1-based positions into the original text
    (comments included), so editor "file:line:col" navigation lands on
    the offending token.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None and column is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class StudyError(ReproError):
    """Raised by the Study layer (unknown studies, malformed sweep axes,
    unserializable results, invalid CLI requests)."""


class LintError(ReproError):
    """Raised by the reprolint static-analysis pass for operational
    failures (unknown rule ids, missing paths) — never for findings,
    which are data, not exceptions."""


class RuntimeLayerError(ReproError):
    """Raised by the runtime layer (scheduler misconfiguration, malformed
    manifests)."""


class ServiceError(ReproError):
    """Raised by the study service layer (the async job API): malformed
    submissions, unknown job ids, illegal job-state transitions."""


class CacheError(RuntimeLayerError):
    """Raised by the content-addressed result cache (unwritable store,
    malformed entries the caller asked to treat as fatal)."""


class PlacementError(FlowError):
    """Raised when placement constraints cannot be satisfied."""
