"""Euler-path engine used by the compact layout generator."""

from .path import (
    LinearizedNetwork,
    Trail,
    euler_path_for_network,
    euler_trails,
    has_euler_path,
)

__all__ = [
    "LinearizedNetwork",
    "Trail",
    "euler_path_for_network",
    "euler_trails",
    "has_euler_path",
]
