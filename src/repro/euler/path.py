"""Euler-path construction over transistor networks.

The compact layout technique of Section III linearises a pull-up / pull-down
network by drawing an Euler path from the supply rail to the output: metal
contacts are the graph nodes and transistor gates are the edges.  Placing
contacts and gates along the path yields a single active column in which
every gate is bounded by metal contacts on both sides — the "redundant"
contacts replace the etched regions of the baseline technique.

This module provides:

* :func:`euler_trails` — a Hierholzer-style decomposition of an arbitrary
  connected multigraph into the minimum number of open trails (1 trail when
  an Euler path exists, ``max(1, odd_vertices/2)`` otherwise);
* :func:`euler_path_for_network` — the linearisation of a
  :class:`~repro.logic.network.TransistorNetwork`, preferring a path that
  starts at the power rail and ends at the output as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..errors import EulerPathError
from ..logic.network import Transistor, TransistorNetwork

Edge = Tuple[Hashable, Hashable, Hashable]  # (node_a, node_b, key)


@dataclass(frozen=True)
class Trail:
    """An open trail: an alternating sequence of nodes and edge keys."""

    nodes: Tuple[Hashable, ...]
    edges: Tuple[Hashable, ...]

    def __post_init__(self):
        if len(self.nodes) != len(self.edges) + 1:
            raise EulerPathError(
                f"Trail with {len(self.edges)} edges must have {len(self.edges) + 1} nodes, "
                f"got {len(self.nodes)}"
            )

    @property
    def start(self) -> Hashable:
        return self.nodes[0]

    @property
    def end(self) -> Hashable:
        return self.nodes[-1]

    def reversed(self) -> "Trail":
        """The same trail walked in the opposite direction."""
        return Trail(tuple(reversed(self.nodes)), tuple(reversed(self.edges)))

    def __len__(self) -> int:
        return len(self.edges)


class _MultiGraph:
    """Minimal undirected multigraph supporting edge removal by key."""

    def __init__(self):
        self.adjacency: Dict[Hashable, List[Tuple[Hashable, Hashable]]] = {}
        self.edge_count = 0

    def add_node(self, node: Hashable) -> None:
        self.adjacency.setdefault(node, [])

    def add_edge(self, node_a: Hashable, node_b: Hashable, key: Hashable) -> None:
        self.add_node(node_a)
        self.add_node(node_b)
        self.adjacency[node_a].append((node_b, key))
        self.adjacency[node_b].append((node_a, key))
        self.edge_count += 1

    def degree(self, node: Hashable) -> int:
        return len(self.adjacency.get(node, []))

    def odd_nodes(self) -> List[Hashable]:
        return [node for node, edges in self.adjacency.items() if len(edges) % 2 == 1]

    def remove_edge(self, node_a: Hashable, node_b: Hashable, key: Hashable) -> None:
        self.adjacency[node_a].remove((node_b, key))
        self.adjacency[node_b].remove((node_a, key))
        self.edge_count -= 1

    def pop_edge_from(self, node: Hashable) -> Optional[Tuple[Hashable, Hashable]]:
        edges = self.adjacency.get(node)
        if not edges:
            return None
        neighbour, key = edges[0]
        self.remove_edge(node, neighbour, key)
        return neighbour, key

    def is_connected_ignoring_isolated(self) -> bool:
        nodes_with_edges = [n for n, e in self.adjacency.items() if e]
        if not nodes_with_edges:
            return True
        frontier = [nodes_with_edges[0]]
        reached = {nodes_with_edges[0]}
        while frontier:
            node = frontier.pop()
            for neighbour, _key in self.adjacency[node]:
                if neighbour not in reached:
                    reached.add(neighbour)
                    frontier.append(neighbour)
        return all(node in reached for node in nodes_with_edges)


def _build_graph(edges: Sequence[Edge]) -> _MultiGraph:
    graph = _MultiGraph()
    for node_a, node_b, key in edges:
        graph.add_edge(node_a, node_b, key)
    return graph


def has_euler_path(edges: Sequence[Edge]) -> bool:
    """Whether the multigraph given by ``edges`` admits a single open Euler
    path (connected and at most two odd-degree vertices)."""
    if not edges:
        return True
    graph = _build_graph(edges)
    if not graph.is_connected_ignoring_isolated():
        return False
    return len(graph.odd_nodes()) in (0, 2)


def _hierholzer(graph: _MultiGraph, start: Hashable) -> Trail:
    """Extract one maximal closed-or-open trail starting at ``start``."""
    stack: List[Hashable] = [start]
    edge_stack: List[Hashable] = []
    node_path: List[Hashable] = []
    edge_path: List[Hashable] = []
    # Standard iterative Hierholzer: walk until stuck, backtrack appending.
    used_edges: List[Optional[Hashable]] = [None]
    while stack:
        node = stack[-1]
        step = graph.pop_edge_from(node)
        if step is None:
            node_path.append(stack.pop())
            edge_key = used_edges.pop()
            if edge_key is not None:
                edge_path.append(edge_key)
        else:
            neighbour, key = step
            stack.append(neighbour)
            used_edges.append(key)
    node_path.reverse()
    edge_path.reverse()
    return Trail(tuple(node_path), tuple(edge_path))


def euler_trails(
    edges: Sequence[Edge],
    preferred_start: Optional[Hashable] = None,
    preferred_end: Optional[Hashable] = None,
) -> List[Trail]:
    """Decompose a connected multigraph into a minimum set of open trails.

    When an Euler path exists a single trail is returned; the trail is
    oriented to start at ``preferred_start`` and/or end at ``preferred_end``
    whenever the graph allows it.  For graphs with ``2k > 2`` odd vertices,
    ``k`` trails are returned (the classical minimum trail decomposition).

    Raises :class:`EulerPathError` for disconnected edge sets.
    """
    if not edges:
        return []
    graph = _build_graph(edges)
    if not graph.is_connected_ignoring_isolated():
        raise EulerPathError("Cannot linearise a disconnected transistor network")

    odd = graph.odd_nodes()
    trails: List[Trail] = []

    if len(odd) <= 2:
        start = _pick_start(odd, preferred_start, preferred_end, graph)
        trails.append(_hierholzer(graph, start))
    else:
        # Classic minimum open-trail decomposition: with 2k odd vertices,
        # pair up all but two of them with virtual edges so a single Euler
        # path exists, then split that path back at the virtual edges to
        # recover k genuine trails.
        ordered_odd = list(odd)
        if preferred_start in ordered_odd:
            ordered_odd.remove(preferred_start)
            ordered_odd.insert(0, preferred_start)
        if preferred_end in ordered_odd[1:]:
            ordered_odd.remove(preferred_end)
            ordered_odd.insert(1, preferred_end)
        virtual_keys = []
        for index in range(2, len(ordered_odd) - 1, 2):
            key = ("__virtual__", index)
            virtual_keys.append(key)
            graph.add_edge(ordered_odd[index], ordered_odd[index + 1], key)
        start = _pick_start(graph.odd_nodes(), preferred_start, preferred_end, graph)
        spliced = _hierholzer(graph, start)
        trails.extend(_split_at_virtual_edges(spliced, set(virtual_keys)))

    total_edges = sum(len(trail) for trail in trails)
    if total_edges != len(edges):
        raise EulerPathError(
            f"Trail decomposition lost edges ({total_edges} of {len(edges)})"
        )
    return _orient_trails(trails, preferred_start, preferred_end)


def _split_at_virtual_edges(trail: Trail, virtual_keys) -> List[Trail]:
    """Split a spliced Euler path back into real trails by removing the
    virtual pairing edges."""
    if not virtual_keys:
        return [trail]
    trails: List[Trail] = []
    nodes: List[Hashable] = [trail.nodes[0]]
    edges: List[Hashable] = []
    for key, node in zip(trail.edges, trail.nodes[1:]):
        if key in virtual_keys:
            if edges:
                trails.append(Trail(tuple(nodes), tuple(edges)))
            nodes = [node]
            edges = []
        else:
            edges.append(key)
            nodes.append(node)
    if edges:
        trails.append(Trail(tuple(nodes), tuple(edges)))
    return trails


def _pick_start(odd, preferred_start, preferred_end, graph: _MultiGraph) -> Hashable:
    if odd:
        if preferred_start in odd:
            return preferred_start
        if preferred_end in odd:
            # Walk from the other odd vertex so the trail *ends* at the
            # preferred end.
            others = [n for n in odd if n != preferred_end]
            return others[0] if others else preferred_end
        return odd[0]
    # Euler circuit: any vertex with edges works; prefer the requested start.
    if preferred_start is not None and graph.degree(preferred_start):
        return preferred_start
    return next(n for n, e in graph.adjacency.items() if e)


def _orient_trails(trails, preferred_start, preferred_end) -> List[Trail]:
    oriented: List[Trail] = []
    for index, trail in enumerate(trails):
        if index == 0 and preferred_start is not None:
            if trail.start != preferred_start and trail.end == preferred_start:
                trail = trail.reversed()
        elif preferred_end is not None:
            if trail.end != preferred_end and trail.start == preferred_end:
                trail = trail.reversed()
        oriented.append(trail)
    return oriented


# ---------------------------------------------------------------------------
# Transistor-network linearisation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LinearizedNetwork:
    """A network linearised along Euler trails.

    ``elements`` alternates contact net names and transistors, starting and
    ending with a contact: ``[net, Transistor, net, Transistor, ..., net]``.
    ``breaks`` lists the indices (into ``elements``) of contacts that sit at
    a junction between two trails that do *not* share a net — these are the
    positions where an etched region or an active-region gap is required
    (the standard cells of the paper never need one).
    """

    network: TransistorNetwork
    elements: Tuple[object, ...]
    breaks: Tuple[int, ...]
    trail_count: int

    @property
    def contact_count(self) -> int:
        return sum(1 for element in self.elements if isinstance(element, str))

    @property
    def gate_count(self) -> int:
        return sum(1 for element in self.elements if isinstance(element, Transistor))

    @property
    def is_single_trail(self) -> bool:
        return self.trail_count == 1

    def contact_nets(self) -> Tuple[str, ...]:
        return tuple(e for e in self.elements if isinstance(e, str))

    def gate_signals(self) -> Tuple[str, ...]:
        return tuple(e.gate for e in self.elements if isinstance(e, Transistor))


def euler_path_for_network(
    network: TransistorNetwork,
    prefer_rail_to_output: bool = True,
) -> LinearizedNetwork:
    """Linearise a transistor network along Euler trails.

    The preferred orientation walks from the power rail to the output net,
    matching the paper's description ("an Euler path from the Vdd to the
    Gnd traversing both the PUN and the PDN"); the orientation does not
    change the area, only the position of the rail contact.
    """
    if not network.transistors:
        raise EulerPathError("Cannot linearise an empty transistor network")
    by_name = {t.name: t for t in network.transistors}
    edges: List[Edge] = [
        (t.source, t.drain, t.name) for t in network.transistors
    ]
    preferred_start = network.power_net if prefer_rail_to_output else None
    preferred_end = network.output_net if prefer_rail_to_output else None
    trails = euler_trails(edges, preferred_start, preferred_end)

    # Reorder trails greedily so consecutive trails share a contact net when
    # possible (a shared net avoids the need for an etched break).
    ordered = _order_trails_for_sharing(trails)

    elements: List[object] = []
    breaks: List[int] = []
    for trail in ordered:
        nodes = list(trail.nodes)
        keys = list(trail.edges)
        if not elements:
            elements.append(nodes[0])
        else:
            previous_net = elements[-1]
            if previous_net == nodes[0]:
                pass  # shared contact, nothing to add
            elif previous_net == nodes[-1]:
                nodes.reverse()
                keys.reverse()
            else:
                breaks.append(len(elements))
                elements.append(nodes[0])
        for key, node in zip(keys, nodes[1:]):
            elements.append(by_name[key])
            elements.append(node)

    return LinearizedNetwork(
        network=network,
        elements=tuple(elements),
        breaks=tuple(breaks),
        trail_count=len(ordered),
    )


def _order_trails_for_sharing(trails: List[Trail]) -> List[Trail]:
    if len(trails) <= 1:
        return list(trails)
    remaining = list(trails)
    ordered = [remaining.pop(0)]
    while remaining:
        tail = ordered[-1].end
        chosen_index = None
        for index, trail in enumerate(remaining):
            if trail.start == tail or trail.end == tail:
                chosen_index = index
                break
        if chosen_index is None:
            chosen_index = 0
        ordered.append(remaining.pop(chosen_index))
    return ordered
