"""Logic-to-GDSII flow: parsing, mapping, placement, design-kit facade."""

from .designkit import CNFETDesignKit, FlowReport, FlowResult, FlowSummary
from .placement import (
    PlacedCell,
    PlacementResult,
    place_cmos_reference,
    place_scheme1,
    place_scheme2,
    placement_layout,
)
from .techmap import MappedDesign, MappedGate, check_library_coverage, map_netlist
from .verilog import (
    comparator_netlist,
    full_adder_netlist,
    full_adder_verilog,
    mac_slice_netlist,
    parse_structural_verilog,
    ripple_carry_adder_netlist,
    split_cell_name,
)

__all__ = [
    "CNFETDesignKit", "FlowReport", "FlowResult", "FlowSummary",
    "PlacedCell", "PlacementResult", "place_cmos_reference",
    "place_scheme1", "place_scheme2", "placement_layout",
    "MappedDesign", "MappedGate", "check_library_coverage", "map_netlist",
    "comparator_netlist", "full_adder_netlist", "full_adder_verilog",
    "mac_slice_netlist", "parse_structural_verilog",
    "ripple_carry_adder_netlist", "split_cell_name",
]
