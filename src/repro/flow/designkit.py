"""The CNFET Design Kit: a logic-to-GDSII flow (Figure 5).

:class:`CNFETDesignKit` bundles everything Section IV describes — the
process description (technology node + λ rules + layer stack), the
imperfection-immune standard-cell library with its electrical views, the
mapping/placement tools and the GDSII back end — behind one facade, so a
user can go from a structural netlist to a placed layout, a Liberty view, a
SPICE-able electrical comparison and an area/timing/energy report against
the 65 nm CMOS reference in a few calls.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..cells.library import (
    DEFAULT_DRIVE_STRENGTHS,
    DEFAULT_GATE_SET,
    StandardCellLibrary,
    build_cmos_timing_library,
    build_library,
)
from ..cells.liberty import write_liberty
from ..circuit.logical_effort import PathTimingResult, analyse_netlist
from ..circuit.netlist import GateNetlist
from ..errors import FlowError
from ..geometry.gds import GDSWriter, GDSWriterOptions
from ..geometry.layout import Layout
from ..tech.drc import DRCChecker
from ..tech.layers import cnfet_layer_stack
from ..tech.nodes import TechnologyNode, cnfet65_node
from .placement import (
    PlacementResult,
    place_cmos_reference,
    place_scheme1,
    place_scheme2,
    placement_layout,
)
from .techmap import MappedDesign, map_netlist
from .verilog import parse_structural_verilog


@dataclass
class FlowReport:
    """Summary of one logic-to-GDSII run."""

    design_name: str
    scheme: int
    gate_count: int
    cell_usage: Dict[str, int]
    placement: PlacementResult
    timing: PathTimingResult
    cmos_placement: PlacementResult
    cmos_timing: PathTimingResult

    @property
    def area_gain_vs_cmos(self) -> float:
        """CMOS core area over CNFET core area.

        A non-positive core area means placement produced a degenerate
        (empty or collapsed) core — that is a broken flow, not an infinite
        gain, so it raises :class:`~repro.errors.FlowError` instead of
        masking the problem.
        """
        if self.placement.core_area <= 0:
            raise FlowError(
                f"{self.design_name}: degenerate CNFET placement "
                f"(core area {self.placement.core_area:g} λ²); "
                "cannot compute area gain"
            )
        if self.cmos_placement.core_area <= 0:
            raise FlowError(
                f"{self.design_name}: degenerate CMOS reference placement "
                f"(core area {self.cmos_placement.core_area:g} λ²); "
                "cannot compute area gain"
            )
        return self.cmos_placement.core_area / self.placement.core_area

    @property
    def delay_gain_vs_cmos(self) -> float:
        if self.timing.critical_path_delay <= 0:
            raise FlowError(
                f"{self.design_name}: non-positive CNFET critical-path delay "
                f"({self.timing.critical_path_delay:g} s); timing analysis "
                "did not produce a usable path"
            )
        return self.cmos_timing.critical_path_delay / self.timing.critical_path_delay

    @property
    def energy_gain_vs_cmos(self) -> float:
        if self.timing.total_energy_per_cycle <= 0:
            raise FlowError(
                f"{self.design_name}: non-positive CNFET energy per cycle "
                f"({self.timing.total_energy_per_cycle:g} J); timing analysis "
                "did not produce usable energies"
            )
        return (
            self.cmos_timing.total_energy_per_cycle / self.timing.total_energy_per_cycle
        )

    def summary(self) -> str:
        """Human-readable report."""
        lines = [
            f"design          : {self.design_name} (scheme {self.scheme})",
            f"gates           : {self.gate_count}",
            f"CNFET core area : {self.placement.core_area:.0f} λ² "
            f"(utilisation {self.placement.utilization * 100:.0f}%)",
            f"CMOS core area  : {self.cmos_placement.core_area:.0f} λ²",
            f"area gain       : {self.area_gain_vs_cmos:.2f}x",
            f"CNFET delay     : {self.timing.critical_path_delay * 1e12:.1f} ps",
            f"CMOS delay      : {self.cmos_timing.critical_path_delay * 1e12:.1f} ps",
            f"delay gain      : {self.delay_gain_vs_cmos:.2f}x",
            f"CNFET energy    : {self.timing.total_energy_per_cycle * 1e15:.2f} fJ/cycle",
            f"CMOS energy     : {self.cmos_timing.total_energy_per_cycle * 1e15:.2f} fJ/cycle",
            f"energy gain     : {self.energy_gain_vs_cmos:.2f}x",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class FlowSummary:
    """The serializable distillation of one flow run.

    Everything the Study layer needs to report or compare runs headlessly
    — scalar areas, delays, energies and a GDSII fingerprint — without
    dragging the placed layout or the GDSII byte stream along.  Produced
    by :meth:`FlowResult.summarize`.
    """

    design_name: str
    scheme: int
    gate_count: int
    cell_usage: Dict[str, int]
    core_area: float
    utilization: float
    cmos_core_area: float
    critical_path_delay: float
    total_energy_per_cycle: float
    cmos_critical_path_delay: float
    cmos_total_energy_per_cycle: float
    gds_size_bytes: int
    gds_sha256: str


@dataclass
class FlowResult:
    """Everything a flow run produces."""

    report: FlowReport
    mapped: MappedDesign
    layout: Layout
    gds_bytes: bytes

    def summarize(self) -> FlowSummary:
        """Distil the run into its serializable :class:`FlowSummary`."""
        report = self.report
        return FlowSummary(
            design_name=report.design_name,
            scheme=report.scheme,
            gate_count=report.gate_count,
            cell_usage=dict(report.cell_usage),
            core_area=report.placement.core_area,
            utilization=report.placement.utilization,
            cmos_core_area=report.cmos_placement.core_area,
            critical_path_delay=report.timing.critical_path_delay,
            total_energy_per_cycle=report.timing.total_energy_per_cycle,
            cmos_critical_path_delay=report.cmos_timing.critical_path_delay,
            cmos_total_energy_per_cycle=report.cmos_timing.total_energy_per_cycle,
            gds_size_bytes=len(self.gds_bytes),
            gds_sha256=hashlib.sha256(self.gds_bytes).hexdigest(),
        )


class CNFETDesignKit:
    """The complete design kit of Section IV."""

    def __init__(
        self,
        node: Optional[TechnologyNode] = None,
        gate_set: Sequence[str] = DEFAULT_GATE_SET,
        drive_strengths: Sequence[float] = DEFAULT_DRIVE_STRENGTHS,
        unit_width: float = 4.0,
        scheme: int = 1,
        timing_source: str = "logical_effort",
    ):
        self.node = node or cnfet65_node()
        self.rules = self.node.rules
        self.layer_stack = cnfet_layer_stack()
        self.scheme = scheme
        self.unit_width = unit_width
        self.library: StandardCellLibrary = build_library(
            name=f"cnfet65_scheme{scheme}",
            gate_names=gate_set,
            drive_strengths=drive_strengths,
            scheme=scheme,
            unit_width=unit_width,
            rules=self.rules,
            timing_source=timing_source,
        )
        self.cmos_timing = build_cmos_timing_library(
            gate_names=gate_set, drive_strengths=drive_strengths, unit_width=unit_width
        )
        self._drc = DRCChecker(self.rules)

    # -- library-level services ----------------------------------------------------

    def liberty(self) -> str:
        """Liberty view of the CNFET library."""
        return write_liberty(self.library)

    def run_drc(self) -> Dict[str, list]:
        """DRC over every library cell; returns only cells with violations."""
        report: Dict[str, list] = {}
        for cell in self.library.cells():
            violations = self._drc.check(cell.layout.cell)
            if violations:
                report[cell.name] = violations
        return report

    # -- the logic-to-GDSII flow -----------------------------------------------------

    def run_flow(self, netlist, scheme: Optional[int] = None,
                 output_load: float = 0.0) -> FlowResult:
        """Map, place, analyse and stream out one design.

        ``netlist`` is either a :class:`~repro.circuit.netlist.GateNetlist`
        or structural Verilog text.
        """
        if isinstance(netlist, str):
            netlist = parse_structural_verilog(netlist)
        if not isinstance(netlist, GateNetlist):
            raise FlowError(
                "run_flow expects a GateNetlist or structural Verilog text, "
                f"got {type(netlist).__name__}"
            )
        scheme = self.scheme if scheme is None else scheme

        mapped = map_netlist(netlist, self.library)
        placement = (
            place_scheme1(mapped) if scheme == 1 else place_scheme2(mapped)
        )
        cmos_placement = place_cmos_reference(netlist, unit_width=self.unit_width)

        timing = analyse_netlist(netlist, self.library.timing_library(),
                                 output_load=output_load)
        cmos_timing = analyse_netlist(netlist, self.cmos_timing,
                                      output_load=output_load)

        layout = placement_layout(placement, mapped)
        writer = GDSWriter(
            self.layer_stack,
            GDSWriterOptions(unit_nm=self.rules.lambda_nm),
        )
        gds_bytes = writer.to_bytes(layout)

        report = FlowReport(
            design_name=netlist.name,
            scheme=scheme,
            gate_count=len(netlist),
            cell_usage=mapped.cell_usage(),
            placement=placement,
            timing=timing,
            cmos_placement=cmos_placement,
            cmos_timing=cmos_timing,
        )
        return FlowResult(report=report, mapped=mapped, layout=layout, gds_bytes=gds_bytes)

    def write_gds(self, result: FlowResult, path: str) -> str:
        """Write the GDSII stream of a flow result to ``path``."""
        with open(path, "wb") as stream:
            stream.write(result.gds_bytes)
        return path
