"""Cell placement for the two CNFET standardisation schemes and for CMOS.

Case study 2 contrasts three placement styles for the same mapped netlist:

* **Scheme 1** (CMOS-like rows): every cell is stretched to the standard
  row height (the tallest cell of the library), so undersized cells waste
  area — exactly the utilisation loss the paper points out for Inv4X vs
  Inv9X in Figure 8(b).
* **Scheme 2** (free-height shelves): cells keep their natural height and
  are packed onto shelves, which is what recovers the extra ~0.2× area in
  Figure 8(c).
* **CMOS reference rows**: the same row-based style using the CMOS cell
  areas.

The placers are deliberately simple (greedy row/shelf filling with a target
aspect ratio) — the paper's point is about cell-height flexibility, not
about placement algorithms — but they produce real coordinates that the
GDSII flow streams out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.netlist import GateInstance, GateNetlist
from ..core.standard_cell import cmos_cell_area
from ..errors import PlacementError
from ..geometry.layout import Layout, LayoutCell
from ..geometry.primitives import Rect
from ..tech.lambda_rules import CMOS_RULES, DesignRules
from .techmap import MappedDesign, MappedGate


@dataclass(frozen=True)
class PlacedCell:
    """One placed instance with its outline in λ."""

    instance_name: str
    cell_name: str
    x: float
    y: float
    width: float
    height: float

    @property
    def outline(self) -> Rect:
        return Rect(self.x, self.y, self.x + self.width, self.y + self.height)


@dataclass
class PlacementResult:
    """Outcome of placing one mapped design."""

    design_name: str
    style: str
    placed: List[PlacedCell]
    core_width: float
    core_height: float
    row_height: Optional[float] = None

    @property
    def core_area(self) -> float:
        """Area of the bounding core region in λ²."""
        return self.core_width * self.core_height

    @property
    def cell_area(self) -> float:
        """Sum of placed cell outline areas in λ²."""
        return sum(cell.width * cell.height for cell in self.placed)

    @property
    def utilization(self) -> float:
        """Cell area over core area (1.0 = perfectly packed)."""
        if self.core_area <= 0:
            return 0.0
        return self.cell_area / self.core_area

    def overlaps(self) -> List[Tuple[str, str]]:
        """Pairs of placed cells whose outlines overlap (should be empty)."""
        problems: List[Tuple[str, str]] = []
        for index, first in enumerate(self.placed):
            for second in self.placed[index + 1:]:
                if first.outline.intersects(second.outline, strict=True):
                    problems.append((first.instance_name, second.instance_name))
        return problems


def _row_place(
    design_name: str,
    style: str,
    items: Sequence[Tuple[str, str, float, float]],
    row_height: float,
    target_aspect: float = 1.0,
    row_spacing: float = 0.0,
) -> PlacementResult:
    """Greedy row placement of (instance, cell, width, height) outlines.

    Every row has the same ``row_height``; a cell shorter than the row still
    occupies the full row height (standard-cell abutment).
    """
    if not items:
        raise PlacementError(f"Design {design_name!r} has no cells to place")
    total_width = sum(width for _, _, width, _ in items)
    row_width_target = math.sqrt(total_width * (row_height + row_spacing) / target_aspect)
    row_width_target = max(row_width_target, max(width for _, _, width, _ in items))

    placed: List[PlacedCell] = []
    x_cursor = 0.0
    y_cursor = 0.0
    max_row_width = 0.0
    for instance_name, cell_name, width, height in items:
        if height > row_height + 1e-9:
            raise PlacementError(
                f"Cell {cell_name!r} (height {height}λ) does not fit the row "
                f"height {row_height}λ"
            )
        if x_cursor > 0.0 and x_cursor + width > row_width_target:
            max_row_width = max(max_row_width, x_cursor)
            x_cursor = 0.0
            y_cursor += row_height + row_spacing
        placed.append(
            PlacedCell(instance_name, cell_name, x_cursor, y_cursor, width, row_height)
        )
        x_cursor += width
    max_row_width = max(max_row_width, x_cursor)
    core_height = y_cursor + row_height
    return PlacementResult(
        design_name=design_name,
        style=style,
        placed=placed,
        core_width=max_row_width,
        core_height=core_height,
        row_height=row_height,
    )


def place_scheme1(design: MappedDesign, target_aspect: float = 1.0) -> PlacementResult:
    """Row placement with the standardised (tallest-cell) height of scheme 1.

    The row height is standardised to the tallest cell *used by the design*
    (Figure 8b: Inv4X and Inv9X occupy the same height after
    standardisation).
    """
    if not design.gates:
        raise PlacementError(f"Design {design.netlist.name!r} has no cells to place")
    row_height = max(gate.cell.height for gate in design.gates)
    items = [
        (gate.instance.name, gate.cell.name, gate.cell.width, gate.cell.height)
        for gate in design.gates
    ]
    return _row_place(design.netlist.name, "cnfet_scheme1", items, row_height,
                      target_aspect)


def place_scheme2(design: MappedDesign, target_aspect: float = 1.0,
                  shelf_quantum: float = 2.0) -> PlacementResult:
    """Shelf packing with natural cell heights (scheme 2).

    Cells are sorted by height and packed onto shelves whose height matches
    the tallest cell on that shelf, so short cells do not pay for tall ones.
    """
    if not design.gates:
        raise PlacementError(f"Design {design.netlist.name!r} has no cells to place")
    items = sorted(
        (
            (gate.instance.name, gate.cell.name, gate.cell.width, gate.cell.height)
            for gate in design.gates
        ),
        key=lambda item: -item[3],
    )
    total_area = sum(width * height for _, _, width, height in items)
    core_width_target = max(
        math.sqrt(total_area / max(target_aspect, 1e-6)),
        max(width for _, _, width, _ in items),
    )

    placed: List[PlacedCell] = []
    x_cursor = 0.0
    y_cursor = 0.0
    shelf_height = 0.0
    max_width = 0.0
    for instance_name, cell_name, width, height in items:
        if x_cursor > 0.0 and x_cursor + width > core_width_target:
            max_width = max(max_width, x_cursor)
            y_cursor += shelf_height
            x_cursor = 0.0
            shelf_height = 0.0
        shelf_height = max(shelf_height, height)
        placed.append(PlacedCell(instance_name, cell_name, x_cursor, y_cursor, width, height))
        x_cursor += width
    max_width = max(max_width, x_cursor)
    core_height = y_cursor + shelf_height
    return PlacementResult(
        design_name=design.netlist.name,
        style="cnfet_scheme2",
        placed=placed,
        core_width=max_width,
        core_height=core_height,
    )


def place_cmos_reference(
    netlist: GateNetlist,
    unit_width: float = 4.0,
    rules: DesignRules = CMOS_RULES,
    target_aspect: float = 1.0,
) -> PlacementResult:
    """Row placement of the same netlist using the CMOS cell area model."""
    from ..logic.functions import standard_gate  # local import avoids a cycle

    items: List[Tuple[str, str, float, float]] = []
    heights: List[float] = []
    for gate in netlist.gates:
        reference = cmos_cell_area(
            standard_gate(gate.cell_type), unit_width=unit_width,
            drive_strength=gate.drive_strength, rules=rules,
        )
        items.append((gate.name, reference.name, reference.width, reference.height))
        heights.append(reference.height)
    if not items:
        raise PlacementError(f"Design {netlist.name!r} has no cells to place")
    row_height = max(heights)
    return _row_place(netlist.name, "cmos_reference", items, row_height, target_aspect)


def placement_layout(result: PlacementResult, design: Optional[MappedDesign] = None) -> Layout:
    """Turn a placement into a hierarchical layout (cell outlines plus, when
    the mapped design is supplied, real cell instances) for GDS export."""
    layout = Layout(result.design_name)
    top = layout.new_cell(f"{result.design_name}_top", top=True)
    known_cells: Dict[str, LayoutCell] = {}
    if design is not None:
        for gate in design.gates:
            if gate.cell.name not in known_cells:
                known_cells[gate.cell.name] = gate.cell.layout.cell
    for cell in known_cells.values():
        layout.add_cell(cell)
    for placed in result.placed:
        top.add_rect("boundary", placed.outline)
        if placed.cell_name in known_cells:
            top.add_instance(placed.cell_name, placed.instance_name, placed.x, placed.y)
    return layout
