"""Technology mapping: bind a gate-level netlist to library cells.

Synthesis already decided the logic structure; mapping here means checking
that every instance has a matching library cell at (or near) the requested
drive strength and attaching the chosen :class:`~repro.cells.library.LibraryCell`
so placement and analysis can use its physical and electrical views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cells.library import LibraryCell, StandardCellLibrary
from ..circuit.netlist import GateInstance, GateNetlist
from ..errors import MappingError


@dataclass(frozen=True)
class MappedGate:
    """One netlist instance bound to a library cell."""

    instance: GateInstance
    cell: LibraryCell


@dataclass
class MappedDesign:
    """A gate netlist fully bound to a standard-cell library."""

    netlist: GateNetlist
    library: StandardCellLibrary
    gates: List[MappedGate] = field(default_factory=list)

    def cell_usage(self) -> Dict[str, int]:
        """How many instances of each library cell the design uses."""
        usage: Dict[str, int] = {}
        for mapped in self.gates:
            usage[mapped.cell.name] = usage.get(mapped.cell.name, 0) + 1
        return usage

    def total_cell_area(self) -> float:
        """Sum of mapped cell areas in λ²."""
        return sum(mapped.cell.area for mapped in self.gates)

    def total_cmos_reference_area(self) -> float:
        """Sum of the equivalent CMOS cell areas in λ²."""
        return sum(mapped.cell.cmos_reference.area for mapped in self.gates)


def map_netlist(
    netlist: GateNetlist,
    library: StandardCellLibrary,
    snap_drive_strengths: bool = True,
) -> MappedDesign:
    """Bind every instance of ``netlist`` to a cell of ``library``.

    With ``snap_drive_strengths`` an instance whose exact drive is missing
    is mapped to the nearest available drive of the same gate type (and the
    netlist instance keeps its requested value for reporting); without it a
    missing drive is an error.

    A netlist with no gate instances, or one using gate types the library
    cannot map at any drive, raises :class:`~repro.errors.MappingError`
    up front (all missing types listed) rather than producing a
    degenerate zero-area design.
    """
    netlist.validate()
    if not netlist.gates:
        raise MappingError(
            f"Netlist {netlist.name!r} has no gate instances to map"
        )
    missing = check_library_coverage(netlist, library)
    if missing:
        raise MappingError(
            f"Library {library.name!r} has no cell for gate type(s) "
            f"{', '.join(repr(m) for m in missing)} used by netlist "
            f"{netlist.name!r}"
        )
    design = MappedDesign(netlist=netlist, library=library)
    for instance in netlist.gates:
        gate_type = instance.cell_type
        if library.has_cell(gate_type, instance.drive_strength):
            cell = library.cell(gate_type, instance.drive_strength)
        else:
            drives = library.drive_strengths(gate_type)
            if not snap_drive_strengths:
                raise MappingError(
                    f"Library {library.name!r} has no {gate_type} cell at drive "
                    f"{instance.drive_strength:g}X (instance {instance.name!r}); "
                    f"available drives: {drives}"
                )
            nearest = min(drives, key=lambda d: abs(d - instance.drive_strength))
            cell = library.cell(gate_type, nearest)
        design.gates.append(MappedGate(instance=instance, cell=cell))
    return design


def check_library_coverage(netlist: GateNetlist,
                           library: StandardCellLibrary) -> List[str]:
    """Gate types used by the netlist that the library cannot map at all."""
    missing: List[str] = []
    for instance in netlist.gates:
        if not library.drive_strengths(instance.cell_type):
            if instance.cell_type not in missing:
                missing.append(instance.cell_type)
    return missing
