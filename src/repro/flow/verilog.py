"""Structural netlist input: a small Verilog subset parser and benchmark
netlist builders.

The design kit's front end (Figure 5) receives a synthesised gate-level
netlist.  Two entry points are offered:

* :func:`parse_structural_verilog` — a parser for the structural Verilog
  subset synthesis tools emit: one module, ``input``/``output``/``wire``
  declarations and named-port gate instantiations of library cells
  (``NAND2_2X g1 (.A(a), .B(b), .out(n1));``).  Drive strength is taken
  from the ``_<n>X`` suffix of the cell name.  Parse errors — unknown
  cell types, duplicate instance names, undeclared nets, positional
  ports — are :class:`~repro.errors.VerilogParseError` values carrying
  the 1-based line/column of the offending token in the original text.
* builders for the circuit families the studies consume: the NAND2 +
  inverter full adder of Figure 8, a ripple-carry adder chained from it,
  an equality comparator, and a multiply-accumulate slice.
"""

from __future__ import annotations

import re
from typing import Collection, Dict, List, Optional, Sequence, Tuple

from ..circuit.netlist import GateNetlist
from ..errors import FlowError, VerilogParseError

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"
_MODULE_RE = re.compile(rf"module\s+({_IDENT})\s*\((.*?)\)\s*;", re.S)
_DECL_RE = re.compile(rf"(input|output|wire)\s+(.*?);", re.S)
_INSTANCE_RE = re.compile(
    rf"({_IDENT})\s+({_IDENT})\s*\((.*?)\)\s*;", re.S
)
_PORT_RE = re.compile(rf"\.({_IDENT})\s*\(\s*({_IDENT})\s*\)")
_DRIVE_RE = re.compile(r"^(?P<base>.+?)_(?P<drive>\d+(?:\.\d+)?)X$", re.IGNORECASE)

_KEYWORDS = {"module", "endmodule", "input", "output", "wire"}


def split_cell_name(cell_name: str) -> Tuple[str, float]:
    """Split ``NAND2_4X`` into ``("NAND2", 4.0)``; plain names get drive 1."""
    match = _DRIVE_RE.match(cell_name)
    if match:
        return match.group("base").upper(), float(match.group("drive"))
    return cell_name.upper(), 1.0


def _location(text: str, index: int) -> Tuple[int, int]:
    """1-based ``(line, column)`` of character ``index`` in ``text``."""
    line = text.count("\n", 0, index) + 1
    column = index - (text.rfind("\n", 0, index) + 1) + 1
    return line, column


def _parse_error(message: str, text: str, index: int) -> VerilogParseError:
    line, column = _location(text, index)
    return VerilogParseError(message, line=line, column=column)


def _default_known_cells() -> Collection[str]:
    # Imported lazily: the parser itself has no reason to pull the full
    # cell-generation stack in until a module is actually parsed.
    from ..cells.library import DEFAULT_GATE_SET

    return DEFAULT_GATE_SET


def parse_structural_verilog(
    text: str,
    known_cells: Optional[Collection[str]] = None,
) -> GateNetlist:
    """Parse one structural Verilog module into a :class:`GateNetlist`.

    ``known_cells`` is the catalogue of legal base cell types (drive
    suffixes stripped); instances of anything else raise
    :class:`~repro.errors.VerilogParseError` with the cell's line/column.
    It defaults to the standard library's gate set
    (:data:`~repro.cells.library.DEFAULT_GATE_SET`); pass a custom
    collection to parse against another library, or ``False`` to skip
    the check entirely.

    Duplicate instance names and instance ports referencing nets that no
    ``input``/``output``/``wire`` declaration introduced are rejected
    the same way — located errors, not opaque ones.
    """
    stripped = _strip_comments(text)
    module_match = _MODULE_RE.search(stripped)
    if not module_match:
        raise FlowError("No module declaration found in the Verilog source")
    module_name = module_match.group(1)
    netlist = GateNetlist(module_name)
    if known_cells is None:
        known_cells = _default_known_cells()
    legal_cells = ({cell.upper() for cell in known_cells}
                   if known_cells is not False else None)

    offset = module_match.end()
    end_index = stripped.find("endmodule", offset)
    if end_index < 0:
        raise FlowError(f"Module {module_name!r} has no endmodule")
    body = stripped[offset:end_index]

    inputs: List[str] = []
    outputs: List[str] = []
    declared: set = set()
    for kind, names in _DECL_RE.findall(body):
        signals = [name.strip() for name in names.replace("\n", " ").split(",") if name.strip()]
        declared.update(signals)
        if kind == "input":
            inputs.extend(signals)
        elif kind == "output":
            outputs.extend(signals)

    declaration_spans = [m.span() for m in _DECL_RE.finditer(body)]
    seen_instances: Dict[str, int] = {}

    for match in _INSTANCE_RE.finditer(body):
        if any(start <= match.start() < end for start, end in declaration_spans):
            continue
        cell_name, instance_name, ports = match.group(1), match.group(2), match.group(3)
        if cell_name in _KEYWORDS:
            continue
        at = offset + match.start()
        base, drive = split_cell_name(cell_name)
        if legal_cells is not None and base not in legal_cells:
            raise _parse_error(
                f"Unknown cell type {cell_name!r} (no library cell {base!r}; "
                f"known: {sorted(legal_cells)})",
                text, at,
            )
        if instance_name in seen_instances:
            first_line, _ = _location(text, seen_instances[instance_name])
            raise _parse_error(
                f"Duplicate instance name {instance_name!r} "
                f"(first declared on line {first_line})",
                text, at,
            )
        seen_instances[instance_name] = at
        connections = {pin: net for pin, net in _PORT_RE.findall(ports)}
        if not connections:
            raise _parse_error(
                f"Instance {instance_name!r} of {cell_name!r} uses positional "
                "ports; only named ports (.pin(net)) are supported",
                text, at,
            )
        for pin, net in connections.items():
            if net not in declared:
                port_match = re.search(
                    rf"\.{re.escape(pin)}\s*\(\s*{re.escape(net)}\s*\)", ports
                )
                net_at = at if port_match is None else (
                    offset + match.start(3) + port_match.start()
                )
                raise _parse_error(
                    f"Instance {instance_name!r} port .{pin}({net}) references "
                    f"undeclared net {net!r} (declare it as input, output "
                    "or wire)",
                    text, net_at,
                )
        netlist.add_gate(instance_name, base, connections, drive_strength=drive)

    netlist.declare_io(inputs, outputs)
    netlist.validate()
    return netlist


def _strip_comments(text: str) -> str:
    """Blank comments out with spaces so every surviving token keeps its
    original offset (parse errors report line/column into ``text``)."""

    def blank(match: "re.Match[str]") -> str:
        return "".join(c if c == "\n" else " " for c in match.group(0))

    text = re.sub(r"//.*", blank, text)
    return re.sub(r"/\*.*?\*/", blank, text, flags=re.S)


# ---------------------------------------------------------------------------
# Benchmark netlist builders
# ---------------------------------------------------------------------------

def full_adder_netlist(
    name: str = "full_adder",
    internal_drive: float = 2.0,
    output_drive: float = 4.0,
    buffer_outputs: bool = True,
    buffer_drive: float = 9.0,
    suffix: str = "",
) -> GateNetlist:
    """The NAND2 + inverter full adder of Figure 8(a).

    Nine NAND2 gates compute sum and carry; optional output inverter pairs
    (``4X`` + ``9X`` by default) model the drive-strength mix the figure
    shows.  ``suffix`` namespaces nets/instances so several adders can be
    stitched into a ripple-carry chain.
    """
    netlist = GateNetlist(name)
    a, b, cin = f"a{suffix}", f"b{suffix}", f"cin{suffix}"
    sum_net, carry_net = f"sum{suffix}", f"carry{suffix}"

    def net(local: str) -> str:
        return f"{local}{suffix}"

    nand = "NAND2"
    netlist.add_gate(f"g1{suffix}", nand, {"A": a, "B": b, "out": net("n1")}, internal_drive)
    netlist.add_gate(f"g2{suffix}", nand, {"A": a, "B": net("n1"), "out": net("n2")}, internal_drive)
    netlist.add_gate(f"g3{suffix}", nand, {"A": b, "B": net("n1"), "out": net("n3")}, internal_drive)
    netlist.add_gate(f"g4{suffix}", nand, {"A": net("n2"), "B": net("n3"), "out": net("n4")}, internal_drive)
    netlist.add_gate(f"g5{suffix}", nand, {"A": net("n4"), "B": cin, "out": net("n5")}, internal_drive)
    netlist.add_gate(f"g6{suffix}", nand, {"A": net("n4"), "B": net("n5"), "out": net("n6")}, internal_drive)
    netlist.add_gate(f"g7{suffix}", nand, {"A": cin, "B": net("n5"), "out": net("n7")}, internal_drive)

    if buffer_outputs:
        netlist.add_gate(f"g8{suffix}", nand, {"A": net("n6"), "B": net("n7"), "out": net("s0")}, output_drive)
        netlist.add_gate(f"g9{suffix}", nand, {"A": net("n5"), "B": net("n1"), "out": net("c0")}, output_drive)
        netlist.add_gate(f"ginv_s1{suffix}", "INV", {"A": net("s0"), "out": net("s1")}, output_drive)
        netlist.add_gate(f"ginv_s2{suffix}", "INV", {"A": net("s1"), "out": sum_net}, buffer_drive)
        netlist.add_gate(f"ginv_c1{suffix}", "INV", {"A": net("c0"), "out": net("c1")}, output_drive)
        netlist.add_gate(f"ginv_c2{suffix}", "INV", {"A": net("c1"), "out": carry_net}, buffer_drive)
    else:
        netlist.add_gate(f"g8{suffix}", nand, {"A": net("n6"), "B": net("n7"), "out": sum_net}, output_drive)
        netlist.add_gate(f"g9{suffix}", nand, {"A": net("n5"), "B": net("n1"), "out": carry_net}, output_drive)

    netlist.declare_io([a, b, cin], [sum_net, carry_net])
    netlist.validate()
    return netlist


def ripple_carry_adder_netlist(bits: int = 4, name: Optional[str] = None) -> GateNetlist:
    """A ripple-carry adder built by chaining full adders (used as a larger
    flow example beyond the paper's single-bit case study)."""
    if bits < 1:
        raise FlowError("A ripple-carry adder needs at least one bit")
    name = name or f"rca{bits}"
    netlist = GateNetlist(name)
    inputs: List[str] = []
    outputs: List[str] = []
    carry_in = "cin"
    inputs.append(carry_in)
    for bit in range(bits):
        stage = full_adder_netlist(suffix=f"_b{bit}", buffer_outputs=False)
        rename = {
            f"a_b{bit}": f"a{bit}",
            f"b_b{bit}": f"b{bit}",
            f"cin_b{bit}": carry_in,
            f"sum_b{bit}": f"sum{bit}",
            f"carry_b{bit}": f"carry{bit}",
        }
        for gate in stage.gates:
            connections = {
                pin: rename.get(net, net) for pin, net in gate.connections.items()
            }
            netlist.add_gate(gate.name, gate.cell_type, connections, gate.drive_strength)
        inputs.extend([f"a{bit}", f"b{bit}"])
        outputs.append(f"sum{bit}")
        carry_in = f"carry{bit}"
    outputs.append(carry_in)
    netlist.declare_io(inputs, outputs)
    netlist.validate()
    return netlist


def comparator_netlist(bits: int = 4, name: Optional[str] = None,
                       internal_drive: float = 2.0,
                       output_drive: float = 4.0) -> GateNetlist:
    """An N-bit equality comparator: ``eq = AND_i XNOR(a_i, b_i)``.

    Each bit's XNOR is the classic four-NAND XOR followed by an inverter;
    the per-bit results are AND-reduced through NAND + INV pairs.  Uses
    only NAND2/INV, so it maps onto the same library cells as the adders
    while exercising a different instance mix.
    """
    if bits < 1:
        raise FlowError("A comparator needs at least one bit")
    name = name or f"cmp{bits}"
    netlist = GateNetlist(name)
    inputs: List[str] = []
    xnors: List[str] = []
    for bit in range(bits):
        a, b = f"a{bit}", f"b{bit}"
        inputs.extend([a, b])
        n1, n2, n3 = f"x{bit}_n1", f"x{bit}_n2", f"x{bit}_n3"
        xor, xnor = f"x{bit}_xor", f"xnor{bit}"
        netlist.add_gate(f"gx{bit}_1", "NAND2", {"A": a, "B": b, "out": n1}, internal_drive)
        netlist.add_gate(f"gx{bit}_2", "NAND2", {"A": a, "B": n1, "out": n2}, internal_drive)
        netlist.add_gate(f"gx{bit}_3", "NAND2", {"A": b, "B": n1, "out": n3}, internal_drive)
        netlist.add_gate(f"gx{bit}_4", "NAND2", {"A": n2, "B": n3, "out": xor}, internal_drive)
        netlist.add_gate(f"gx{bit}_5", "INV", {"A": xor, "out": xnor}, internal_drive)
        xnors.append(xnor)

    acc = xnors[0]
    for bit in range(1, bits):
        drive = output_drive if bit == bits - 1 else internal_drive
        out = "eq" if bit == bits - 1 else f"and{bit}"
        netlist.add_gate(f"ga{bit}", "NAND2",
                         {"A": acc, "B": xnors[bit], "out": f"nand{bit}"},
                         internal_drive)
        netlist.add_gate(f"gai{bit}", "INV", {"A": f"nand{bit}", "out": out}, drive)
        acc = out
    if bits == 1:
        netlist.add_gate("gbuf_n", "INV", {"A": acc, "out": "eq_n"}, internal_drive)
        netlist.add_gate("gbuf", "INV", {"A": "eq_n", "out": "eq"}, output_drive)

    netlist.declare_io(inputs, ["eq"])
    netlist.validate()
    return netlist


def mac_slice_netlist(bits: int = 4, name: Optional[str] = None,
                      internal_drive: float = 2.0) -> GateNetlist:
    """A multiply-accumulate slice: ``sum = a & {bits{b}} + c``.

    Each partial product ``p_i = AND(a_i, b)`` (one shared multiplicand
    bit ``b``) feeds a ripple full-adder chain against the accumulator
    word ``c`` — the per-cycle workhorse of a serial MAC unit, and a
    third built-in circuit family mixing AND trees with carry chains.
    """
    if bits < 1:
        raise FlowError("A MAC slice needs at least one bit")
    name = name or f"mac{bits}"
    netlist = GateNetlist(name)
    inputs: List[str] = ["b", "cin"]
    outputs: List[str] = []
    carry_in = "cin"
    for bit in range(bits):
        a, c = f"a{bit}", f"c{bit}"
        inputs.extend([a, c])
        netlist.add_gate(f"gp{bit}_n", "NAND2",
                         {"A": a, "B": "b", "out": f"pp{bit}_n"}, internal_drive)
        netlist.add_gate(f"gp{bit}", "INV",
                         {"A": f"pp{bit}_n", "out": f"pp{bit}"}, internal_drive)
        stage = full_adder_netlist(suffix=f"_m{bit}", buffer_outputs=False)
        rename = {
            f"a_m{bit}": f"pp{bit}",
            f"b_m{bit}": c,
            f"cin_m{bit}": carry_in,
            f"sum_m{bit}": f"sum{bit}",
            f"carry_m{bit}": f"carry{bit}",
        }
        for gate in stage.gates:
            connections = {
                pin: rename.get(net, net) for pin, net in gate.connections.items()
            }
            netlist.add_gate(gate.name, gate.cell_type, connections, gate.drive_strength)
        outputs.append(f"sum{bit}")
        carry_in = f"carry{bit}"
    outputs.append(carry_in)
    netlist.declare_io(inputs, outputs)
    netlist.validate()
    return netlist


def full_adder_verilog(name: str = "full_adder") -> str:
    """Structural Verilog text of the Figure 8 full adder (round-trips
    through :func:`parse_structural_verilog`)."""
    netlist = full_adder_netlist(name=name)
    lines = [f"module {name} (a, b, cin, sum, carry);"]
    lines.append("  input a, b, cin;")
    lines.append("  output sum, carry;")
    wires = [n for n in netlist.nets() if n not in netlist.inputs + netlist.outputs]
    lines.append(f"  wire {', '.join(sorted(wires))};")
    for gate in netlist.gates:
        ports = ", ".join(f".{pin}({net})" for pin, net in gate.connections.items())
        lines.append(f"  {gate.cell_type}_{gate.drive_strength:g}X {gate.name} ({ports});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
