"""Structural netlist input: a small Verilog subset parser and benchmark
netlist builders.

The design kit's front end (Figure 5) receives a synthesised gate-level
netlist.  Two entry points are offered:

* :func:`parse_structural_verilog` — a parser for the structural Verilog
  subset synthesis tools emit: one module, ``input``/``output``/``wire``
  declarations and named-port gate instantiations of library cells
  (``NAND2_2X g1 (.A(a), .B(b), .out(n1));``).  Drive strength is taken
  from the ``_<n>X`` suffix of the cell name.
* builders for the circuits used in the paper's case studies: the NAND2 +
  inverter full adder of Figure 8 and a ripple-carry adder built from it.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.netlist import GateNetlist
from ..errors import FlowError

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"
_MODULE_RE = re.compile(rf"module\s+({_IDENT})\s*\((.*?)\)\s*;", re.S)
_DECL_RE = re.compile(rf"(input|output|wire)\s+(.*?);", re.S)
_INSTANCE_RE = re.compile(
    rf"({_IDENT})\s+({_IDENT})\s*\((.*?)\)\s*;", re.S
)
_PORT_RE = re.compile(rf"\.({_IDENT})\s*\(\s*({_IDENT})\s*\)")
_DRIVE_RE = re.compile(r"^(?P<base>.+?)_(?P<drive>\d+(?:\.\d+)?)X$", re.IGNORECASE)

_KEYWORDS = {"module", "endmodule", "input", "output", "wire"}


def split_cell_name(cell_name: str) -> Tuple[str, float]:
    """Split ``NAND2_4X`` into ``("NAND2", 4.0)``; plain names get drive 1."""
    match = _DRIVE_RE.match(cell_name)
    if match:
        return match.group("base").upper(), float(match.group("drive"))
    return cell_name.upper(), 1.0


def parse_structural_verilog(text: str) -> GateNetlist:
    """Parse one structural Verilog module into a :class:`GateNetlist`."""
    stripped = _strip_comments(text)
    module_match = _MODULE_RE.search(stripped)
    if not module_match:
        raise FlowError("No module declaration found in the Verilog source")
    module_name = module_match.group(1)
    netlist = GateNetlist(module_name)

    body = stripped[module_match.end():]
    end_index = body.find("endmodule")
    if end_index < 0:
        raise FlowError(f"Module {module_name!r} has no endmodule")
    body = body[:end_index]

    inputs: List[str] = []
    outputs: List[str] = []
    for kind, names in _DECL_RE.findall(body):
        signals = [name.strip() for name in names.replace("\n", " ").split(",") if name.strip()]
        if kind == "input":
            inputs.extend(signals)
        elif kind == "output":
            outputs.extend(signals)

    declaration_spans = [m.span() for m in _DECL_RE.finditer(body)]

    for match in _INSTANCE_RE.finditer(body):
        if any(start <= match.start() < end for start, end in declaration_spans):
            continue
        cell_name, instance_name, ports = match.group(1), match.group(2), match.group(3)
        if cell_name in _KEYWORDS:
            continue
        connections = {pin: net for pin, net in _PORT_RE.findall(ports)}
        if not connections:
            raise FlowError(
                f"Instance {instance_name!r} of {cell_name!r} uses positional ports; "
                "only named ports (.pin(net)) are supported"
            )
        base, drive = split_cell_name(cell_name)
        netlist.add_gate(instance_name, base, connections, drive_strength=drive)

    netlist.declare_io(inputs, outputs)
    netlist.validate()
    return netlist


def _strip_comments(text: str) -> str:
    text = re.sub(r"//.*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


# ---------------------------------------------------------------------------
# Benchmark netlist builders
# ---------------------------------------------------------------------------

def full_adder_netlist(
    name: str = "full_adder",
    internal_drive: float = 2.0,
    output_drive: float = 4.0,
    buffer_outputs: bool = True,
    buffer_drive: float = 9.0,
    suffix: str = "",
) -> GateNetlist:
    """The NAND2 + inverter full adder of Figure 8(a).

    Nine NAND2 gates compute sum and carry; optional output inverter pairs
    (``4X`` + ``9X`` by default) model the drive-strength mix the figure
    shows.  ``suffix`` namespaces nets/instances so several adders can be
    stitched into a ripple-carry chain.
    """
    netlist = GateNetlist(name)
    a, b, cin = f"a{suffix}", f"b{suffix}", f"cin{suffix}"
    sum_net, carry_net = f"sum{suffix}", f"carry{suffix}"

    def net(local: str) -> str:
        return f"{local}{suffix}"

    nand = "NAND2"
    netlist.add_gate(f"g1{suffix}", nand, {"A": a, "B": b, "out": net("n1")}, internal_drive)
    netlist.add_gate(f"g2{suffix}", nand, {"A": a, "B": net("n1"), "out": net("n2")}, internal_drive)
    netlist.add_gate(f"g3{suffix}", nand, {"A": b, "B": net("n1"), "out": net("n3")}, internal_drive)
    netlist.add_gate(f"g4{suffix}", nand, {"A": net("n2"), "B": net("n3"), "out": net("n4")}, internal_drive)
    netlist.add_gate(f"g5{suffix}", nand, {"A": net("n4"), "B": cin, "out": net("n5")}, internal_drive)
    netlist.add_gate(f"g6{suffix}", nand, {"A": net("n4"), "B": net("n5"), "out": net("n6")}, internal_drive)
    netlist.add_gate(f"g7{suffix}", nand, {"A": cin, "B": net("n5"), "out": net("n7")}, internal_drive)

    if buffer_outputs:
        netlist.add_gate(f"g8{suffix}", nand, {"A": net("n6"), "B": net("n7"), "out": net("s0")}, output_drive)
        netlist.add_gate(f"g9{suffix}", nand, {"A": net("n5"), "B": net("n1"), "out": net("c0")}, output_drive)
        netlist.add_gate(f"ginv_s1{suffix}", "INV", {"A": net("s0"), "out": net("s1")}, output_drive)
        netlist.add_gate(f"ginv_s2{suffix}", "INV", {"A": net("s1"), "out": sum_net}, buffer_drive)
        netlist.add_gate(f"ginv_c1{suffix}", "INV", {"A": net("c0"), "out": net("c1")}, output_drive)
        netlist.add_gate(f"ginv_c2{suffix}", "INV", {"A": net("c1"), "out": carry_net}, buffer_drive)
    else:
        netlist.add_gate(f"g8{suffix}", nand, {"A": net("n6"), "B": net("n7"), "out": sum_net}, output_drive)
        netlist.add_gate(f"g9{suffix}", nand, {"A": net("n5"), "B": net("n1"), "out": carry_net}, output_drive)

    netlist.declare_io([a, b, cin], [sum_net, carry_net])
    netlist.validate()
    return netlist


def ripple_carry_adder_netlist(bits: int = 4, name: Optional[str] = None) -> GateNetlist:
    """A ripple-carry adder built by chaining full adders (used as a larger
    flow example beyond the paper's single-bit case study)."""
    if bits < 1:
        raise FlowError("A ripple-carry adder needs at least one bit")
    name = name or f"rca{bits}"
    netlist = GateNetlist(name)
    inputs: List[str] = []
    outputs: List[str] = []
    carry_in = "cin"
    inputs.append(carry_in)
    for bit in range(bits):
        stage = full_adder_netlist(suffix=f"_b{bit}", buffer_outputs=False)
        rename = {
            f"a_b{bit}": f"a{bit}",
            f"b_b{bit}": f"b{bit}",
            f"cin_b{bit}": carry_in,
            f"sum_b{bit}": f"sum{bit}",
            f"carry_b{bit}": f"carry{bit}",
        }
        for gate in stage.gates:
            connections = {
                pin: rename.get(net, net) for pin, net in gate.connections.items()
            }
            netlist.add_gate(gate.name, gate.cell_type, connections, gate.drive_strength)
        inputs.extend([f"a{bit}", f"b{bit}"])
        outputs.append(f"sum{bit}")
        carry_in = f"carry{bit}"
    outputs.append(carry_in)
    netlist.declare_io(inputs, outputs)
    netlist.validate()
    return netlist


def full_adder_verilog(name: str = "full_adder") -> str:
    """Structural Verilog text of the Figure 8 full adder (round-trips
    through :func:`parse_structural_verilog`)."""
    netlist = full_adder_netlist(name=name)
    lines = [f"module {name} (a, b, cin, sum, carry);"]
    lines.append("  input a, b, cin;")
    lines.append("  output sum, carry;")
    wires = [n for n in netlist.nets() if n not in netlist.inputs + netlist.outputs]
    lines.append(f"  wire {', '.join(sorted(wires))};")
    for gate in netlist.gates:
        ports = ", ".join(f".{pin}({net})" for pin, net in gate.connections.items())
        lines.append(f"  {gate.cell_type}_{gate.drive_strength:g}X {gate.name} ({ports});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
