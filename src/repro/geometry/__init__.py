"""Geometric substrate: primitives, transforms, layout database and GDSII."""

from .gds import GDSStructureSummary, GDSWriter, GDSWriterOptions, read_gds_summary
from .layout import Instance, Label, Layout, LayoutCell, Pin
from .primitives import Point, Polygon, Rect, bounding_box, total_area
from .transform import Orientation, Transform

__all__ = [
    "GDSStructureSummary",
    "GDSWriter",
    "GDSWriterOptions",
    "read_gds_summary",
    "Instance",
    "Label",
    "Layout",
    "LayoutCell",
    "Pin",
    "Point",
    "Polygon",
    "Rect",
    "bounding_box",
    "total_area",
    "Orientation",
    "Transform",
]
