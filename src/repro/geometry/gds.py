"""Self-contained GDSII stream writer (and a minimal reader for round-trips).

The paper's design kit ends at GDSII; since no external layout library is
available offline, this module implements the small subset of the GDSII
binary format a standard-cell flow needs: BOUNDARY elements for rectangles,
SREF elements for cell instances and TEXT elements for labels.

Only orthogonal orientations are emitted (``STRANS`` reflection bit plus an
``ANGLE`` of 0/90/180/270 degrees), matching
:class:`repro.geometry.transform.Orientation`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import GDSError
from ..tech.layers import LayerStack
from .layout import Layout, LayoutCell
from .primitives import Point, Rect
from .transform import Orientation

# GDSII record types (subset)
_HEADER = 0x0002
_BGNLIB = 0x0102
_LIBNAME = 0x0206
_UNITS = 0x0305
_ENDLIB = 0x0400
_BGNSTR = 0x0502
_STRNAME = 0x0606
_ENDSTR = 0x0700
_BOUNDARY = 0x0800
_SREF = 0x0A00
_TEXT = 0x0C00
_LAYER = 0x0D02
_DATATYPE = 0x0E02
_XY = 0x1003
_ENDEL = 0x1100
_SNAME = 0x1206
_TEXTTYPE = 0x1602
_STRING = 0x1906
_STRANS = 0x1A01
_ANGLE = 0x1C05

#: A fixed timestamp (the GDSII format requires one; content-addressable
#: output is more useful for tests than wall-clock times).
_FIXED_TIMESTAMP = (2009, 4, 20, 12, 0, 0)

_ORIENTATION_TO_GDS: Dict[Orientation, Tuple[bool, float]] = {
    Orientation.R0: (False, 0.0),
    Orientation.R90: (False, 90.0),
    Orientation.R180: (False, 180.0),
    Orientation.R270: (False, 270.0),
    Orientation.MX: (True, 0.0),
    Orientation.MY: (True, 180.0),
    Orientation.MXR90: (True, 90.0),
    Orientation.MYR90: (True, 270.0),
}


def _record(record_type: int, payload: bytes = b"") -> bytes:
    length = len(payload) + 4
    if length % 2:
        raise GDSError("GDSII record payload must have even length")
    return struct.pack(">HH", length, record_type) + payload


def _ascii_record(record_type: int, text: str) -> bytes:
    data = text.encode("ascii", errors="replace")
    if len(data) % 2:
        data += b"\x00"
    return _record(record_type, data)


def _int2_record(record_type: int, *values: int) -> bytes:
    return _record(record_type, struct.pack(f">{len(values)}h", *values))


def _int4_record(record_type: int, *values: int) -> bytes:
    return _record(record_type, struct.pack(f">{len(values)}i", *values))


def _real8(value: float) -> bytes:
    """Encode a float as an 8-byte GDSII excess-64 real."""
    if value == 0.0:
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return struct.pack(">B", sign | exponent) + mantissa.to_bytes(7, "big")


def _real8_record(record_type: int, *values: float) -> bytes:
    return _record(record_type, b"".join(_real8(v) for v in values))


@dataclass
class GDSWriterOptions:
    """Options controlling GDSII stream-out.

    ``unit_nm`` is the physical size of one layout coordinate unit; layout
    generators work in λ so the default converts through the rule set's
    λ-to-nm factor supplied by the caller.  ``database_unit_m`` is the GDSII
    database unit (1 nm by default).
    """

    unit_nm: float = 1.0
    database_unit_m: float = 1e-9
    default_layer: int = 100
    default_datatype: int = 0


class GDSWriter:
    """Serialise a :class:`~repro.geometry.layout.Layout` to a GDSII file."""

    def __init__(self, layer_stack: Optional[LayerStack] = None,
                 options: Optional[GDSWriterOptions] = None):
        self.layer_stack = layer_stack
        self.options = options or GDSWriterOptions()

    # -- public API -----------------------------------------------------------

    def write(self, layout: Layout, path: str) -> str:
        """Write ``layout`` to ``path`` and return the path."""
        data = self.to_bytes(layout)
        with open(path, "wb") as stream:
            stream.write(data)
        return path

    def to_bytes(self, layout: Layout) -> bytes:
        """Serialise ``layout`` to GDSII bytes."""
        if not layout.cells():
            raise GDSError(f"Layout {layout.name!r} has no cells to stream out")
        chunks: List[bytes] = []
        chunks.append(_int2_record(_HEADER, 600))
        chunks.append(_int2_record(_BGNLIB, *(_FIXED_TIMESTAMP * 2)))
        chunks.append(_ascii_record(_LIBNAME, layout.name.upper()[:32] or "LIB"))
        user_unit = self.options.database_unit_m / 1e-6  # db units per user unit
        chunks.append(_real8_record(_UNITS, user_unit, self.options.database_unit_m))
        for cell in self._cells_bottom_up(layout):
            chunks.append(self._structure(cell))
        chunks.append(_record(_ENDLIB))
        return b"".join(chunks)

    # -- helpers ----------------------------------------------------------------

    def _cells_bottom_up(self, layout: Layout) -> List[LayoutCell]:
        """Cells ordered so that referenced cells appear before referencing
        ones (GDSII readers tolerate any order, but this is tidier)."""
        ordered: List[LayoutCell] = []
        visited: Dict[str, bool] = {}

        def visit(cell: LayoutCell) -> None:
            if visited.get(cell.name):
                return
            visited[cell.name] = True
            for instance in cell.instances:
                if instance.cell_name in layout:
                    visit(layout.cell(instance.cell_name))
            ordered.append(cell)

        for cell in layout.cells():
            visit(cell)
        return ordered

    def _layer_numbers(self, layer_name: str) -> Tuple[int, int]:
        if self.layer_stack is not None and layer_name in self.layer_stack:
            layer = self.layer_stack[layer_name]
            return layer.gds_layer, layer.gds_datatype
        return self.options.default_layer, self.options.default_datatype

    def _to_db(self, value: float) -> int:
        nm = value * self.options.unit_nm
        return int(round(nm * 1e-9 / self.options.database_unit_m))

    def _structure(self, cell: LayoutCell) -> bytes:
        chunks: List[bytes] = []
        chunks.append(_int2_record(_BGNSTR, *(_FIXED_TIMESTAMP * 2)))
        chunks.append(_ascii_record(_STRNAME, _sanitize_name(cell.name)))
        for layer_name, rect in cell.all_shapes():
            chunks.append(self._boundary(layer_name, rect))
        for label in cell.labels:
            chunks.append(self._text(label.layer, label.text, label.position))
        for instance in cell.instances:
            chunks.append(self._sref(instance))
        chunks.append(_record(_ENDSTR))
        return b"".join(chunks)

    def _boundary(self, layer_name: str, rect: Rect) -> bytes:
        layer, datatype = self._layer_numbers(layer_name)
        points = rect.corners() + [rect.corners()[0]]
        coords: List[int] = []
        for point in points:
            coords.append(self._to_db(point.x))
            coords.append(self._to_db(point.y))
        return b"".join(
            [
                _record(_BOUNDARY),
                _int2_record(_LAYER, layer),
                _int2_record(_DATATYPE, datatype),
                _int4_record(_XY, *coords),
                _record(_ENDEL),
            ]
        )

    def _text(self, layer_name: str, text: str, position: Point) -> bytes:
        layer, datatype = self._layer_numbers(layer_name)
        return b"".join(
            [
                _record(_TEXT),
                _int2_record(_LAYER, layer),
                _int2_record(_TEXTTYPE, datatype),
                _int4_record(_XY, self._to_db(position.x), self._to_db(position.y)),
                _ascii_record(_STRING, text[:512]),
                _record(_ENDEL),
            ]
        )

    def _sref(self, instance) -> bytes:
        reflect, angle = _ORIENTATION_TO_GDS[instance.transform.orientation]
        chunks = [
            _record(_SREF),
            _ascii_record(_SNAME, _sanitize_name(instance.cell_name)),
        ]
        if reflect or angle:
            chunks.append(_record(_STRANS, struct.pack(">H", 0x8000 if reflect else 0)))
            chunks.append(_real8_record(_ANGLE, angle))
        chunks.append(
            _int4_record(
                _XY,
                self._to_db(instance.transform.dx),
                self._to_db(instance.transform.dy),
            )
        )
        chunks.append(_record(_ENDEL))
        return b"".join(chunks)


def _sanitize_name(name: str) -> str:
    allowed = []
    for char in name:
        if char.isalnum() or char in "_$":
            allowed.append(char)
        else:
            allowed.append("_")
    sanitized = "".join(allowed)[:32]
    return sanitized or "CELL"


# ---------------------------------------------------------------------------
# Minimal reader (structure names + per-structure element counts) so tests
# can round-trip the writer output without an external dependency.
# ---------------------------------------------------------------------------

@dataclass
class GDSStructureSummary:
    """Summary of one GDSII structure as seen by :func:`read_gds_summary`."""

    name: str
    boundary_count: int = 0
    sref_count: int = 0
    text_count: int = 0
    layers: Tuple[int, ...] = ()


def read_gds_summary(data: bytes) -> Dict[str, GDSStructureSummary]:
    """Parse GDSII bytes and return a per-structure summary.

    Only the records emitted by :class:`GDSWriter` are interpreted; unknown
    records are skipped, which is sufficient for validating round trips.
    """
    offset = 0
    structures: Dict[str, GDSStructureSummary] = {}
    current: Optional[GDSStructureSummary] = None
    current_layers: List[int] = []
    while offset + 4 <= len(data):
        length, record_type = struct.unpack(">HH", data[offset : offset + 4])
        if length < 4:
            raise GDSError(f"Corrupt GDSII record at offset {offset}")
        payload = data[offset + 4 : offset + length]
        offset += length
        if record_type == _STRNAME:
            name = payload.rstrip(b"\x00").decode("ascii")
            current = GDSStructureSummary(name=name)
            current_layers = []
        elif record_type == _ENDSTR and current is not None:
            current.layers = tuple(sorted(set(current_layers)))
            structures[current.name] = current
            current = None
        elif record_type == _BOUNDARY and current is not None:
            current.boundary_count += 1
        elif record_type == _SREF and current is not None:
            current.sref_count += 1
        elif record_type == _TEXT and current is not None:
            current.text_count += 1
        elif record_type == _LAYER and current is not None:
            current_layers.append(struct.unpack(">h", payload)[0])
        elif record_type == _ENDLIB:
            break
    return structures
