"""Hierarchical layout database.

A :class:`LayoutCell` holds rectangles per layer, text labels (pins) and
instances of other cells; a :class:`Layout` is a collection of cells with a
designated top.  The layout generators in :mod:`repro.core` emit cells in λ
units; the GDSII writer converts to database units at stream-out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import GeometryError, LayoutGenerationError
from .primitives import Point, Rect, bounding_box, total_area
from .transform import Orientation, Transform


@dataclass(frozen=True)
class Label:
    """A text label attached to a layer (used for pins and net names)."""

    text: str
    position: Point
    layer: str

    def transformed(self, transform: Transform) -> "Label":
        """Label moved by a placement transform."""
        return Label(self.text, transform.apply_point(self.position), self.layer)


@dataclass(frozen=True)
class Pin:
    """A named terminal of a cell: a shape on a layer plus a direction."""

    name: str
    rect: Rect
    layer: str
    direction: str = "inout"  # "input" | "output" | "inout" | "power"

    def transformed(self, transform: Transform) -> "Pin":
        """Pin moved by a placement transform."""
        return Pin(self.name, transform.apply_rect(self.rect), self.layer, self.direction)


@dataclass(frozen=True)
class Instance:
    """A placed instance of another cell."""

    cell_name: str
    name: str
    transform: Transform


class LayoutCell:
    """A single layout cell: shapes, labels, pins and sub-instances."""

    def __init__(self, name: str):
        if not name:
            raise GeometryError("Cell name must be non-empty")
        self.name = name
        self._shapes: Dict[str, List[Rect]] = {}
        self.labels: List[Label] = []
        self.pins: List[Pin] = []
        self.instances: List[Instance] = []
        #: free-form properties (cell height class, scheme, sizing, ...)
        self.properties: Dict[str, object] = {}

    # -- construction --------------------------------------------------------

    def add_rect(self, layer: str, rect: Rect) -> Rect:
        """Add a rectangle on ``layer`` and return it."""
        if rect.is_degenerate():
            raise GeometryError(
                f"Degenerate rectangle {rect} on layer {layer!r} in cell {self.name!r}"
            )
        self._shapes.setdefault(layer, []).append(rect)
        return rect

    def add_rects(self, layer: str, rects: Iterable[Rect]) -> None:
        """Add several rectangles on ``layer``."""
        for rect in rects:
            self.add_rect(layer, rect)

    def add_label(self, text: str, position: Point, layer: str) -> Label:
        """Attach a text label."""
        label = Label(text, position, layer)
        self.labels.append(label)
        return label

    def add_pin(self, name: str, rect: Rect, layer: str, direction: str = "inout") -> Pin:
        """Declare a pin (also adds its shape and label)."""
        pin = Pin(name, rect, layer, direction)
        self.pins.append(pin)
        self.add_rect(layer, rect)
        self.add_label(name, rect.center, layer)
        return pin

    def add_instance(
        self,
        cell_name: str,
        name: str,
        dx: float = 0.0,
        dy: float = 0.0,
        orientation: Orientation = Orientation.R0,
    ) -> Instance:
        """Place an instance of another cell."""
        instance = Instance(cell_name, name, Transform(dx, dy, orientation))
        self.instances.append(instance)
        return instance

    # -- queries --------------------------------------------------------------

    def layers(self) -> List[str]:
        """Names of layers that carry at least one shape."""
        return sorted(layer for layer, rects in self._shapes.items() if rects)

    def shapes(self, layer: str) -> List[Rect]:
        """Rectangles on ``layer`` (empty list when none)."""
        return list(self._shapes.get(layer, []))

    def all_shapes(self) -> Iterator[Tuple[str, Rect]]:
        """Iterate over ``(layer, rect)`` pairs of local shapes."""
        for layer, rects in self._shapes.items():
            for rect in rects:
                yield layer, rect

    def shape_count(self) -> int:
        """Number of local rectangles."""
        return sum(len(rects) for rects in self._shapes.values())

    def pin(self, name: str) -> Pin:
        """Look up a pin by name."""
        for pin in self.pins:
            if pin.name == name:
                return pin
        raise LayoutGenerationError(
            f"Cell {self.name!r} has no pin {name!r}; pins: {[p.name for p in self.pins]}"
        )

    def bbox(self, layers: Optional[Iterable[str]] = None) -> Optional[Rect]:
        """Bounding box of the local shapes, optionally restricted to
        ``layers`` (instances are not included; use :meth:`Layout.flatten`)."""
        selected: List[Rect] = []
        wanted = set(layers) if layers is not None else None
        for layer, rects in self._shapes.items():
            if wanted is None or layer in wanted:
                selected.extend(rects)
        return bounding_box(selected)

    def boundary(self) -> Rect:
        """The cell abutment boundary: the ``boundary`` layer shape when
        present, else the bounding box of all local shapes."""
        boundary_shapes = self._shapes.get("boundary")
        if boundary_shapes:
            return bounding_box(boundary_shapes)
        box = self.bbox()
        if box is None:
            raise LayoutGenerationError(f"Cell {self.name!r} is empty; no boundary available")
        return box

    def area(self, layer: Optional[str] = None) -> float:
        """Area of the cell.

        Without ``layer`` this is the boundary area (standard-cell area);
        with ``layer`` it is the overlap-free union area of that layer.
        """
        if layer is None:
            box = self.boundary()
            return box.area
        return total_area(self._shapes.get(layer, []))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LayoutCell({self.name!r}, shapes={self.shape_count()}, "
            f"pins={len(self.pins)}, instances={len(self.instances)})"
        )


class Layout:
    """A collection of cells forming a (possibly hierarchical) design."""

    def __init__(self, name: str = "design"):
        self.name = name
        self._cells: Dict[str, LayoutCell] = {}
        self.top_name: Optional[str] = None

    def add_cell(self, cell: LayoutCell, top: bool = False) -> LayoutCell:
        """Register a cell; the first cell added becomes the top unless
        overridden later."""
        if cell.name in self._cells:
            raise GeometryError(f"Duplicate cell {cell.name!r} in layout {self.name!r}")
        self._cells[cell.name] = cell
        if top or self.top_name is None:
            self.top_name = cell.name
        return cell

    def new_cell(self, name: str, top: bool = False) -> LayoutCell:
        """Create, register and return a new empty cell."""
        return self.add_cell(LayoutCell(name), top=top)

    def cell(self, name: str) -> LayoutCell:
        """Look up a cell by name."""
        try:
            return self._cells[name]
        except KeyError:
            raise GeometryError(
                f"Unknown cell {name!r}; cells: {sorted(self._cells)}"
            ) from None

    def cells(self) -> List[LayoutCell]:
        """All cells (unordered)."""
        return list(self._cells.values())

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def top(self) -> LayoutCell:
        """The designated top cell."""
        if self.top_name is None:
            raise GeometryError(f"Layout {self.name!r} has no cells")
        return self.cell(self.top_name)

    def flatten(self, cell_name: Optional[str] = None, max_depth: int = 32) -> LayoutCell:
        """Return a new cell with the full hierarchy under ``cell_name``
        (default: top) flattened into local shapes, labels and pins."""
        root = self.cell(cell_name) if cell_name else self.top()
        flat = LayoutCell(f"{root.name}__flat")
        flat.properties.update(root.properties)
        self._flatten_into(root, flat, Transform(), depth=0, max_depth=max_depth)
        return flat

    def _flatten_into(
        self,
        cell: LayoutCell,
        target: LayoutCell,
        transform: Transform,
        depth: int,
        max_depth: int,
    ) -> None:
        if depth > max_depth:
            raise GeometryError(
                f"Hierarchy deeper than {max_depth} levels (recursive instances?)"
            )
        for layer, rect in cell.all_shapes():
            target.add_rect(layer, transform.apply_rect(rect))
        for label in cell.labels:
            target.labels.append(label.transformed(transform))
        for pin in cell.pins:
            target.pins.append(pin.transformed(transform))
        for instance in cell.instances:
            child = self.cell(instance.cell_name)
            child_transform = transform.compose(instance.transform)
            self._flatten_into(child, target, child_transform, depth + 1, max_depth)
