"""Geometric primitives: points, rectangles and manhattan polygons.

All coordinates are plain floats whose unit is decided by the caller (the
layout generators work in λ and convert to nanometres only when streaming
out GDSII).  Rectangles are axis-aligned and normalised on construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import GeometryError


@dataclass(frozen=True)
class Point:
    """A 2-D point."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return the point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def scaled(self, factor: float) -> "Point":
        """Return the point scaled about the origin."""
        return Point(self.x * factor, self.y * factor)

    def rotated90(self, times: int = 1) -> "Point":
        """Return the point rotated by ``times`` × 90° counter-clockwise
        about the origin."""
        point = self
        for _ in range(times % 4):
            point = Point(-point.y, point.x)
        return point

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> Tuple[float, float]:
        """``(x, y)`` tuple."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle, normalised so ``x1 <= x2`` and ``y1 <= y2``."""

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self):
        if self.x2 < self.x1 or self.y2 < self.y1:
            x1, x2 = sorted((self.x1, self.x2))
            y1, y2 = sorted((self.y1, self.y2))
            object.__setattr__(self, "x1", x1)
            object.__setattr__(self, "x2", x2)
            object.__setattr__(self, "y1", y1)
            object.__setattr__(self, "y2", y2)

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_corners(cls, p1: Point, p2: Point) -> "Rect":
        """Rectangle spanned by two opposite corners."""
        return cls(min(p1.x, p2.x), min(p1.y, p2.y), max(p1.x, p2.x), max(p1.y, p2.y))

    @classmethod
    def from_size(cls, x: float, y: float, width: float, height: float) -> "Rect":
        """Rectangle with lower-left corner ``(x, y)`` and the given size."""
        if width < 0 or height < 0:
            raise GeometryError(f"Rect size must be non-negative, got {width} x {height}")
        return cls(x, y, x + width, y + height)

    @classmethod
    def centered(cls, center: Point, width: float, height: float) -> "Rect":
        """Rectangle of the given size centred on ``center``."""
        if width < 0 or height < 0:
            raise GeometryError(f"Rect size must be non-negative, got {width} x {height}")
        return cls(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    # -- basic properties ----------------------------------------------------

    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    @property
    def lower_left(self) -> Point:
        return Point(self.x1, self.y1)

    @property
    def upper_right(self) -> Point:
        return Point(self.x2, self.y2)

    def is_degenerate(self, tolerance: float = 0.0) -> bool:
        """True when either dimension is no larger than ``tolerance``."""
        return self.width <= tolerance or self.height <= tolerance

    def corners(self) -> List[Point]:
        """The four corners, counter-clockwise from the lower-left."""
        return [
            Point(self.x1, self.y1),
            Point(self.x2, self.y1),
            Point(self.x2, self.y2),
            Point(self.x1, self.y2),
        ]

    # -- geometric operations -------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Rect":
        """Rectangle shifted by ``(dx, dy)``."""
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def scaled(self, factor: float) -> "Rect":
        """Rectangle scaled about the origin."""
        return Rect(self.x1 * factor, self.y1 * factor, self.x2 * factor, self.y2 * factor)

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown (or shrunk for negative margins) on every side."""
        x1, y1 = self.x1 - margin, self.y1 - margin
        x2, y2 = self.x2 + margin, self.y2 + margin
        if x2 < x1 or y2 < y1:
            raise GeometryError(f"Shrinking {self} by {margin} collapses it")
        return Rect(x1, y1, x2, y2)

    def contains_point(self, point: Point, strict: bool = False) -> bool:
        """Whether ``point`` lies inside the rectangle (boundary counts
        unless ``strict``)."""
        if strict:
            return self.x1 < point.x < self.x2 and self.y1 < point.y < self.y2
        return self.x1 <= point.x <= self.x2 and self.y1 <= point.y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies fully inside this rectangle."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def intersects(self, other: "Rect", strict: bool = True) -> bool:
        """Whether the rectangles overlap.  With ``strict`` the overlap must
        have positive area (shared edges do not count)."""
        if strict:
            return (
                self.x1 < other.x2
                and other.x1 < self.x2
                and self.y1 < other.y2
                and other.y1 < self.y2
            )
        return (
            self.x1 <= other.x2
            and other.x1 <= self.x2
            and self.y1 <= other.y2
            and other.y1 <= self.y2
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Overlap rectangle, or ``None`` when the rectangles are disjoint."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 < x1 or y2 < y1:
            return None
        return Rect(x1, y1, x2, y2)

    def union_bbox(self, other: "Rect") -> "Rect":
        """Bounding box of both rectangles."""
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def distance_to(self, other: "Rect") -> float:
        """Minimum separation between the rectangles (0 when they touch or
        overlap)."""
        dx = max(0.0, max(self.x1, other.x1) - min(self.x2, other.x2))
        dy = max(0.0, max(self.y1, other.y1) - min(self.y2, other.y2))
        return math.hypot(dx, dy)


def bounding_box(rects: Iterable[Rect]) -> Optional[Rect]:
    """Bounding box of an iterable of rectangles (``None`` when empty)."""
    box: Optional[Rect] = None
    for rect in rects:
        box = rect if box is None else box.union_bbox(rect)
    return box


def total_area(rects: Sequence[Rect]) -> float:
    """Total area covered by possibly-overlapping rectangles.

    Uses a coordinate-compression sweep so overlaps are counted once; used
    by the area reports where layouts contain abutting shapes.
    """
    rects = [r for r in rects if not r.is_degenerate()]
    if not rects:
        return 0.0
    xs = sorted({r.x1 for r in rects} | {r.x2 for r in rects})
    area = 0.0
    for left, right in zip(xs[:-1], xs[1:]):
        strip_width = right - left
        if strip_width <= 0:
            continue
        intervals = sorted(
            (r.y1, r.y2)
            for r in rects
            if r.x1 <= left and r.x2 >= right
        )
        covered = 0.0
        current_start = None
        current_end = None
        for y1, y2 in intervals:
            if current_start is None:
                current_start, current_end = y1, y2
            elif y1 > current_end:
                covered += current_end - current_start
                current_start, current_end = y1, y2
            else:
                current_end = max(current_end, y2)
        if current_start is not None:
            covered += current_end - current_start
        area += covered * strip_width
    return area


@dataclass(frozen=True)
class Polygon:
    """A simple polygon given by its vertex list (no self-intersections
    expected; not checked for performance)."""

    vertices: Tuple[Point, ...]

    def __post_init__(self):
        if len(self.vertices) < 3:
            raise GeometryError(
                f"A polygon needs at least 3 vertices, got {len(self.vertices)}"
            )

    @classmethod
    def from_rect(cls, rect: Rect) -> "Polygon":
        """Polygon equivalent of a rectangle."""
        return cls(tuple(rect.corners()))

    @property
    def area(self) -> float:
        """Signed-shoelace absolute area."""
        total = 0.0
        points = self.vertices
        for index, point in enumerate(points):
            nxt = points[(index + 1) % len(points)]
            total += point.x * nxt.y - nxt.x * point.y
        return abs(total) / 2.0

    def bbox(self) -> Rect:
        """Axis-aligned bounding box."""
        xs = [p.x for p in self.vertices]
        ys = [p.y for p in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def translated(self, dx: float, dy: float) -> "Polygon":
        """Polygon shifted by ``(dx, dy)``."""
        return Polygon(tuple(p.translated(dx, dy) for p in self.vertices))

    def contains_point(self, point: Point) -> bool:
        """Ray-casting point-in-polygon test (boundary points may go either
        way; adequate for Monte Carlo sampling)."""
        inside = False
        points = self.vertices
        j = len(points) - 1
        for i in range(len(points)):
            pi, pj = points[i], points[j]
            if (pi.y > point.y) != (pj.y > point.y):
                x_cross = (pj.x - pi.x) * (point.y - pi.y) / (pj.y - pi.y) + pi.x
                if point.x < x_cross:
                    inside = not inside
            j = i
        return inside
