"""2-D layout transformations (translation, 90°-rotations, mirroring).

Transformations compose the way cell instances are placed in a layout
hierarchy: rotation/mirror first, then translation, matching the GDSII
``STRANS``/``ANGLE``/``XY`` semantics for the subset we support (orthogonal
orientations only, which is all a standard-cell flow needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import GeometryError
from .primitives import Point, Rect


class Orientation(Enum):
    """The eight orthogonal orientations of a placed cell."""

    R0 = "R0"
    R90 = "R90"
    R180 = "R180"
    R270 = "R270"
    MX = "MX"      # mirror about the x-axis (flip vertically)
    MY = "MY"      # mirror about the y-axis (flip horizontally)
    MXR90 = "MXR90"
    MYR90 = "MYR90"

    @property
    def rotation_quarters(self) -> int:
        """Number of 90° counter-clockwise rotations applied after mirroring."""
        return {
            Orientation.R0: 0,
            Orientation.R90: 1,
            Orientation.R180: 2,
            Orientation.R270: 3,
            Orientation.MX: 0,
            Orientation.MY: 2,
            Orientation.MXR90: 1,
            Orientation.MYR90: 3,
        }[self]

    @property
    def mirrored(self) -> bool:
        """Whether the orientation includes a mirror about the x-axis."""
        return self in (
            Orientation.MX,
            Orientation.MY,
            Orientation.MXR90,
            Orientation.MYR90,
        )


@dataclass(frozen=True)
class Transform:
    """A placement transform: optional mirror about x, an orthogonal
    rotation, then a translation."""

    dx: float = 0.0
    dy: float = 0.0
    orientation: Orientation = Orientation.R0

    def apply_point(self, point: Point) -> Point:
        """Apply the transform to a point."""
        x, y = point.x, point.y
        if self.orientation.mirrored:
            y = -y
        for _ in range(self.orientation.rotation_quarters):
            x, y = -y, x
        return Point(x + self.dx, y + self.dy)

    def apply_rect(self, rect: Rect) -> Rect:
        """Apply the transform to a rectangle (result stays axis-aligned
        because only orthogonal orientations are supported)."""
        p1 = self.apply_point(rect.lower_left)
        p2 = self.apply_point(rect.upper_right)
        return Rect.from_corners(p1, p2)

    def compose(self, inner: "Transform") -> "Transform":
        """Return the transform equivalent to applying ``inner`` first and
        then ``self`` (used to flatten layout hierarchies)."""
        origin = self.apply_point(inner.apply_point(Point(0.0, 0.0)))
        unit_x = self.apply_point(inner.apply_point(Point(1.0, 0.0)))
        unit_y = self.apply_point(inner.apply_point(Point(0.0, 1.0)))
        ex = (unit_x.x - origin.x, unit_x.y - origin.y)
        ey = (unit_y.x - origin.x, unit_y.y - origin.y)
        orientation = _orientation_from_basis(ex, ey)
        return Transform(dx=origin.x, dy=origin.y, orientation=orientation)

    @classmethod
    def translation(cls, dx: float, dy: float) -> "Transform":
        """Pure translation."""
        return cls(dx=dx, dy=dy, orientation=Orientation.R0)


def _orientation_from_basis(ex, ey) -> Orientation:
    """Recover the orientation whose transformed x/y unit vectors are
    ``ex``/``ey``."""
    basis = (round(ex[0]), round(ex[1]), round(ey[0]), round(ey[1]))
    table = {
        (1, 0, 0, 1): Orientation.R0,
        (0, 1, -1, 0): Orientation.R90,
        (-1, 0, 0, -1): Orientation.R180,
        (0, -1, 1, 0): Orientation.R270,
        (1, 0, 0, -1): Orientation.MX,
        (-1, 0, 0, 1): Orientation.MY,
        (0, 1, 1, 0): Orientation.MXR90,
        (0, -1, -1, 0): Orientation.MYR90,
    }
    try:
        return table[basis]
    except KeyError:
        raise GeometryError(f"Non-orthogonal basis {basis} cannot be represented") from None
