"""Mispositioned-CNT immunity analysis (Figure 2 experiments)."""

from .checker import ImmunityChecker, ImmunityReport, TubeAnalysis
from .cnts import CNTInstance, nominal_cnts, random_mispositioned_cnts
from .montecarlo import (
    MonteCarloResult,
    compare_techniques,
    format_comparison,
    run_immunity_trials,
)

__all__ = [
    "ImmunityChecker",
    "ImmunityReport",
    "TubeAnalysis",
    "CNTInstance",
    "nominal_cnts",
    "random_mispositioned_cnts",
    "MonteCarloResult",
    "compare_techniques",
    "format_comparison",
    "run_immunity_trials",
]
