"""Mispositioned-CNT immunity analysis (Figure 2 experiments).

Quick usage
-----------
Single-cell Monte Carlo (batched engine, default)::

    from repro import assemble_cell, standard_gate
    from repro.immunity import run_immunity_trials

    cell = assemble_cell(standard_gate("NAND2"), technique="compact")
    result = run_immunity_trials(cell, trials=2000, cnts_per_trial=4, seed=2009)
    print(result.failure_rate, result.immune)

Figure 2 technique comparison — every technique is attacked by the **same**
defect populations (one shared seed)::

    from repro.immunity import compare_techniques, format_comparison

    print(format_comparison(compare_techniques("NAND2", trials=2000)))

Parameter sweeps over defect density / alignment / metallic residue, with
optional multiprocessing::

    from repro.immunity import sweep, format_sweep

    points = sweep(gates=("NAND2", "NAND3"), cnts_per_trial=(2, 4, 8),
                   max_angle_deg=(5.0, 15.0, 30.0), trials=1000, workers=4)
    print(format_sweep(points))

Seed contract: a fixed seed fully determines every defect population; the
``"batch"`` and ``"loop"`` engines (and any ``chunk_size``) produce
identical :class:`MonteCarloResult` values, and within
:func:`compare_techniques` / :func:`sweep` all techniques at the same
parameter point consume identical underlying defect draws.
"""

from .checker import (
    CODE_HIGH,
    CODE_LOW,
    CODE_UNDRIVEN,
    ImmunityChecker,
    ImmunityReport,
    TubeAnalysis,
)
from .cnts import (
    CNTBatch,
    CNTInstance,
    nominal_cnts,
    random_mispositioned_cnts,
    sample_mispositioned_batch,
)
from .montecarlo import (
    DEFAULT_CHUNK_SIZE,
    MonteCarloResult,
    SweepPoint,
    compare_techniques,
    format_comparison,
    format_sweep,
    run_immunity_trials,
    sweep,
)

__all__ = [
    "CODE_HIGH",
    "CODE_LOW",
    "CODE_UNDRIVEN",
    "ImmunityChecker",
    "ImmunityReport",
    "TubeAnalysis",
    "CNTBatch",
    "CNTInstance",
    "nominal_cnts",
    "random_mispositioned_cnts",
    "sample_mispositioned_batch",
    "DEFAULT_CHUNK_SIZE",
    "MonteCarloResult",
    "SweepPoint",
    "compare_techniques",
    "format_comparison",
    "format_sweep",
    "run_immunity_trials",
    "sweep",
]
