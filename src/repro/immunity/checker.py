"""Functional immunity checking against mispositioned CNTs.

Given a generated cell (its :class:`~repro.core.spec.CellAnnotations`) and a
population of CNTs (nominal plus mispositioned), the checker derives the
logic function the physical layout would actually implement and compares it
with the intended truth table:

1. For every CNT, the contacts, gates and etched regions it crosses are
   collected as intervals along the tube (doping follows the paper's
   process: regions under a gate stay intrinsic and are controlled by that
   gate; everything else is doped and always conducts; etched intervals cut
   the tube).
2. Under a given input assignment, two contacts are electrically connected
   through a tube when every gate interval between them is turned on
   (n-type conducts at 1, p-type at 0) and no etched interval lies between
   them.
3. The union of these connections over all tubes (plus the implicit
   metal connection between same-net contacts) yields the driven value of
   the output: pulled high, pulled low, floating, or a Vdd-Gnd conflict.

A layout is *immune* when, for every input assignment, the perturbed cell
still drives the intended value.  This is exactly the property the paper's
Euler-path layouts guarantee by construction and the vulnerable layouts of
Figure 2(b) lack.

Two evaluation paths implement the same semantics:

* the **batched path** (default) precomputes all assignment-independent
  geometry into NumPy arrays once per checker and evaluates whole defect
  populations — ``trials × assignments`` at a time — with array operations
  (:meth:`ImmunityChecker.pair_conduction` →
  :meth:`ImmunityChecker.adjacency_matrices` →
  :meth:`ImmunityChecker.output_codes`);
* the **reference path** walks each tube's ordered crossings in Python
  (:meth:`ImmunityChecker.truth_table_reference`), preserved as the
  behavioural oracle and for the Monte Carlo compatibility loop.

Both produce identical truth tables for identical populations: the batched
path replicates the scalar slab clipping, the stable midpoint ordering and
the blocking rules bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.spec import CellAnnotations
from ..errors import ImmunityAnalysisError
from ..logic.truthtable import TruthTable
from .cnts import CNTBatch, CNTInstance

#: Output drive codes used by the batched engine: pulled high, pulled low,
#: floating or conflicting drive (matches ``None`` in :class:`TruthTable`).
CODE_HIGH = np.int8(1)
CODE_LOW = np.int8(0)
CODE_UNDRIVEN = np.int8(-1)


@dataclass(frozen=True)
class _TubeCrossing:
    """One region crossed by a tube, at interval [t_start, t_end]."""

    t_start: float
    t_end: float
    kind: str           # "contact" | "gate" | "etch"
    label: str = ""     # net for contacts, signal for gates
    device: str = ""    # gate polarity ("nfet"/"pfet")

    @property
    def midpoint(self) -> float:
        return (self.t_start + self.t_end) / 2.0


@dataclass
class TubeAnalysis:
    """Pre-computed crossings of one CNT (assignment-independent)."""

    cnt: CNTInstance
    crossings: List[_TubeCrossing] = field(default_factory=list)

    def conducting_pairs(self, assignment: Mapping[str, bool]) -> List[Tuple[str, str]]:
        """Net pairs this tube connects under the given input assignment."""
        ordered = sorted(self.crossings, key=lambda c: c.midpoint)
        pairs: List[Tuple[str, str]] = []
        # Walk contacts left to right; a blocking interval (off gate or etch)
        # between two contacts breaks the conduction.  A metallic tube cannot
        # be turned off by a gate — only an etched region cuts it.
        last_contact: Optional[str] = None
        blocked = False
        for crossing in ordered:
            if crossing.kind == "contact":
                if last_contact is not None and not blocked:
                    pairs.append((last_contact, crossing.label))
                last_contact = crossing.label
                blocked = False
            elif crossing.kind == "etch":
                blocked = True
            elif crossing.kind == "gate":
                if not self.cnt.metallic and not _gate_is_on(crossing, assignment):
                    blocked = True
        return pairs


def _gate_is_on(crossing: _TubeCrossing, assignment: Mapping[str, bool]) -> bool:
    try:
        value = bool(assignment[crossing.label])
    except KeyError:
        raise ImmunityAnalysisError(
            f"No value provided for input {crossing.label!r}"
        ) from None
    return value if crossing.device == "nfet" else not value


@dataclass(frozen=True)
class ImmunityReport:
    """Outcome of checking one cell against one CNT population."""

    cell_name: str
    immune: bool
    failing_assignments: Tuple[Dict[str, bool], ...]
    observed: TruthTable
    expected: TruthTable
    nominal_matches: bool
    mispositioned_count: int

    @property
    def failure_count(self) -> int:
        return len(self.failing_assignments)


class _BatchGeometry:
    """Assignment-independent cell geometry packed into NumPy arrays.

    Built once per :class:`ImmunityChecker`; every Monte Carlo batch reuses
    the same rectangle slabs, net indices, contact-pair table and per-gate
    assignment masks.
    """

    def __init__(self, annotations: CellAnnotations, inputs: Tuple[str, ...],
                 vdd_net: str, gnd_net: str, output_net: str):
        contacts = annotations.contacts
        gates = annotations.gates
        etches = annotations.etches

        def rect_array(rects) -> np.ndarray:
            return np.array(
                [[r.x1, r.y1, r.x2, r.y2] for r in rects], dtype=float
            ).reshape(-1, 4)

        self.contact_rects = rect_array([c.rect for c in contacts])
        self.gate_rects = rect_array([g.rect for g in gates])
        self.etch_rects = rect_array([e.rect for e in etches])

        nets = list(dict.fromkeys(
            [c.net for c in contacts] + [vdd_net, gnd_net, output_net]
        ))
        self.nets = nets
        index = {net: i for i, net in enumerate(nets)}
        self.vdd_index = index[vdd_net]
        self.gnd_index = index[gnd_net]
        self.output_index = index[output_net]
        contact_net = np.array([index[c.net] for c in contacts], dtype=np.intp)

        # All unordered contact pairs (i < j); conduction between adjacent
        # contacts in midpoint order closes transitively to exactly this
        # all-pairs relation, so connectivity is unchanged.
        pair_a, pair_b = np.triu_indices(len(contacts), k=1)
        self.pair_a = pair_a
        self.pair_b = pair_b
        self.pair_net_a = contact_net[pair_a]
        self.pair_net_b = contact_net[pair_b]

        # Input assignments enumerated exactly like TruthTable rows:
        # row ``k`` has ``inputs[0]`` as the most significant bit.
        n = len(inputs)
        self.num_assignments = 1 << n
        ks = np.arange(self.num_assignments)
        if n:
            shifts = (n - 1 - np.arange(n))[None, :]
            self.assignment_bits = ((ks[:, None] >> shifts) & 1).astype(bool)
        else:
            self.assignment_bits = np.zeros((1, 0), dtype=bool)

        input_pos = {name: i for i, name in enumerate(inputs)}
        self.gate_signals = [g.signal for g in gates]
        self.gate_known = np.array(
            [g.signal in input_pos for g in gates], dtype=bool
        ).reshape(-1)
        gate_input = np.array(
            [input_pos.get(g.signal, 0) for g in gates], dtype=np.intp
        )
        gate_is_n = np.array([g.device == "nfet" for g in gates], dtype=bool)
        if len(gates):
            signal_values = self.assignment_bits[:, gate_input].T  # (ng, A)
            self.gate_on = np.where(gate_is_n[:, None], signal_values,
                                    ~signal_values)
        else:
            self.gate_on = np.zeros((0, self.num_assignments), dtype=bool)
        # int32 so the off-gate matmul counts cannot wrap, however many
        # gate crossings sit between one contact pair.
        self.gate_off_counts = (~self.gate_on).astype(np.int32)


def _segment_rect_intervals(
    starts: np.ndarray, ends: np.ndarray, rects: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized Liang-Barsky slab clipping of segments against rects.

    Returns ``(valid, t_min, t_max)`` of shapes ``(T, R)`` — the exact
    array counterpart of :meth:`CNTInstance.intersection_interval`,
    including the parallel-slab tolerance (1e-12) and the degenerate-overlap
    cutoff (1e-9), applied with the same operation order so results agree
    bitwise with the scalar path.
    """
    tubes = starts.shape[0]
    count = rects.shape[0]
    if tubes == 0 or count == 0:
        shape = (tubes, count)
        return (np.zeros(shape, dtype=bool), np.zeros(shape), np.zeros(shape))
    t_min = np.zeros((tubes, count))
    t_max = np.ones((tubes, count))
    valid = np.ones((tubes, count), dtype=bool)
    deltas = ends - starts
    for axis, (low_col, high_col) in enumerate(((0, 2), (1, 3))):
        delta = deltas[:, axis:axis + 1]
        origin = starts[:, axis:axis + 1]
        low = rects[None, :, low_col]
        high = rects[None, :, high_col]
        parallel = np.abs(delta) < 1e-12
        with np.errstate(divide="ignore", invalid="ignore"):
            t_low = (low - origin) / delta
            t_high = (high - origin) / delta
        lo = np.minimum(t_low, t_high)
        hi = np.maximum(t_low, t_high)
        inside = (origin >= low) & (origin <= high)
        valid &= np.where(parallel, inside, True)
        lo = np.where(parallel, 0.0, lo)
        hi = np.where(parallel, 1.0, hi)
        t_min = np.maximum(t_min, lo)
        t_max = np.minimum(t_max, hi)
    valid &= (t_max - t_min) > 1e-9
    return valid, t_min, t_max


class ImmunityChecker:
    """Evaluate the logic function a physical CNT population implements.

    Single populations go through :meth:`truth_table` / :meth:`check`;
    Monte Carlo batches (many trials at once) go through
    :meth:`evaluate_batch` on top of the precomputed geometry arrays.
    """

    def __init__(self, annotations: CellAnnotations,
                 vdd_net: str = "vdd", gnd_net: str = "gnd"):
        if not annotations.contacts:
            raise ImmunityAnalysisError(
                f"Cell {annotations.cell_name!r} has no contacts to analyse"
            )
        self.annotations = annotations
        self.vdd_net = vdd_net
        self.gnd_net = gnd_net
        self.output_net = annotations.output_net
        self.inputs = tuple(annotations.inputs) or tuple(annotations.signals())
        self._geometry: Optional[_BatchGeometry] = None

    @property
    def geometry(self) -> _BatchGeometry:
        """The packed assignment-independent geometry (built lazily once)."""
        if self._geometry is None:
            self._geometry = _BatchGeometry(
                self.annotations, self.inputs,
                self.vdd_net, self.gnd_net, self.output_net,
            )
        return self._geometry

    # -- tube-level analysis ------------------------------------------------------

    def analyse_tube(self, cnt: CNTInstance) -> TubeAnalysis:
        """Collect the contact/gate/etch crossings of one tube."""
        analysis = TubeAnalysis(cnt=cnt)
        for contact in self.annotations.contacts:
            interval = cnt.intersection_interval(contact.rect)
            if interval:
                analysis.crossings.append(
                    _TubeCrossing(interval[0], interval[1], "contact", contact.net)
                )
        for gate in self.annotations.gates:
            interval = cnt.intersection_interval(gate.rect)
            if interval:
                analysis.crossings.append(
                    _TubeCrossing(interval[0], interval[1], "gate", gate.signal, gate.device)
                )
        for etch in self.annotations.etches:
            interval = cnt.intersection_interval(etch.rect)
            if interval:
                analysis.crossings.append(
                    _TubeCrossing(interval[0], interval[1], "etch")
                )
        return analysis

    # -- cell-level evaluation -----------------------------------------------------

    def output_value(self, tubes: Sequence[TubeAnalysis],
                     assignment: Mapping[str, bool]) -> Optional[bool]:
        """Value driven on the output under one assignment.

        ``True``/``False`` when the output is cleanly pulled to Vdd/Gnd,
        ``None`` for a floating output or a Vdd-Gnd conflict.
        """
        adjacency: Dict[str, set] = {}

        def connect(net_a: str, net_b: str) -> None:
            adjacency.setdefault(net_a, set()).add(net_b)
            adjacency.setdefault(net_b, set()).add(net_a)

        for tube in tubes:
            for net_a, net_b in tube.conducting_pairs(assignment):
                if net_a != net_b:
                    connect(net_a, net_b)

        reached = self._reachable(self.output_net, adjacency)
        pulled_high = self.vdd_net in reached
        pulled_low = self.gnd_net in reached
        if pulled_high and not pulled_low:
            return True
        if pulled_low and not pulled_high:
            return False
        return None

    @staticmethod
    def _reachable(start: str, adjacency: Dict[str, set]) -> set:
        frontier = [start]
        reached = {start}
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency.get(node, ()):
                if neighbour not in reached:
                    reached.add(neighbour)
                    frontier.append(neighbour)
        return reached

    # -- batched evaluation --------------------------------------------------------

    def pair_conduction(self, batch: CNTBatch) -> np.ndarray:
        """Per-tube contact-pair conduction under every input assignment.

        Returns a ``(tubes, pairs, assignments)`` boolean array:
        ``cond[t, p, k]`` is ``True`` when tube ``t`` connects contact pair
        ``p`` under assignment ``k`` — both contacts crossed, no etched
        interval between them, and every gate between them turned on (the
        gate condition is waived for metallic tubes).
        """
        geometry = self.geometry
        c_valid, c_min, c_max = _segment_rect_intervals(
            batch.starts, batch.ends, geometry.contact_rects
        )
        g_valid, g_min, g_max = _segment_rect_intervals(
            batch.starts, batch.ends, geometry.gate_rects
        )
        e_valid, e_min, e_max = _segment_rect_intervals(
            batch.starts, batch.ends, geometry.etch_rects
        )
        metallic = batch.metallic

        if not geometry.gate_known.all():
            crossed = g_valid[:, ~geometry.gate_known] & ~metallic[:, None]
            if crossed.any():
                unknown = [s for s, known in
                           zip(geometry.gate_signals, geometry.gate_known)
                           if not known]
                raise ImmunityAnalysisError(
                    f"No value provided for input {unknown[0]!r}"
                )

        c_mid = (c_min + c_max) / 2.0
        pair_a, pair_b = geometry.pair_a, geometry.pair_b
        tubes = len(batch)
        pairs = pair_a.shape[0]
        num_assignments = geometry.num_assignments
        if tubes == 0 or pairs == 0:
            return np.zeros((tubes, pairs, num_assignments), dtype=bool)

        pair_valid = c_valid[:, pair_a] & c_valid[:, pair_b]
        lo = np.minimum(c_mid[:, pair_a], c_mid[:, pair_b])[:, :, None]
        hi = np.maximum(c_mid[:, pair_a], c_mid[:, pair_b])[:, :, None]

        # A blocker sits between two contacts when its midpoint falls in
        # [lo, hi): the half-open bound reproduces the stable crossing order
        # of the reference walk (contacts sort before same-midpoint gates).
        def between(valid, t_min, t_max):
            mid = ((t_min + t_max) / 2.0)[:, None, :]
            return (mid >= lo) & (mid < hi) & valid[:, None, :]

        if geometry.etch_rects.shape[0]:
            etch_blocked = between(e_valid, e_min, e_max).any(axis=2)
        else:
            etch_blocked = np.zeros((tubes, pairs), dtype=bool)

        if geometry.gate_rects.shape[0]:
            gate_between = between(g_valid, g_min, g_max)
            off_counts = (
                gate_between.reshape(tubes * pairs, -1).astype(np.int32)
                @ geometry.gate_off_counts
            ).reshape(tubes, pairs, num_assignments)
            gate_blocked = (off_counts > 0) & ~metallic[:, None, None]
        else:
            gate_blocked = np.zeros((tubes, pairs, num_assignments), dtype=bool)

        return (pair_valid & ~etch_blocked)[:, :, None] & ~gate_blocked

    def adjacency_matrices(self, conduction: np.ndarray,
                           groups: int = 1) -> np.ndarray:
        """Net adjacency per trial group and assignment.

        ``conduction`` is the ``(tubes, pairs, assignments)`` output of
        :meth:`pair_conduction` where the tubes of each trial are stored
        contiguously; the result is a ``(groups, assignments, nets, nets)``
        boolean adjacency array.
        """
        geometry = self.geometry
        tubes, pairs, num_assignments = conduction.shape
        if groups <= 0:
            raise ImmunityAnalysisError("groups must be positive")
        if tubes % groups:
            raise ImmunityAnalysisError(
                f"{tubes} tubes do not split into {groups} equal trial groups"
            )
        nets = len(geometry.nets)
        grouped = conduction.reshape(groups, tubes // groups, pairs,
                                     num_assignments).any(axis=1)
        adjacency = np.zeros((groups, num_assignments, nets, nets), dtype=bool)
        for p in range(pairs):
            net_a = geometry.pair_net_a[p]
            net_b = geometry.pair_net_b[p]
            if net_a == net_b:
                continue
            edge = grouped[:, p, :]
            adjacency[:, :, net_a, net_b] |= edge
            adjacency[:, :, net_b, net_a] |= edge
        return adjacency

    def output_codes(self, adjacency: np.ndarray,
                     base_adjacency: Optional[np.ndarray] = None) -> np.ndarray:
        """Output drive codes from per-group adjacency matrices.

        ``base_adjacency`` (e.g. from the nominal tubes, shape
        ``(assignments, nets, nets)``) is OR-ed into every group.  Returns a
        ``(groups, assignments)`` int8 array of ``CODE_HIGH`` / ``CODE_LOW``
        / ``CODE_UNDRIVEN``.
        """
        geometry = self.geometry
        if base_adjacency is not None:
            adjacency = adjacency | base_adjacency[None, :, :, :]
        else:
            adjacency = adjacency.copy()  # the diagonal is set below
        nets = adjacency.shape[-1]
        diagonal = np.arange(nets)
        adjacency[:, :, diagonal, diagonal] = True
        reached = adjacency[:, :, geometry.output_index, :]
        for _ in range(nets - 1):
            expanded = (reached[:, :, :, None] & adjacency).any(axis=2)
            if (expanded == reached).all():
                break
            reached = expanded
        pulled_high = reached[:, :, geometry.vdd_index]
        pulled_low = reached[:, :, geometry.gnd_index]
        return np.where(
            pulled_high & ~pulled_low, CODE_HIGH,
            np.where(pulled_low & ~pulled_high, CODE_LOW, CODE_UNDRIVEN),
        ).astype(np.int8)

    def evaluate_batch(self, batch: CNTBatch, groups: int = 1,
                       base_adjacency: Optional[np.ndarray] = None) -> np.ndarray:
        """Drive codes for ``groups`` equally sized trials in one batch.

        The tubes of each trial must be contiguous in ``batch``.  Returns a
        ``(groups, assignments)`` int8 code array; pass the nominal tubes'
        adjacency as ``base_adjacency`` so every trial includes them.
        """
        conduction = self.pair_conduction(batch)
        adjacency = self.adjacency_matrices(conduction, groups)
        return self.output_codes(adjacency, base_adjacency)

    def base_state(self, batch: CNTBatch) -> Tuple[np.ndarray, np.ndarray]:
        """Adjacency and drive codes of a trial-independent population.

        Used for the nominal tubes: returns ``(adjacency, codes)`` of
        shapes ``(assignments, nets, nets)`` and ``(assignments,)``.
        """
        conduction = self.pair_conduction(batch)
        adjacency = self.adjacency_matrices(conduction, groups=1)
        codes = self.output_codes(adjacency)
        return adjacency[0], codes[0]

    def truth_table_codes(self, table: TruthTable) -> np.ndarray:
        """A truth table as an ``(assignments,)`` int8 code array in this
        checker's assignment order."""
        codes = np.empty(self.geometry.num_assignments, dtype=np.int8)
        bits = self.geometry.assignment_bits
        for k in range(codes.shape[0]):
            assignment = dict(zip(self.inputs, (bool(b) for b in bits[k])))
            value = table.row(assignment)
            codes[k] = CODE_UNDRIVEN if value is None else (
                CODE_HIGH if value else CODE_LOW
            )
        return codes

    def codes_to_truth_table(self, codes: np.ndarray) -> TruthTable:
        """An ``(assignments,)`` code array as a :class:`TruthTable`."""
        outputs = tuple(
            None if code == CODE_UNDRIVEN else bool(code == CODE_HIGH)
            for code in codes
        )
        return TruthTable(self.inputs, outputs)

    # -- single-population API ----------------------------------------------------

    def truth_table(self, cnts: Sequence[CNTInstance]) -> TruthTable:
        """Truth table implemented by the given CNT population (batched)."""
        batch = CNTBatch.from_instances(cnts)
        codes = self.evaluate_batch(batch, groups=1)[0]
        return self.codes_to_truth_table(codes)

    def truth_table_reference(self, cnts: Sequence[CNTInstance]) -> TruthTable:
        """Truth table via the scalar per-tube walk (behavioural oracle)."""
        tubes = [self.analyse_tube(cnt) for cnt in cnts]
        return TruthTable.from_function(
            lambda assignment: self.output_value(tubes, assignment), self.inputs
        )

    def check(self, nominal: Sequence[CNTInstance],
              mispositioned: Sequence[CNTInstance],
              expected: Optional[TruthTable] = None,
              reference: bool = False) -> ImmunityReport:
        """Full immunity check of a CNT population against the intended
        function (defaults to the function the nominal tubes implement).

        ``reference`` selects the scalar walk instead of the batched
        evaluator; both produce identical reports.
        """
        tabulate = self.truth_table_reference if reference else self.truth_table
        nominal_table = tabulate(nominal)
        if expected is None:
            expected = nominal_table
        observed = tabulate(list(nominal) + list(mispositioned))
        failing = tuple(
            assignment
            for assignment, value in observed.rows()
            if value != expected.row(assignment)
        )
        return ImmunityReport(
            cell_name=self.annotations.cell_name,
            immune=not failing,
            failing_assignments=failing,
            observed=observed,
            expected=expected,
            nominal_matches=nominal_table.equivalent_to(expected),
            mispositioned_count=len(mispositioned),
        )
