"""Functional immunity checking against mispositioned CNTs.

Given a generated cell (its :class:`~repro.core.spec.CellAnnotations`) and a
population of CNTs (nominal plus mispositioned), the checker derives the
logic function the physical layout would actually implement and compares it
with the intended truth table:

1. For every CNT, the contacts, gates and etched regions it crosses are
   collected as intervals along the tube (doping follows the paper's
   process: regions under a gate stay intrinsic and are controlled by that
   gate; everything else is doped and always conducts; etched intervals cut
   the tube).
2. Under a given input assignment, two contacts are electrically connected
   through a tube when every gate interval between them is turned on
   (n-type conducts at 1, p-type at 0) and no etched interval lies between
   them.
3. The union of these connections over all tubes (plus the implicit
   metal connection between same-net contacts) yields the driven value of
   the output: pulled high, pulled low, floating, or a Vdd-Gnd conflict.

A layout is *immune* when, for every input assignment, the perturbed cell
still drives the intended value.  This is exactly the property the paper's
Euler-path layouts guarantee by construction and the vulnerable layouts of
Figure 2(b) lack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.spec import CellAnnotations
from ..errors import ImmunityAnalysisError
from ..logic.truthtable import TruthTable
from .cnts import CNTInstance


@dataclass(frozen=True)
class _TubeCrossing:
    """One region crossed by a tube, at interval [t_start, t_end]."""

    t_start: float
    t_end: float
    kind: str           # "contact" | "gate" | "etch"
    label: str = ""     # net for contacts, signal for gates
    device: str = ""    # gate polarity ("nfet"/"pfet")

    @property
    def midpoint(self) -> float:
        return (self.t_start + self.t_end) / 2.0


@dataclass
class TubeAnalysis:
    """Pre-computed crossings of one CNT (assignment-independent)."""

    cnt: CNTInstance
    crossings: List[_TubeCrossing] = field(default_factory=list)

    def conducting_pairs(self, assignment: Mapping[str, bool]) -> List[Tuple[str, str]]:
        """Net pairs this tube connects under the given input assignment."""
        ordered = sorted(self.crossings, key=lambda c: c.midpoint)
        pairs: List[Tuple[str, str]] = []
        # Walk contacts left to right; a blocking interval (off gate or etch)
        # between two contacts breaks the conduction.  A metallic tube cannot
        # be turned off by a gate — only an etched region cuts it.
        last_contact: Optional[str] = None
        blocked = False
        for crossing in ordered:
            if crossing.kind == "contact":
                if last_contact is not None and not blocked:
                    pairs.append((last_contact, crossing.label))
                last_contact = crossing.label
                blocked = False
            elif crossing.kind == "etch":
                blocked = True
            elif crossing.kind == "gate":
                if not self.cnt.metallic and not _gate_is_on(crossing, assignment):
                    blocked = True
        return pairs


def _gate_is_on(crossing: _TubeCrossing, assignment: Mapping[str, bool]) -> bool:
    try:
        value = bool(assignment[crossing.label])
    except KeyError:
        raise ImmunityAnalysisError(
            f"No value provided for input {crossing.label!r}"
        ) from None
    return value if crossing.device == "nfet" else not value


@dataclass(frozen=True)
class ImmunityReport:
    """Outcome of checking one cell against one CNT population."""

    cell_name: str
    immune: bool
    failing_assignments: Tuple[Dict[str, bool], ...]
    observed: TruthTable
    expected: TruthTable
    nominal_matches: bool
    mispositioned_count: int

    @property
    def failure_count(self) -> int:
        return len(self.failing_assignments)


class ImmunityChecker:
    """Evaluate the logic function a physical CNT population implements."""

    def __init__(self, annotations: CellAnnotations,
                 vdd_net: str = "vdd", gnd_net: str = "gnd"):
        if not annotations.contacts:
            raise ImmunityAnalysisError(
                f"Cell {annotations.cell_name!r} has no contacts to analyse"
            )
        self.annotations = annotations
        self.vdd_net = vdd_net
        self.gnd_net = gnd_net
        self.output_net = annotations.output_net
        self.inputs = tuple(annotations.inputs) or tuple(annotations.signals())

    # -- tube-level analysis ------------------------------------------------------

    def analyse_tube(self, cnt: CNTInstance) -> TubeAnalysis:
        """Collect the contact/gate/etch crossings of one tube."""
        analysis = TubeAnalysis(cnt=cnt)
        for contact in self.annotations.contacts:
            interval = cnt.intersection_interval(contact.rect)
            if interval:
                analysis.crossings.append(
                    _TubeCrossing(interval[0], interval[1], "contact", contact.net)
                )
        for gate in self.annotations.gates:
            interval = cnt.intersection_interval(gate.rect)
            if interval:
                analysis.crossings.append(
                    _TubeCrossing(interval[0], interval[1], "gate", gate.signal, gate.device)
                )
        for etch in self.annotations.etches:
            interval = cnt.intersection_interval(etch.rect)
            if interval:
                analysis.crossings.append(
                    _TubeCrossing(interval[0], interval[1], "etch")
                )
        return analysis

    # -- cell-level evaluation -----------------------------------------------------

    def output_value(self, tubes: Sequence[TubeAnalysis],
                     assignment: Mapping[str, bool]) -> Optional[bool]:
        """Value driven on the output under one assignment.

        ``True``/``False`` when the output is cleanly pulled to Vdd/Gnd,
        ``None`` for a floating output or a Vdd-Gnd conflict.
        """
        adjacency: Dict[str, set] = {}

        def connect(net_a: str, net_b: str) -> None:
            adjacency.setdefault(net_a, set()).add(net_b)
            adjacency.setdefault(net_b, set()).add(net_a)

        for tube in tubes:
            for net_a, net_b in tube.conducting_pairs(assignment):
                if net_a != net_b:
                    connect(net_a, net_b)

        reached = self._reachable(self.output_net, adjacency)
        pulled_high = self.vdd_net in reached
        pulled_low = self.gnd_net in reached
        if pulled_high and not pulled_low:
            return True
        if pulled_low and not pulled_high:
            return False
        return None

    @staticmethod
    def _reachable(start: str, adjacency: Dict[str, set]) -> set:
        frontier = [start]
        reached = {start}
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency.get(node, ()):
                if neighbour not in reached:
                    reached.add(neighbour)
                    frontier.append(neighbour)
        return reached

    def truth_table(self, cnts: Sequence[CNTInstance]) -> TruthTable:
        """Truth table implemented by the given CNT population."""
        tubes = [self.analyse_tube(cnt) for cnt in cnts]
        return TruthTable.from_function(
            lambda assignment: self.output_value(tubes, assignment), self.inputs
        )

    def check(self, nominal: Sequence[CNTInstance],
              mispositioned: Sequence[CNTInstance],
              expected: Optional[TruthTable] = None) -> ImmunityReport:
        """Full immunity check of a CNT population against the intended
        function (defaults to the function the nominal tubes implement)."""
        nominal_table = self.truth_table(nominal)
        if expected is None:
            expected = nominal_table
        observed = self.truth_table(list(nominal) + list(mispositioned))
        failing = tuple(
            assignment
            for assignment, value in observed.rows()
            if value != expected.row(assignment)
        )
        return ImmunityReport(
            cell_name=self.annotations.cell_name,
            immune=not failing,
            failing_assignments=failing,
            observed=observed,
            expected=expected,
            nominal_matches=nominal_table.equivalent_to(expected),
            mispositioned_count=len(mispositioned),
        )
