"""Carbon-nanotube instances for the mispositioning analysis.

A CNT is modelled as a straight line segment in the cell plane.  Nominal
(intended) CNTs run exactly along the CNT growth axis underneath the gates;
mispositioned CNTs start anywhere in the cell and deviate from the growth
axis by a small random angle, which is the defect mechanism of Section III
(and of Patil et al. [6]): such a tube can wander between device columns
and, if nothing stops it, connect two metal contacts without passing under
the gate that is supposed to control it.

Two representations are provided:

* :class:`CNTInstance` — one tube as a pair of :class:`Point` objects, the
  unit the scalar checker walks over.
* :class:`CNTBatch` — a whole population as ``(n, 2)`` NumPy coordinate
  arrays, the unit the batched Monte Carlo engine consumes.

:func:`sample_mispositioned_batch` draws entire populations with vectorized
NumPy sampling while consuming the underlying uniform stream in exactly the
same order as the historical one-tube-at-a-time loop (``x``, ``y``,
``angle``, ``metallic`` per tube), so a fixed seed produces bit-identical
defect populations on both the batched and the legacy code paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ImmunityAnalysisError
from ..geometry.primitives import Point, Rect
from ..core.spec import CellAnnotations


@dataclass(frozen=True)
class CNTInstance:
    """One carbon nanotube, as a straight segment from ``start`` to ``end``.

    ``metallic`` marks a tube whose chirality makes it conduct regardless of
    any gate above it.  The paper assumes metallic tubes are removed during
    manufacturing (Section II); the flag exists so that assumption can be
    stress-tested by injecting residual metallic tubes into the immunity
    analysis.
    """

    start: Point
    end: Point
    mispositioned: bool = False
    metallic: bool = False

    @property
    def length(self) -> float:
        return self.start.distance_to(self.end)

    def point_at(self, t: float) -> Point:
        """Point at normalised parameter ``t`` in [0, 1]."""
        return Point(
            self.start.x + t * (self.end.x - self.start.x),
            self.start.y + t * (self.end.y - self.start.y),
        )

    def intersection_interval(self, rect: Rect) -> Optional[Tuple[float, float]]:
        """The parameter interval of the segment inside ``rect`` (or ``None``).

        Standard slab clipping (Liang-Barsky); degenerate overlaps shorter
        than 1e-9 of the segment are ignored.
        """
        dx = self.end.x - self.start.x
        dy = self.end.y - self.start.y
        t_min, t_max = 0.0, 1.0
        for delta, origin, low, high in (
            (dx, self.start.x, rect.x1, rect.x2),
            (dy, self.start.y, rect.y1, rect.y2),
        ):
            if abs(delta) < 1e-12:
                if origin < low or origin > high:
                    return None
                continue
            t_low = (low - origin) / delta
            t_high = (high - origin) / delta
            if t_low > t_high:
                t_low, t_high = t_high, t_low
            t_min = max(t_min, t_low)
            t_max = min(t_max, t_high)
            if t_min > t_max:
                return None
        if t_max - t_min <= 1e-9:
            return None
        return (t_min, t_max)


@dataclass(frozen=True, eq=False)
class CNTBatch:
    """A population of CNTs as flat coordinate arrays.

    ``starts`` and ``ends`` are ``(n, 2)`` float arrays of segment
    endpoints; ``metallic`` and ``mispositioned`` are ``(n,)`` boolean
    arrays (a scalar bool broadcasts to every tube).  This is the
    representation the batched immunity engine evaluates directly; it
    round-trips losslessly to a list of :class:`CNTInstance`.

    Equality is element-wise over the arrays (the dataclass-generated
    ``__eq__`` would raise on ndarray fields); batches are unhashable.
    """

    starts: np.ndarray
    ends: np.ndarray
    metallic: np.ndarray
    mispositioned: np.ndarray = True

    def __post_init__(self):
        if self.starts.shape != self.ends.shape or self.starts.ndim != 2 \
                or self.starts.shape[1] != 2:
            raise ImmunityAnalysisError(
                f"CNTBatch needs (n, 2) start/end arrays, got "
                f"{self.starts.shape} and {self.ends.shape}"
            )
        count = self.starts.shape[0]
        for name in ("metallic", "mispositioned"):
            if isinstance(getattr(self, name), (bool, np.bool_)):
                object.__setattr__(
                    self, name,
                    np.full(count, bool(getattr(self, name)), dtype=bool),
                )
        for name in ("metallic", "mispositioned"):
            if getattr(self, name).shape != (count,):
                raise ImmunityAnalysisError(
                    f"CNTBatch {name} flags must be ({count},), "
                    f"got {getattr(self, name).shape}"
                )

    def __len__(self) -> int:
        return self.starts.shape[0]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CNTBatch):
            return NotImplemented
        return (
            np.array_equal(self.starts, other.starts)
            and np.array_equal(self.ends, other.ends)
            and np.array_equal(self.metallic, other.metallic)
            and np.array_equal(self.mispositioned, other.mispositioned)
        )

    __hash__ = None

    @classmethod
    def empty(cls) -> "CNTBatch":
        return cls(np.zeros((0, 2)), np.zeros((0, 2)), np.zeros(0, dtype=bool))

    @classmethod
    def from_instances(cls, cnts: Sequence[CNTInstance]) -> "CNTBatch":
        """Pack a sequence of tubes into coordinate arrays."""
        starts = np.array([[c.start.x, c.start.y] for c in cnts], dtype=float)
        ends = np.array([[c.end.x, c.end.y] for c in cnts], dtype=float)
        metallic = np.array([c.metallic for c in cnts], dtype=bool)
        mispositioned = np.array([c.mispositioned for c in cnts], dtype=bool)
        return cls(starts.reshape(-1, 2), ends.reshape(-1, 2), metallic,
                   mispositioned=mispositioned)

    def to_instances(self) -> List[CNTInstance]:
        """Unpack into per-tube :class:`CNTInstance` objects."""
        return [
            CNTInstance(
                Point(float(self.starts[i, 0]), float(self.starts[i, 1])),
                Point(float(self.ends[i, 0]), float(self.ends[i, 1])),
                mispositioned=bool(self.mispositioned[i]),
                metallic=bool(self.metallic[i]),
            )
            for i in range(len(self))
        ]


def nominal_cnts(
    annotations: CellAnnotations,
    pitch: float = 1.0,
    axis: str = "y",
) -> List[CNTInstance]:
    """The intended, perfectly aligned CNTs of a cell.

    CNTs are placed at ``pitch`` (λ) across every lane where a gate exists,
    spanning the full extent of the active region that contains the gate
    along the growth ``axis`` (``"y"`` for the raw network columns, ``"x"``
    for assembled standard cells, whose strips run horizontally).
    """
    if pitch <= 0:
        raise ImmunityAnalysisError("pitch must be positive")
    if axis not in ("x", "y"):
        raise ImmunityAnalysisError(f"axis must be 'x' or 'y', got {axis!r}")

    cnts: List[CNTInstance] = []
    for active in annotations.actives:
        lanes = _gate_lanes_in_active(annotations, active.rect, axis)
        for lane_start, lane_end in lanes:
            position = lane_start + pitch / 2.0
            while position < lane_end:
                if axis == "y":
                    cnts.append(
                        CNTInstance(
                            Point(position, active.rect.y1),
                            Point(position, active.rect.y2),
                        )
                    )
                else:
                    cnts.append(
                        CNTInstance(
                            Point(active.rect.x1, position),
                            Point(active.rect.x2, position),
                        )
                    )
                position += pitch
    if not cnts:
        raise ImmunityAnalysisError(
            f"Cell {annotations.cell_name!r} produced no nominal CNTs "
            "(no gates over active regions?)"
        )
    return cnts


def _gate_lanes_in_active(annotations: CellAnnotations, active: Rect,
                          axis: str) -> List[Tuple[float, float]]:
    """Across-axis intervals covered by gates inside one active region."""
    intervals: List[Tuple[float, float]] = []
    for gate in annotations.gates:
        overlap = gate.rect.intersection(active)
        if overlap is None or overlap.is_degenerate(1e-9):
            continue
        if axis == "y":
            intervals.append((overlap.x1, overlap.x2))
        else:
            intervals.append((overlap.y1, overlap.y2))
    return _merge_intervals(intervals)


def _merge_intervals(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    if not intervals:
        return []
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1] + 1e-9:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def sample_mispositioned_batch(
    annotations: CellAnnotations,
    count: int,
    rng: np.random.Generator,
    max_angle_deg: float = 15.0,
    axis: str = "y",
    region: Optional[Rect] = None,
    metallic_fraction: float = 0.0,
) -> CNTBatch:
    """Draw ``count`` mispositioned CNTs as one vectorized batch.

    Each tube passes through a uniformly random point of the cell (or the
    supplied ``region``) at an angle drawn uniformly within
    ``±max_angle_deg`` of the growth axis, and is long enough to span the
    whole cell, matching the "mispositioned but still roughly aligned"
    defects the paper considers.  ``metallic_fraction`` of the tubes are
    additionally marked metallic (the paper assumes this fraction is driven
    to zero by processing; non-zero values stress-test that assumption).

    The four uniform draws of each tube (``x``, ``y``, ``angle``,
    ``metallic``) are consumed contiguously from ``rng``, so the values are
    bit-identical to drawing the tubes one at a time — the seed contract the
    Monte Carlo compatibility path relies on.
    """
    if not 0.0 <= metallic_fraction <= 1.0:
        raise ImmunityAnalysisError("metallic_fraction must be within [0, 1]")
    if count < 0:
        raise ImmunityAnalysisError("count must be non-negative")
    if axis not in ("x", "y"):
        raise ImmunityAnalysisError(f"axis must be 'x' or 'y', got {axis!r}")
    if region is None:
        region = _cell_extent(annotations)
    span = math.hypot(region.width, region.height) * 1.2

    draws = rng.uniform(size=(count, 4))
    # ``low + (high - low) * u`` is exactly what Generator.uniform(low, high)
    # computes, keeping the scaled values bitwise equal to per-tube draws.
    x = region.x1 + (region.x2 - region.x1) * draws[:, 0]
    y = region.y1 + (region.y2 - region.y1) * draws[:, 1]
    angle_deg = -max_angle_deg + (max_angle_deg - -max_angle_deg) * draws[:, 2]
    angle = np.radians(angle_deg)
    if axis == "y":
        direction = np.column_stack([np.sin(angle), np.cos(angle)])
    else:
        direction = np.column_stack([np.cos(angle), np.sin(angle)])
    half = span / 2.0
    centers = np.column_stack([x, y])
    starts = centers - direction * half
    ends = centers + direction * half
    metallic = draws[:, 3] < metallic_fraction
    return CNTBatch(starts, ends, metallic, mispositioned=True)


def random_mispositioned_cnts(
    annotations: CellAnnotations,
    count: int,
    rng: np.random.Generator,
    max_angle_deg: float = 15.0,
    axis: str = "y",
    region: Optional[Rect] = None,
    metallic_fraction: float = 0.0,
) -> List[CNTInstance]:
    """Draw ``count`` mispositioned CNTs as :class:`CNTInstance` objects.

    Thin wrapper over :func:`sample_mispositioned_batch` kept for the scalar
    checker API and existing callers; both entry points consume the random
    stream identically.
    """
    batch = sample_mispositioned_batch(
        annotations, count, rng, max_angle_deg=max_angle_deg, axis=axis,
        region=region, metallic_fraction=metallic_fraction,
    )
    return batch.to_instances()


def _cell_extent(annotations: CellAnnotations) -> Rect:
    rects = [a.rect for a in annotations.actives]
    rects += [c.rect for c in annotations.contacts]
    rects += [g.rect for g in annotations.gates]
    if not rects:
        raise ImmunityAnalysisError(
            f"Cell {annotations.cell_name!r} has no annotated geometry"
        )
    extent = rects[0]
    for rect in rects[1:]:
        extent = extent.union_bbox(rect)
    return extent
