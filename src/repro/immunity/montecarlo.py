"""Monte Carlo mispositioned-CNT immunity experiments (Figure 2).

The paper's qualitative claim — the vulnerable layout of Figure 2(b) fails
under mispositioned CNTs while the immune layouts (etched-region baseline
and the new compact technique) keep 100 % functionality — is quantified
here: for each layout technique a population of random mispositioned CNTs
is injected repeatedly and the fraction of trials whose truth table is
corrupted is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.spec import CellAnnotations, get_annotations
from ..core.standard_cell import StandardCell, assemble_cell
from ..errors import ImmunityAnalysisError
from ..logic.functions import standard_gate
from ..logic.network import GateNetworks
from ..tech.lambda_rules import CNFET_RULES, DesignRules
from .checker import ImmunityChecker, ImmunityReport
from .cnts import nominal_cnts, random_mispositioned_cnts


@dataclass(frozen=True)
class MonteCarloResult:
    """Aggregate outcome of one immunity Monte Carlo run."""

    cell_name: str
    technique: str
    trials: int
    cnts_per_trial: int
    failures: int
    nominal_matches: bool

    @property
    def failure_rate(self) -> float:
        """Fraction of trials whose logic function was corrupted."""
        if self.trials == 0:
            return 0.0
        return self.failures / self.trials

    @property
    def immune(self) -> bool:
        """100 % functional immunity across all trials."""
        return self.failures == 0 and self.nominal_matches


def run_immunity_trials(
    cell: StandardCell,
    trials: int = 200,
    cnts_per_trial: int = 4,
    max_angle_deg: float = 15.0,
    seed: int = 2009,
    cnt_pitch: float = 1.0,
    metallic_fraction: float = 0.0,
) -> MonteCarloResult:
    """Monte Carlo immunity analysis of one assembled standard cell.

    Assembled cells have their CNT strips running horizontally, so the
    growth axis is ``x``.  ``metallic_fraction`` marks a fraction of the
    injected defect tubes as metallic — the paper assumes this is zero after
    processing (Section II); raising it shows how quickly that assumption
    matters, because no layout technique can gate a metallic tube off.
    """
    annotations = cell.annotations()
    return _run_trials(
        annotations=annotations,
        expected_gate=cell.gate,
        technique=cell.technique,
        axis="x",
        trials=trials,
        cnts_per_trial=cnts_per_trial,
        max_angle_deg=max_angle_deg,
        seed=seed,
        cnt_pitch=cnt_pitch,
        metallic_fraction=metallic_fraction,
    )


def _run_trials(
    annotations: CellAnnotations,
    expected_gate: Optional[GateNetworks],
    technique: str,
    axis: str,
    trials: int,
    cnts_per_trial: int,
    max_angle_deg: float,
    seed: int,
    cnt_pitch: float,
    metallic_fraction: float = 0.0,
) -> MonteCarloResult:
    if trials <= 0:
        raise ImmunityAnalysisError("trials must be positive")
    checker = ImmunityChecker(annotations)
    nominal = nominal_cnts(annotations, pitch=cnt_pitch, axis=axis)
    expected = expected_gate.expected_truth_table() if expected_gate else None
    rng = np.random.default_rng(seed)

    nominal_report = checker.check(nominal, [], expected=expected)
    failures = 0
    for _ in range(trials):
        strays = random_mispositioned_cnts(
            annotations, cnts_per_trial, rng, max_angle_deg=max_angle_deg, axis=axis,
            metallic_fraction=metallic_fraction,
        )
        report = checker.check(nominal, strays, expected=expected)
        if not report.immune:
            failures += 1

    return MonteCarloResult(
        cell_name=annotations.cell_name,
        technique=technique,
        trials=trials,
        cnts_per_trial=cnts_per_trial,
        failures=failures,
        nominal_matches=nominal_report.nominal_matches and nominal_report.immune,
    )


def compare_techniques(
    gate_name: str = "NAND2",
    techniques: Sequence[str] = ("vulnerable", "baseline", "compact"),
    trials: int = 200,
    cnts_per_trial: int = 4,
    unit_width: float = 4.0,
    scheme: int = 1,
    seed: int = 2009,
    rules: DesignRules = CNFET_RULES,
) -> Dict[str, MonteCarloResult]:
    """Run the Figure 2 experiment: the same gate laid out with each
    technique, attacked by the same Monte Carlo CNT defect model."""
    results: Dict[str, MonteCarloResult] = {}
    for index, technique in enumerate(techniques):
        gate = standard_gate(gate_name)
        cell = assemble_cell(
            gate, technique=technique, scheme=scheme, unit_width=unit_width, rules=rules
        )
        results[technique] = run_immunity_trials(
            cell,
            trials=trials,
            cnts_per_trial=cnts_per_trial,
            seed=seed + index,
        )
    return results


def format_comparison(results: Dict[str, MonteCarloResult]) -> str:
    """Render a technique-vs-failure-rate table."""
    header = f"{'technique':<12} {'trials':>7} {'failures':>9} {'failure rate':>13} {'immune':>7}"
    lines = [header, "-" * len(header)]
    for technique, result in results.items():
        lines.append(
            f"{technique:<12} {result.trials:>7} {result.failures:>9} "
            f"{result.failure_rate * 100:>12.1f}% {str(result.immune):>7}"
        )
    return "\n".join(lines)
