"""Monte Carlo mispositioned-CNT immunity experiments (Figure 2).

The paper's qualitative claim — the vulnerable layout of Figure 2(b) fails
under mispositioned CNTs while the immune layouts (etched-region baseline
and the new compact technique) keep 100 % functionality — is quantified
here: for each layout technique a population of random mispositioned CNTs
is injected repeatedly and the fraction of trials whose truth table is
corrupted is reported.

Engines
-------
Two engines implement identical trial semantics:

* ``engine="batch"`` (default) samples whole defect populations at once and
  evaluates every trial × input-assignment with NumPy array operations via
  :meth:`~repro.immunity.checker.ImmunityChecker.evaluate_batch`, in memory
  chunks of ``chunk_size`` trials;
* ``engine="loop"`` is the compatibility path: one trial at a time through
  the scalar reference checker, exactly as the original implementation.

Both consume the random stream in the same per-tube order, so a fixed seed
produces identical :class:`MonteCarloResult` values on either engine (and
for any ``chunk_size``).

Seed contract
-------------
:func:`compare_techniques` attacks **every technique with the same defect
model**: each technique's generator is built from the same seed (one common
``SeedSequence``), so trial ``t`` consumes the identical underlying uniform
draws for every technique.  The raw draws are scaled to each cell's own
bounding box, which is what "the same Monte Carlo CNT defect model" means
for cells of different sizes.  :func:`sweep` extends the contract: points
that differ only in ``technique`` share one spawned child sequence, while
distinct parameter combinations get independent child sequences.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.spec import CellAnnotations
from ..core.standard_cell import StandardCell, assemble_cell
from ..errors import ImmunityAnalysisError
from ..logic.functions import standard_gate
from ..logic.network import GateNetworks
from ..tech.lambda_rules import CNFET_RULES, DesignRules
from .checker import ImmunityChecker
from .cnts import (
    CNTBatch,
    nominal_cnts,
    random_mispositioned_cnts,
    sample_mispositioned_batch,
)

#: Trials evaluated per vectorized chunk; bounds peak memory while keeping
#: the arrays large enough to amortise dispatch overhead.
DEFAULT_CHUNK_SIZE = 512

#: Seed-like values accepted wherever a Monte Carlo seed is expected.
SeedLike = Union[int, Sequence[int], np.random.SeedSequence]

#: Reserved spawn-key element under which :func:`sweep` derives its child
#: sequences, far outside the counter range ``SeedSequence.spawn`` uses, so
#: sweep children never collide with children the caller spawns themselves.
_SWEEP_SPAWN_KEY = 1 << 31


@dataclass(frozen=True)
class MonteCarloResult:
    """Aggregate outcome of one immunity Monte Carlo run."""

    cell_name: str
    technique: str
    trials: int
    cnts_per_trial: int
    failures: int
    nominal_matches: bool

    @property
    def failure_rate(self) -> float:
        """Fraction of trials whose logic function was corrupted."""
        if self.trials == 0:
            return 0.0
        return self.failures / self.trials

    @property
    def immune(self) -> bool:
        """100 % functional immunity across all trials."""
        return self.failures == 0 and self.nominal_matches


def run_immunity_trials(
    cell: StandardCell,
    trials: int = 200,
    cnts_per_trial: int = 4,
    max_angle_deg: float = 15.0,
    seed: SeedLike = 2009,
    cnt_pitch: float = 1.0,
    metallic_fraction: float = 0.0,
    engine: str = "batch",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> MonteCarloResult:
    """Monte Carlo immunity analysis of one assembled standard cell.

    Assembled cells have their CNT strips running horizontally, so the
    growth axis is ``x``.  ``metallic_fraction`` marks a fraction of the
    injected defect tubes as metallic — the paper assumes this is zero after
    processing (Section II); raising it shows how quickly that assumption
    matters, because no layout technique can gate a metallic tube off.

    ``engine`` selects the vectorized ``"batch"`` evaluator or the scalar
    ``"loop"`` compatibility path; results are identical for a fixed seed.
    """
    annotations = cell.annotations()
    return _run_trials(
        annotations=annotations,
        expected_gate=cell.gate,
        technique=cell.technique,
        axis="x",
        trials=trials,
        cnts_per_trial=cnts_per_trial,
        max_angle_deg=max_angle_deg,
        seed=seed,
        cnt_pitch=cnt_pitch,
        metallic_fraction=metallic_fraction,
        engine=engine,
        chunk_size=chunk_size,
    )


def _run_trials(
    annotations: CellAnnotations,
    expected_gate: Optional[GateNetworks],
    technique: str,
    axis: str,
    trials: int,
    cnts_per_trial: int,
    max_angle_deg: float,
    seed: SeedLike,
    cnt_pitch: float,
    metallic_fraction: float = 0.0,
    engine: str = "batch",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> MonteCarloResult:
    if trials <= 0:
        raise ImmunityAnalysisError("trials must be positive")
    if engine not in ("batch", "loop"):
        raise ImmunityAnalysisError(
            f"engine must be 'batch' or 'loop', got {engine!r}"
        )
    if chunk_size <= 0:
        raise ImmunityAnalysisError("chunk_size must be positive")
    checker = ImmunityChecker(annotations)
    nominal = nominal_cnts(annotations, pitch=cnt_pitch, axis=axis)
    expected = expected_gate.expected_truth_table() if expected_gate else None
    rng = np.random.default_rng(seed)

    if engine == "loop":
        failures, nominal_matches = _loop_trials(
            checker, annotations, nominal, expected, rng, trials,
            cnts_per_trial, max_angle_deg, axis, metallic_fraction,
        )
    else:
        failures, nominal_matches = _batched_trials(
            checker, annotations, nominal, expected, rng, trials,
            cnts_per_trial, max_angle_deg, axis, metallic_fraction, chunk_size,
        )

    return MonteCarloResult(
        cell_name=annotations.cell_name,
        technique=technique,
        trials=trials,
        cnts_per_trial=cnts_per_trial,
        failures=failures,
        nominal_matches=nominal_matches,
    )


def _loop_trials(
    checker: ImmunityChecker,
    annotations: CellAnnotations,
    nominal,
    expected,
    rng: np.random.Generator,
    trials: int,
    cnts_per_trial: int,
    max_angle_deg: float,
    axis: str,
    metallic_fraction: float,
) -> Tuple[int, bool]:
    """The original per-trial loop over the scalar reference checker."""
    nominal_report = checker.check(nominal, [], expected=expected,
                                   reference=True)
    failures = 0
    for _ in range(trials):
        strays = random_mispositioned_cnts(
            annotations, cnts_per_trial, rng, max_angle_deg=max_angle_deg,
            axis=axis, metallic_fraction=metallic_fraction,
        )
        report = checker.check(nominal, strays, expected=expected,
                               reference=True)
        if not report.immune:
            failures += 1
    return failures, nominal_report.nominal_matches and nominal_report.immune


def _batched_trials(
    checker: ImmunityChecker,
    annotations: CellAnnotations,
    nominal,
    expected,
    rng: np.random.Generator,
    trials: int,
    cnts_per_trial: int,
    max_angle_deg: float,
    axis: str,
    metallic_fraction: float,
    chunk_size: int,
) -> Tuple[int, bool]:
    """All trials through the vectorized evaluator, in bounded chunks."""
    base_adjacency, nominal_codes = checker.base_state(
        CNTBatch.from_instances(nominal)
    )
    if expected is not None:
        inputs_match = set(expected.inputs) == set(checker.inputs)
        expected_codes = checker.truth_table_codes(expected)
    else:
        inputs_match = True
        expected_codes = nominal_codes
    nominal_matches = inputs_match and bool(
        (nominal_codes == expected_codes).all()
    )

    failures = 0
    remaining = trials
    while remaining:
        chunk = min(chunk_size, remaining)
        batch = sample_mispositioned_batch(
            annotations, chunk * cnts_per_trial, rng,
            max_angle_deg=max_angle_deg, axis=axis,
            metallic_fraction=metallic_fraction,
        )
        codes = checker.evaluate_batch(batch, groups=chunk,
                                       base_adjacency=base_adjacency)
        failures += int((codes != expected_codes[None, :]).any(axis=1).sum())
        remaining -= chunk
    return failures, nominal_matches


def compare_techniques(
    gate_name: str = "NAND2",
    techniques: Sequence[str] = ("vulnerable", "baseline", "compact"),
    trials: int = 200,
    cnts_per_trial: int = 4,
    unit_width: float = 4.0,
    scheme: int = 1,
    seed: SeedLike = 2009,
    rules: DesignRules = CNFET_RULES,
    engine: str = "batch",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Dict[str, MonteCarloResult]:
    """Run the Figure 2 experiment: the same gate laid out with each
    technique, attacked by the same Monte Carlo CNT defect model.

    Every technique's generator is spawned from the common
    ``SeedSequence(seed)``, so all techniques consume the identical
    underlying defect draws — trial ``t`` uses the same raw ``(x, y, angle,
    metallic)`` uniforms for every technique, making the Figure 2 comparison
    apples-to-apples.  (The draws are scaled to each cell's own bounding
    box; independence *within* a technique comes from consuming the stream
    across trials.)
    """
    results: Dict[str, MonteCarloResult] = {}
    seed_sequence = _as_seed_sequence(seed)
    for technique in techniques:
        gate = standard_gate(gate_name)
        cell = assemble_cell(
            gate, technique=technique, scheme=scheme, unit_width=unit_width, rules=rules
        )
        results[technique] = run_immunity_trials(
            cell,
            trials=trials,
            cnts_per_trial=cnts_per_trial,
            seed=seed_sequence,
            engine=engine,
            chunk_size=chunk_size,
        )
    return results


def _as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """A reusable SeedSequence: passing it to ``default_rng`` repeatedly
    yields identically seeded generators (the shared-population contract)."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


#: Reserved spawn-key element for per-cell seed derivation in circuit
#: studies (see :func:`circuit_cell_seed`); distinct from the sweep key so
#: circuit children can never collide with sweep children of the same root.
_CIRCUIT_SPAWN_KEY = (1 << 31) + 1


def circuit_cell_seed(seed: SeedLike, cell_name: str) -> np.random.SeedSequence:
    """A stable child SeedSequence for one named cell of a circuit study.

    The child depends only on the root seed and ``cell_name`` — not on how
    many other cells the circuit contains or the order they are evaluated —
    so the same cell in a different circuit (or a re-run with a grown
    netlist) draws the identical defect population.  That is what lets the
    corner store reuse per-cell immunity entries across circuits.
    """
    import hashlib

    root = _as_seed_sequence(seed)
    token = int.from_bytes(
        hashlib.sha256(cell_name.encode("utf-8")).digest()[:4], "big"
    )
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=tuple(root.spawn_key) + (_CIRCUIT_SPAWN_KEY, token),
        pool_size=root.pool_size,
    )


def circuit_survival_draws(
    failure_probabilities: Sequence[float],
    draws: int,
    seed: SeedLike,
) -> np.ndarray:
    """Defective-instance counts for ``draws`` independent circuit samples.

    Each draw flips one Bernoulli coin per instance with that instance's
    cell failure probability; the returned int array holds the number of
    defective instances per draw (0 ⇒ the circuit is functional under the
    every-cell-must-work yield model).  Vectorized: one uniform matrix of
    shape ``(draws, instances)``.
    """
    probs = np.asarray(list(failure_probabilities), dtype=float)
    if draws < 0:
        raise ImmunityAnalysisError("draws must be non-negative")
    if probs.size == 0 or draws == 0:
        return np.zeros(draws, dtype=np.int64)
    if np.any(probs < 0.0) or np.any(probs > 1.0):
        raise ImmunityAnalysisError(
            "failure probabilities must lie in [0, 1]"
        )
    rng = np.random.default_rng(_as_seed_sequence(seed))
    uniforms = rng.random((int(draws), probs.size))
    return np.count_nonzero(uniforms < probs[np.newaxis, :], axis=1).astype(np.int64)


def format_comparison(results: Dict[str, MonteCarloResult]) -> str:
    """Render a technique-vs-failure-rate table."""
    header = f"{'technique':<12} {'trials':>7} {'failures':>9} {'failure rate':>13} {'immune':>7}"
    lines = [header, "-" * len(header)]
    for technique, result in results.items():
        lines.append(
            f"{technique:<12} {result.trials:>7} {result.failures:>9} "
            f"{result.failure_rate * 100:>12.1f}% {str(result.immune):>7}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Parameter sweeps over the batched engine
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """One cell of a parameter sweep and its Monte Carlo outcome."""

    gate: str
    technique: str
    cnts_per_trial: int
    max_angle_deg: float
    metallic_fraction: float
    result: MonteCarloResult

    @property
    def failure_rate(self) -> float:
        return self.result.failure_rate


def sweep(
    gates: Sequence[str] = ("NAND2",),
    techniques: Sequence[str] = ("vulnerable", "baseline", "compact"),
    cnts_per_trial: Sequence[int] = (4,),
    max_angle_deg: Sequence[float] = (15.0,),
    metallic_fraction: Sequence[float] = (0.0,),
    trials: int = 200,
    seed: SeedLike = 2009,
    unit_width: float = 4.0,
    scheme: int = 1,
    rules: DesignRules = CNFET_RULES,
    engine: str = "batch",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: Optional[int] = None,
) -> List[SweepPoint]:
    """Failure rate across the cartesian product of defect parameters.

    Sweeps ``gates`` × ``cnts_per_trial`` × ``max_angle_deg`` ×
    ``metallic_fraction`` × ``techniques`` and returns one
    :class:`SweepPoint` per combination, in deterministic product order.

    Seeding follows the Figure 2 contract: every parameter combination gets
    its own child ``SeedSequence`` spawned from ``SeedSequence(seed)``, and
    all techniques at that combination share the child, so technique
    comparisons see the same defect populations while distinct combinations
    stay statistically independent.

    ``workers`` > 1 distributes points over the runtime scheduler's
    process pool (:func:`repro.runtime.scheduler.run_tasks` — the one
    pool implementation in the repository); results are identical to the
    serial run (each point is seeded independently of scheduling order).
    """
    combos = list(itertools.product(
        gates, cnts_per_trial, max_angle_deg, metallic_fraction
    ))
    # Spawn under a reserved key of a fresh copy: SeedSequence.spawn
    # advances the parent's counter (spawning from the caller's sequence
    # would make identical sweep() calls irreproducible), while a plain
    # copy restarts the counter at 0 and would alias children the caller
    # already spawned themselves.
    root = _as_seed_sequence(seed)
    root = np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=root.spawn_key + (_SWEEP_SPAWN_KEY,),
        pool_size=root.pool_size,
    )
    children = root.spawn(len(combos))
    tasks = []
    for (gate, cnts, angle, metallic), child in zip(combos, children):
        for technique in techniques:
            tasks.append(_SweepTask(
                gate=gate,
                technique=technique,
                cnts_per_trial=cnts,
                max_angle_deg=angle,
                metallic_fraction=metallic,
                trials=trials,
                seed_sequence=child,
                unit_width=unit_width,
                scheme=scheme,
                rules=rules,
                engine=engine,
                chunk_size=chunk_size,
            ))

    # Imported lazily: repro.runtime sits above the study layer, which
    # itself imports this module for the seed contract.
    from ..runtime.scheduler import run_tasks

    results = run_tasks(_run_sweep_task, tasks, jobs=workers)

    return [
        SweepPoint(
            gate=task.gate,
            technique=task.technique,
            cnts_per_trial=task.cnts_per_trial,
            max_angle_deg=task.max_angle_deg,
            metallic_fraction=task.metallic_fraction,
            result=result,
        )
        for task, result in zip(tasks, results)
    ]


@dataclass(frozen=True)
class _SweepTask:
    """A picklable unit of sweep work (one technique at one combination)."""

    gate: str
    technique: str
    cnts_per_trial: int
    max_angle_deg: float
    metallic_fraction: float
    trials: int
    seed_sequence: np.random.SeedSequence
    unit_width: float
    scheme: int
    rules: DesignRules
    engine: str
    chunk_size: int


def _run_sweep_task(task: _SweepTask) -> MonteCarloResult:
    """Top-level worker so process pools can pickle it."""
    gate = standard_gate(task.gate)
    cell = assemble_cell(
        gate, technique=task.technique, scheme=task.scheme,
        unit_width=task.unit_width, rules=task.rules,
    )
    return run_immunity_trials(
        cell,
        trials=task.trials,
        cnts_per_trial=task.cnts_per_trial,
        max_angle_deg=task.max_angle_deg,
        metallic_fraction=task.metallic_fraction,
        seed=task.seed_sequence,
        engine=task.engine,
        chunk_size=task.chunk_size,
    )


def format_sweep(points: Sequence[SweepPoint]) -> str:
    """Render a sweep as a text table."""
    header = (
        f"{'gate':<8} {'technique':<12} {'cnts':>5} {'angle':>6} "
        f"{'metallic':>9} {'trials':>7} {'failure rate':>13} {'immune':>7}"
    )
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.gate:<8} {point.technique:<12} "
            f"{point.cnts_per_trial:>5} {point.max_angle_deg:>6.1f} "
            f"{point.metallic_fraction:>9.2f} {point.result.trials:>7} "
            f"{point.failure_rate * 100:>12.1f}% {str(point.result.immune):>7}"
        )
    return "\n".join(lines)
