"""reprolint — the repo's invariants as a dependency-free AST linter.

The determinism, seeding and runtime contracts this reproduction rests
on (single scheduler, ``SeedLike`` spawning, execution-blind content
addresses, atomic cache writes) are machine-checked here instead of by
convention.  See :mod:`repro.lint.rules` for the ruleset and
:mod:`repro.lint.cli` for the ``python -m repro.lint`` interface.

>>> from repro.lint import lint_paths
>>> report = lint_paths(["src"])           # doctest: +SKIP
>>> report.exit_code                       # doctest: +SKIP
0
"""

from .engine import (
    Finding,
    LintReport,
    ModuleInfo,
    PARSE_ERROR,
    Rule,
    all_rules,
    lint_paths,
    register,
    resolve_rules,
)
from .report import render_json, render_text

__all__ = [
    "Finding",
    "LintReport",
    "ModuleInfo",
    "PARSE_ERROR",
    "Rule",
    "all_rules",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
    "resolve_rules",
]
