"""The ``python -m repro.lint`` command line.

::

    python -m repro.lint src                      # lint the tree
    python -m repro.lint src --select RPL001      # one rule only
    python -m repro.lint src --ignore RPL006,RPL008
    python -m repro.lint src --format json        # machine-readable
    python -m repro.lint --list-rules

Exit status: **0** when the tree is clean, **2** when findings remain
(CI fails the build on it), **1** on operational errors (unknown rule
id, missing path).  The linter is standard-library only and the
``repro`` package root imports lazily, so this entry point runs in a
bare interpreter before any third-party dependency is installed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..errors import LintError
from .engine import all_rules, lint_paths
from .report import render_json, render_text


def _split_ids(values: Optional[Sequence[str]]) -> List[str]:
    """Flatten repeated/comma-separated rule options into bare ids."""
    ids: List[str] = []
    for value in values or []:
        ids.extend(token.strip().upper()
                   for token in value.split(",") if token.strip())
    return ids


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=("reprolint — AST-based contract linter for the repo's "
                     "determinism, seeding and runtime invariants "
                     "(rules RPL001-RPL010)"),
        epilog=("Suppress a finding inline with "
                "'# reprolint: disable=RPL00N'. Exit status: 0 clean, "
                "2 findings, 1 operational error."),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", action="append", metavar="RULES",
        help="comma-separated rule ids to run exclusively "
             "(repeatable, e.g. --select RPL001,RPL004)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="RULES",
        help="comma-separated rule ids to skip (repeatable)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None,
         stdout=None, stderr=None) -> int:
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            stdout.write(f"{rule.id}  {rule.summary}\n")
        return 0

    try:
        report = lint_paths(
            args.paths,
            select=_split_ids(args.select) or None,
            ignore=_split_ids(args.ignore) or None,
        )
    except LintError as error:
        stderr.write(f"error: {error}\n")
        return 1

    renderer = render_json if args.format == "json" else render_text
    stdout.write(renderer(report) + "\n")
    return report.exit_code
