"""The reprolint rule engine: files, modules, suppressions, rule registry.

``reprolint`` is a dependency-free static-analysis pass over the repo's
own source: every invariant the runtime and study layers rely on —
single scheduler, seed contract, execution-blind content addresses,
atomic cache writes — is enforced by a rule here instead of by
convention or ad-hoc string greps in tests.

The engine is deliberately small:

* a :class:`ModuleInfo` per linted file — parsed ``ast`` tree, an
  import-alias map (so ``np.random.default_rng`` and
  ``from numpy.random import default_rng as rng`` resolve to the same
  canonical dotted name), and the inline suppression table;
* a :class:`Rule` registry (:func:`register`) with per-module and
  project-wide hooks — cross-module rules like the registry/dispatch
  consistency check see every linted module at once;
* :func:`lint_paths`, the one entry point: discover ``*.py`` files,
  run the selected rules, drop suppressed findings, return a
  :class:`LintReport` whose :attr:`~LintReport.exit_code` is 2 when
  findings remain (the CI contract) and 0 when the tree is clean.

Suppressions are inline comments on the flagged line::

    rng = np.random.default_rng(0)  # reprolint: disable=RPL002

A comma list (``disable=RPL002,RPL006``) and ``disable=all`` are
accepted.  Everything here is standard library only — the linter must
run in a bare interpreter, before any third-party dependency exists.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import LintError

#: Rule id of parse failures; not a registered rule, never suppressible.
PARSE_ERROR = "RPL000"

_SUPPRESS = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")
_RULE_ID = re.compile(r"^RPL\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violated at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class ModuleInfo:
    """One parsed source file plus the lookup tables rules need."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    disabled: Dict[int, Set[str]] = field(default_factory=dict)

    def in_module(self, *suffixes: str) -> bool:
        """Whether this file *is* one of the given path suffixes
        (``"runtime/scheduler.py"`` matches any ``.../runtime/scheduler.py``)."""
        return any(self.rel == suffix or self.rel.endswith("/" + suffix)
                   for suffix in suffixes)

    def under(self, directory: str) -> bool:
        """Whether this file lives under a directory of that name
        (``"runtime"`` matches ``src/repro/runtime/cache.py``)."""
        return f"/{directory}/" in f"/{self.rel}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The canonical dotted name of a ``Name``/``Attribute`` chain,
        with the leading segment rewritten through the module's import
        aliases — ``np.random.default_rng`` -> ``numpy.random.default_rng``.
        ``None`` when the expression is not a plain dotted chain."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = parts[0]
        if root in self.imports:
            parts[0] = self.imports[root]
        return ".".join(parts)

    def is_imported(self, name: str) -> bool:
        """Whether ``name`` is bound by an import statement (any scope)."""
        return name in self.imports

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule.id,
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class of every reprolint rule.

    Subclasses set ``id`` (``RPL0NN``) and ``summary`` and override
    :meth:`check_module` (one file at a time) and/or
    :meth:`check_project` (all linted files together, for cross-module
    registry-consistency checks).
    """

    id: str = ""
    summary: str = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def check_project(self,
                      modules: Sequence[ModuleInfo]) -> Iterable[Finding]:
        return ()


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls):
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not _RULE_ID.match(rule.id):
        raise LintError(f"Rule id {rule.id!r} does not match RPLnnn")
    if rule.id in _REGISTRY:
        raise LintError(f"Duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, in id order."""
    from . import rules as _rules  # noqa: F401 — registration side effect
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def resolve_rules(select: Optional[Sequence[str]] = None,
                  ignore: Optional[Sequence[str]] = None) -> List[Rule]:
    """The rule set after ``--select``/``--ignore`` filtering; unknown
    ids fail fast with the known ids listed."""
    rules = all_rules()
    known = {rule.id for rule in rules}
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise LintError(
                f"Unknown rule {requested!r}; known rules: {sorted(known)}"
            )
    if select:
        wanted = set(select)
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules


def _build_imports(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted target, from every import statement
    in the module (lazy in-function imports included)."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            prefix = ("." * node.level) + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{prefix}.{alias.name}" if prefix \
                    else alias.name
    return imports


def _build_suppressions(source: str) -> Dict[int, Set[str]]:
    """Line number -> rule ids disabled on that line (``ALL`` for all)."""
    disabled: Dict[int, Set[str]] = {}
    for line_number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS.search(line)
        if not match:
            continue
        ids = {token.strip().upper()
               for token in match.group(1).split(",") if token.strip()}
        if ids:
            disabled[line_number] = ids
    return disabled


def _relative_label(path: Path) -> str:
    """The path string findings carry: relative to the current directory
    when possible, always forward-slashed."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def load_module(path: Path) -> Tuple[Optional[ModuleInfo], Optional[Finding]]:
    """``(module, None)`` on success, ``(None, parse_finding)`` on
    unreadable or syntactically invalid input."""
    rel = _relative_label(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return None, Finding(PARSE_ERROR, rel, 1, 1, f"cannot read: {error}")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return None, Finding(
            PARSE_ERROR, rel, error.lineno or 1, (error.offset or 0) + 1,
            f"syntax error: {error.msg}",
        )
    return ModuleInfo(
        path=path,
        rel=rel,
        source=source,
        tree=tree,
        imports=_build_imports(tree),
        disabled=_build_suppressions(source),
    ), None


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Expand files and directories into a deduplicated ``*.py`` list."""
    files: List[Path] = []
    seen: Set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            candidates: List[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"No such file or directory: {entry}")
        for candidate in candidates:
            marker = candidate.resolve()
            if marker not in seen:
                seen.add(marker)
                files.append(candidate)
    return files


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run."""

    findings: Tuple[Finding, ...]
    files: int
    rules: Tuple[str, ...]
    suppressed: int

    @property
    def exit_code(self) -> int:
        """0 when clean, 2 when findings remain — the CI contract."""
        return 2 if self.findings else 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files": self.files,
            "rules": list(self.rules),
            "suppressed": self.suppressed,
            "findings": [finding.as_dict() for finding in self.findings],
        }


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> LintReport:
    """Lint every ``*.py`` file under ``paths`` with the selected rules.

    Parse failures always surface (rule ``RPL000``), regardless of
    selection, and cannot be suppressed — a file the linter cannot read
    is a file whose invariants nobody checked.
    """
    rules = resolve_rules(select, ignore)
    files = discover_files(paths)
    modules: List[ModuleInfo] = []
    raw: List[Finding] = []
    for path in files:
        module, error = load_module(path)
        if error is not None:
            raw.append(error)
        else:
            modules.append(module)

    for rule in rules:
        for module in modules:
            raw.extend(rule.check_module(module))
        raw.extend(rule.check_project(modules))

    by_path = {module.rel: module for module in modules}
    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and finding.rule != PARSE_ERROR:
            disabled = module.disabled.get(finding.line, set())
            if finding.rule in disabled or "ALL" in disabled:
                suppressed += 1
                continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(
        findings=tuple(kept),
        files=len(files),
        rules=tuple(rule.id for rule in rules),
        suppressed=suppressed,
    )
