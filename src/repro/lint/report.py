"""Reprolint reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from .engine import LintReport


def render_text(report: LintReport) -> str:
    """One ``path:line:col: RULE message`` line per finding plus a
    summary line (mirrors the familiar compiler-diagnostic shape, so
    editors and CI annotations pick the locations up for free)."""
    lines = [finding.render() for finding in report.findings]
    suppressed = (f", {report.suppressed} suppressed"
                  if report.suppressed else "")
    if report.findings:
        lines.append(
            f"{len(report.findings)} finding(s) in {report.files} file(s), "
            f"{len(report.rules)} rule(s){suppressed}"
        )
    else:
        lines.append(
            f"clean: {report.files} file(s), {len(report.rules)} "
            f"rule(s){suppressed}"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The report as a stable JSON document (``version: 1``)."""
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)
