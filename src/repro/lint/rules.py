"""The reprolint ruleset: the repo's contracts as machine-checked rules.

=======  ==================================================================
rule     contract
=======  ==================================================================
RPL001   one scheduler: no executor/pool construction outside
         ``runtime/scheduler.py`` (the PR-5 single-pool rule)
RPL002   seed contract: no RNG construction outside the sanctioned entry
         points (``immunity/montecarlo.py``, ``study/spec.py``) — every
         other surface accepts ``SeedLike``
RPL003   no wall-clock reads in fingerprinted modules
         (``runtime/fingerprint.py``, ``study/serialize.py``)
RPL004   execution blindness: ``jobs``/``backend``/``workers``/
         ``chunk_size`` never flow into a ``*fingerprint`` call
RPL005   atomic writes: no direct file writes under ``runtime/`` outside
         the ``_write_atomic`` helper
RPL006   no mutable default arguments
RPL007   registry consistency: every ``StudyResult`` subclass declares a
         ``study_name`` (the ``from_json`` dispatch key), and every study
         the registry defines has a result class carrying that name
RPL008   no bare ``except:`` and no ``except Exception: pass``
RPL009   one concurrency surface: no ``threading`` primitive construction
         (``Thread``/``Lock``/``Condition``/...) outside
         ``runtime/scheduler.py`` and ``service/jobs.py``
RPL010   clock confinement: wall-clock/monotonic reads only inside the
         ``obs/`` package — everything else takes time through
         ``repro.obs.clock``
=======  ==================================================================

Rules resolve dotted names through each module's import aliases
(:meth:`~repro.lint.engine.ModuleInfo.resolve`), so ``np.random.
default_rng``, ``numpy.random.default_rng`` and ``from numpy.random
import default_rng as rng`` all hit the same check.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from .engine import Finding, ModuleInfo, Rule, register

#: The execution-selection parameters the determinism contract makes
#: result-invariant; they must never reach a content address (RPL004).
EXECUTION_IDENTIFIERS = frozenset({"jobs", "backend", "workers", "chunk_size"})

_EXECUTOR_NAMES = frozenset({"ProcessPoolExecutor", "ThreadPoolExecutor"})
_POOL_ATTRS = frozenset({"Pool", "Process"})


@register
class SingleSchedulerRule(Rule):
    """RPL001 — executor/pool construction only in ``runtime/scheduler.py``.

    Flags imports of, references to, and calls of
    ``ProcessPoolExecutor``/``ThreadPoolExecutor`` and
    ``multiprocessing`` pools anywhere else: every parallel code path
    must lower onto :func:`repro.runtime.scheduler.run_tasks`, the
    repo's one pool implementation.
    """

    id = "RPL001"
    summary = ("no executor/pool construction outside runtime/scheduler.py "
               "(single-scheduler rule)")
    ALLOWED = ("runtime/scheduler.py",)

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.in_module(*self.ALLOWED):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                base = (node.module or "").split(".", 1)[0]
                for alias in node.names:
                    if (node.module == "concurrent.futures"
                            and alias.name in _EXECUTOR_NAMES) or (
                            base == "multiprocessing"
                            and alias.name in _POOL_ATTRS):
                        yield module.finding(
                            self, node,
                            f"import of {alias.name} outside the runtime "
                            "scheduler — route parallel work through "
                            "repro.runtime.scheduler.run_tasks",
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] == "multiprocessing":
                        yield module.finding(
                            self, node,
                            f"import of {alias.name} outside the runtime "
                            "scheduler — route parallel work through "
                            "repro.runtime.scheduler.run_tasks",
                        )
            elif isinstance(node, ast.Name) and node.id in _EXECUTOR_NAMES:
                yield module.finding(
                    self, node,
                    f"reference to {node.id} outside the runtime scheduler "
                    "— the repo has exactly one pool implementation",
                )
            elif isinstance(node, ast.Attribute) \
                    and node.attr in _EXECUTOR_NAMES:
                yield module.finding(
                    self, node,
                    f"reference to {node.attr} outside the runtime scheduler "
                    "— the repo has exactly one pool implementation",
                )
            elif isinstance(node, ast.Call):
                canonical = module.resolve(node.func) or ""
                if canonical.startswith("multiprocessing.") \
                        and canonical.rsplit(".", 1)[-1] in _POOL_ATTRS:
                    yield module.finding(
                        self, node,
                        f"{canonical}() outside the runtime scheduler — "
                        "route parallel work through run_tasks",
                    )


@register
class SeedContractRule(Rule):
    """RPL002 — RNG construction only in the seed-contract entry points.

    ``numpy.random`` generator construction and legacy global draws, and
    stdlib ``random`` usage, are confined to ``immunity/montecarlo.py``
    and ``study/spec.py``; every other surface must accept ``SeedLike``
    and delegate.  ``numpy.random.SeedSequence`` construction is seed
    *plumbing*, not RNG construction, and stays allowed everywhere.
    """

    id = "RPL002"
    summary = ("no RNG construction outside immunity/montecarlo.py and "
               "study/spec.py (SeedLike contract)")
    ALLOWED = ("immunity/montecarlo.py", "study/spec.py")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.in_module(*self.ALLOWED):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = module.resolve(node.func)
            if canonical is None:
                continue
            if canonical.startswith("numpy.random.") \
                    and canonical != "numpy.random.SeedSequence":
                yield module.finding(
                    self, node,
                    f"{canonical}() constructs an RNG outside the seed-"
                    "contract entry points — accept SeedLike and delegate "
                    "to montecarlo/spec seeding",
                )
            elif canonical.startswith("random.") \
                    and self._names_stdlib_random(module, node.func):
                yield module.finding(
                    self, node,
                    f"stdlib {canonical}() bypasses the SeedLike contract "
                    "— use the sanctioned numpy seeding entry points",
                )

    @staticmethod
    def _names_stdlib_random(module: ModuleInfo, func: ast.AST) -> bool:
        """True only when the chain's root really is an imported name —
        a local variable that happens to be called ``random`` is not the
        stdlib module."""
        node = func
        while isinstance(node, ast.Attribute):
            node = node.value
        return isinstance(node, ast.Name) and module.is_imported(node.id)


@register
class NoWallClockRule(Rule):
    """RPL003 — fingerprinted modules must be time-free.

    A content address that folds in a wall-clock read is different on
    every run; the fingerprint and canonical-serialization modules may
    not call any clock.
    """

    id = "RPL003"
    summary = ("no wall-clock reads in fingerprinted modules "
               "(runtime/fingerprint.py, study/serialize.py)")
    SCOPED = ("runtime/fingerprint.py", "study/serialize.py")
    CLOCKS = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.localtime",
        "time.gmtime", "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_module(*self.SCOPED):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                canonical = module.resolve(node.func)
                if canonical in self.CLOCKS:
                    yield module.finding(
                        self, node,
                        f"{canonical}() in a fingerprinted module — content "
                        "addresses must be stable across runs",
                    )


@register
class ExecutionBlindRule(Rule):
    """RPL004 — execution parameters never reach a fingerprint call.

    ``jobs``/``backend``/``workers``/``chunk_size`` select *how* a study
    executes, never *what* it computes; if one flows into a
    ``*fingerprint(...)`` argument, identical work would hash to
    different addresses under different scheduling.
    """

    id = "RPL004"
    summary = ("jobs/backend/workers/chunk_size must not flow into "
               "fingerprint calls (execution-blind addresses)")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = module.resolve(node.func) or ""
            target = canonical.rsplit(".", 1)[-1]
            if not target.endswith("fingerprint"):
                continue
            offenders: Set[str] = set()
            for keyword in node.keywords:
                if keyword.arg in EXECUTION_IDENTIFIERS:
                    offenders.add(keyword.arg)
            subtrees = list(node.args) + [kw.value for kw in node.keywords]
            for subtree in subtrees:
                for child in ast.walk(subtree):
                    if isinstance(child, ast.Name) \
                            and child.id in EXECUTION_IDENTIFIERS:
                        offenders.add(child.id)
            for name in sorted(offenders):
                yield module.finding(
                    self, node,
                    f"execution parameter {name!r} flows into {target}() — "
                    "content addresses must be execution-blind",
                )


@register
class AtomicWriteRule(Rule):
    """RPL005 — no direct file writes under ``runtime/``.

    The cache's crash-safety story is temp-file + ``os.replace`` in
    ``_write_atomic``; a stray ``open(..., "w")`` (or ``write_text``)
    under ``runtime/`` can leave readers half an entry.
    """

    id = "RPL005"
    summary = ("no direct file writes under runtime/ outside the "
               "_write_atomic helper")
    HELPER = "_write_atomic"
    _WRITE_MODES = set("wax+")

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.under("runtime"):
            return
        yield from self._scan(module, module.tree, inside_helper=False)

    def _scan(self, module: ModuleInfo, node: ast.AST,
              inside_helper: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scan(
                    module, child,
                    inside_helper or child.name == self.HELPER,
                )
                continue
            if isinstance(child, ast.Call) and not inside_helper:
                finding = self._check_call(module, child)
                if finding is not None:
                    yield finding
            yield from self._scan(module, child, inside_helper)

    def _check_call(self, module: ModuleInfo, node: ast.Call):
        canonical = module.resolve(node.func) or ""
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("write_text", "write_bytes"):
            return module.finding(
                self, node,
                f".{node.func.attr}() under runtime/ — write through the "
                "atomic temp-file + os.replace helper",
            )
        if canonical not in ("open", "os.fdopen"):
            return None
        mode = self._mode_argument(node)
        if mode is not None and self._WRITE_MODES & set(mode):
            return module.finding(
                self, node,
                f"{canonical}(..., {mode!r}) under runtime/ — write through "
                "the atomic temp-file + os.replace helper",
            )
        return None

    @staticmethod
    def _mode_argument(node: ast.Call):
        for keyword in node.keywords:
            if keyword.arg == "mode":
                value = keyword.value
                break
        else:
            if len(node.args) < 2:
                return None
            value = node.args[1]
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value
        return None


@register
class MutableDefaultRule(Rule):
    """RPL006 — no mutable default arguments.

    A ``def f(x=[])`` default is created once and shared across every
    call; state leaks between invocations, which is exactly the kind of
    hidden coupling a bit-identity codebase cannot afford.
    """

    id = "RPL006"
    summary = "no mutable default arguments"
    _LITERALS = (ast.List, ast.Dict, ast.Set,
                 ast.ListComp, ast.DictComp, ast.SetComp)
    _FACTORIES = frozenset({"list", "dict", "set", "bytearray"})

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults
                if default is not None
            ]
            label = getattr(node, "name", "<lambda>")
            for default in defaults:
                reason = self._mutable(default)
                if reason:
                    yield Finding(
                        rule=self.id,
                        path=module.rel,
                        line=default.lineno,
                        col=default.col_offset + 1,
                        message=f"mutable default argument ({reason}) on "
                                f"{label}() — default to None and build "
                                "inside the function",
                    )

    def _mutable(self, node: ast.AST) -> str:
        if isinstance(node, self._LITERALS):
            return type(node).__name__.lower().replace("comp", " comprehension")
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in self._FACTORIES:
            return f"{node.func.id}()"
        return ""


@register
class ResultDispatchRule(Rule):
    """RPL007 — study registry and result dispatch stay consistent.

    Cross-module: a ``StudyResult`` subclass that forgets its
    ``study_name`` never registers in the ``from_json`` dispatch, so its
    envelopes silently fail to decode; and a study the registry defines
    whose name no result class carries would serialize results that
    nothing can round-trip.
    """

    id = "RPL007"
    summary = ("every StudyResult subclass declares a study_name and every "
               "registered study has a result class (from_json dispatch)")
    REGISTRY = ("study/registry.py",)
    BASE = "StudyResult"

    def check_project(self,
                      modules: Sequence[ModuleInfo]) -> Iterator[Finding]:
        declared: Set[str] = set()
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef) \
                        or node.name == self.BASE \
                        or not self._subclasses_result(module, node):
                    continue
                name = self._study_name(node)
                if name:
                    declared.add(name)
                else:
                    yield module.finding(
                        self, node,
                        f"class {node.name} subclasses StudyResult but "
                        "declares no study_name — it will never register "
                        "in the from_json dispatch",
                    )
        for module in modules:
            if not module.in_module(*self.REGISTRY):
                continue
            for node in ast.walk(module.tree):
                registered = self._registered_study(module, node)
                if registered and registered not in declared:
                    yield module.finding(
                        self, node,
                        f"study {registered!r} is registered but no "
                        "StudyResult subclass carries study_name="
                        f"{registered!r} — its envelopes cannot decode",
                    )

    def _subclasses_result(self, module: ModuleInfo,
                           node: ast.ClassDef) -> bool:
        for base in node.bases:
            canonical = module.resolve(base) or ""
            if canonical.rsplit(".", 1)[-1] == self.BASE:
                return True
        return False

    @staticmethod
    def _study_name(node: ast.ClassDef) -> str:
        for statement in node.body:
            target = None
            value = None
            if isinstance(statement, ast.AnnAssign) \
                    and isinstance(statement.target, ast.Name):
                target, value = statement.target.id, statement.value
            elif isinstance(statement, ast.Assign) \
                    and len(statement.targets) == 1 \
                    and isinstance(statement.targets[0], ast.Name):
                target, value = statement.targets[0].id, statement.value
            if target == "study_name" and isinstance(value, ast.Constant) \
                    and isinstance(value.value, str) and value.value:
                return value.value
        return ""

    @staticmethod
    def _registered_study(module: ModuleInfo, node: ast.AST) -> str:
        if not isinstance(node, ast.Call):
            return ""
        canonical = module.resolve(node.func) or ""
        if canonical.rsplit(".", 1)[-1] != "StudyDefinition":
            return ""
        if node.args and isinstance(node.args[0], ast.Constant) \
                and isinstance(node.args[0].value, str):
            return node.args[0].value
        for keyword in node.keywords:
            if keyword.arg == "name" \
                    and isinstance(keyword.value, ast.Constant) \
                    and isinstance(keyword.value.value, str):
                return keyword.value.value
        return ""


@register
class NoSilentExceptRule(Rule):
    """RPL008 — no bare ``except:`` and no pass-only broad handlers.

    A bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit``; an
    ``except Exception: pass`` silently discards real failures.  Broad
    handlers with a real body (evict-and-degrade paths) stay legal.
    """

    id = "RPL008"
    summary = "no bare except: and no 'except Exception: pass'"
    _BROAD = frozenset({"Exception", "BaseException"})

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.finding(
                    self, node,
                    "bare except: swallows KeyboardInterrupt/SystemExit — "
                    "name the exception",
                )
            elif self._is_broad(module, node.type) \
                    and self._body_is_silent(node.body):
                name = (module.resolve(node.type) or "Exception")
                yield module.finding(
                    self, node,
                    f"except {name.rsplit('.', 1)[-1]}: pass silently "
                    "discards failures — handle, log or re-raise",
                )

    def _is_broad(self, module: ModuleInfo, node: ast.AST) -> bool:
        canonical = module.resolve(node) or ""
        return canonical.rsplit(".", 1)[-1] in self._BROAD

    @staticmethod
    def _body_is_silent(body: List[ast.stmt]) -> bool:
        for statement in body:
            if isinstance(statement, ast.Pass):
                continue
            if isinstance(statement, ast.Expr) \
                    and isinstance(statement.value, ast.Constant) \
                    and statement.value.value is Ellipsis:
                continue
            return False
        return True


@register
class SingleConcurrencySurfaceRule(Rule):
    """RPL009 — thread/lock construction only in the sanctioned modules.

    The sibling of RPL001 for raw :mod:`threading`: worker threads live
    in ``service/jobs.py``, and every lock in the codebase is minted by
    :func:`repro.runtime.scheduler.make_lock`, so a grep for concurrency
    machinery always lands on exactly two modules.  Flags construction
    calls of the primitive classes (``Thread``, ``Lock``, ``RLock``,
    ``Condition``, ``Event``, ``Semaphore``, ``BoundedSemaphore``,
    ``Barrier``, ``Timer``) and ``from threading import <primitive>``
    anywhere else; ``import threading`` alone stays legal (type
    annotations, ``current_thread`` introspection).
    """

    id = "RPL009"
    summary = ("no threading primitive construction outside "
               "runtime/scheduler.py and service/jobs.py "
               "(single concurrency surface)")
    ALLOWED = ("runtime/scheduler.py", "service/jobs.py")
    _PRIMITIVES = frozenset({
        "Thread", "Lock", "RLock", "Condition", "Event", "Semaphore",
        "BoundedSemaphore", "Barrier", "Timer",
    })

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.in_module(*self.ALLOWED):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module != "threading":
                    continue
                for alias in node.names:
                    if alias.name in self._PRIMITIVES:
                        yield module.finding(
                            self, node,
                            f"import of threading.{alias.name} outside the "
                            "concurrency surface — spawn workers in "
                            "service/jobs.py, mint locks with "
                            "runtime.scheduler.make_lock()",
                        )
            elif isinstance(node, ast.Call):
                canonical = module.resolve(node.func) or ""
                prefix, _, target = canonical.rpartition(".")
                if prefix == "threading" and target in self._PRIMITIVES:
                    yield module.finding(
                        self, node,
                        f"{canonical}() constructed outside the concurrency "
                        "surface — spawn workers in service/jobs.py, mint "
                        "locks with runtime.scheduler.make_lock()",
                    )


@register
class ClockConfinementRule(Rule):
    """RPL010 — clocks are read only inside ``repro/obs``.

    The observability layer's hard contract is that tracing is
    observation-only; the enforceable half of that is *where time can be
    read at all*.  Every ``time.time``/``time.monotonic``/
    ``time.perf_counter``/``datetime.now``-family call outside the
    ``obs/`` package is flagged — instrumented layers take their
    timestamps through :mod:`repro.obs.clock` (or record them via
    :mod:`repro.obs.trace` spans), so no numeric path can branch on a
    clock without tripping this rule.  RPL003 stays as the stricter
    fence on the fingerprinted modules themselves.
    """

    id = "RPL010"
    summary = ("wall-clock/monotonic reads only inside the obs/ package "
               "(read time through repro.obs.clock)")
    CLOCKS = NoWallClockRule.CLOCKS

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.under("obs"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                canonical = module.resolve(node.func)
                if canonical in self.CLOCKS:
                    yield module.finding(
                        self, node,
                        f"{canonical}() outside repro/obs — read clocks "
                        "through repro.obs.clock (or record spans via "
                        "repro.obs.trace)",
                    )
