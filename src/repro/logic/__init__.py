"""Boolean logic substrate: expressions, truth tables, transistor networks."""

from .expr import (
    And,
    Const,
    Expr,
    Not,
    Or,
    Var,
    and_,
    not_,
    or_,
    parse_expression,
    var,
)
from .functions import (
    STANDARD_GATES,
    all_standard_gates,
    aoi21,
    aoi22,
    aoi31,
    from_pulldown,
    inverter,
    nand,
    nor,
    oai21,
    oai22,
    standard_gate,
)
from .network import (
    GND_NET,
    OUTPUT_NET,
    VDD_NET,
    GateNetworks,
    SPLeaf,
    SPNode,
    SPParallel,
    SPSeries,
    Transistor,
    TransistorNetwork,
    sp_from_expression,
)
from .truthtable import TruthTable, expressions_equivalent

__all__ = [
    "And", "Const", "Expr", "Not", "Or", "Var",
    "and_", "not_", "or_", "parse_expression", "var",
    "STANDARD_GATES", "all_standard_gates",
    "aoi21", "aoi22", "aoi31", "from_pulldown", "inverter",
    "nand", "nor", "oai21", "oai22", "standard_gate",
    "GND_NET", "OUTPUT_NET", "VDD_NET",
    "GateNetworks", "SPLeaf", "SPNode", "SPParallel", "SPSeries",
    "Transistor", "TransistorNetwork", "sp_from_expression",
    "TruthTable", "expressions_equivalent",
]
