"""Boolean expression AST and parser.

Cells in the paper are expressed as inverting gates of sum-of-products /
product-of-sums functions (NAND, NOR, AOI, OAI).  This module provides a
small Boolean expression language used to describe the pull-down function of
a cell; :mod:`repro.logic.network` turns it into transistor networks.

Grammar (usual precedence NOT > AND > OR)::

    expr    := term ( ('+' | '|') term )*
    term    := factor ( ('*' | '&')? factor )*      # adjacency means AND
    factor  := ('!' | '~') factor | atom "'"*
    atom    := '(' expr ')' | identifier | '0' | '1'

``(A*B+C)'`` and ``!(A&B|C)`` both parse to the same expression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple, Union

from ..errors import ExpressionParseError, LogicError


class Expr:
    """Base class of all Boolean expression nodes."""

    def variables(self) -> FrozenSet[str]:
        """The set of variable names appearing in the expression."""
        raise NotImplementedError

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a variable assignment."""
        raise NotImplementedError

    def __invert__(self) -> "Expr":
        return Not(self)

    def __and__(self, other: "Expr") -> "Expr":
        return And((self, _as_expr(other)))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, _as_expr(other)))

    def __rand__(self, other) -> "Expr":
        return And((_as_expr(other), self))

    def __ror__(self, other) -> "Expr":
        return Or((_as_expr(other), self))


def _as_expr(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return Var(value)
    if isinstance(value, bool):
        return Const(value)
    raise LogicError(f"Cannot interpret {value!r} as a Boolean expression")


@dataclass(frozen=True)
class Const(Expr):
    """Boolean constant."""

    value: bool

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return self.value

    def __str__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Var(Expr):
    """A named input variable."""

    name: str

    def __post_init__(self):
        if not self.name or not self.name[0].isalpha():
            raise LogicError(f"Invalid variable name {self.name!r}")

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        try:
            return bool(assignment[self.name])
        except KeyError:
            raise LogicError(f"No value provided for variable {self.name!r}") from None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    operand: Expr

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def __str__(self) -> str:
        return f"{_maybe_paren(self.operand)}'"


@dataclass(frozen=True)
class And(Expr):
    """Logical conjunction of two or more operands."""

    operands: Tuple[Expr, ...]

    def __post_init__(self):
        if len(self.operands) < 2:
            raise LogicError("And requires at least two operands")

    def variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for operand in self.operands:
            names |= operand.variables()
        return names

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return all(operand.evaluate(assignment) for operand in self.operands)

    def __str__(self) -> str:
        return "*".join(_maybe_paren(op, inside="and") for op in self.operands)


@dataclass(frozen=True)
class Or(Expr):
    """Logical disjunction of two or more operands."""

    operands: Tuple[Expr, ...]

    def __post_init__(self):
        if len(self.operands) < 2:
            raise LogicError("Or requires at least two operands")

    def variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for operand in self.operands:
            names |= operand.variables()
        return names

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return any(operand.evaluate(assignment) for operand in self.operands)

    def __str__(self) -> str:
        return " + ".join(_maybe_paren(op, inside="or") for op in self.operands)


def _maybe_paren(expr: Expr, inside: str = "not") -> str:
    text = str(expr)
    if isinstance(expr, Or) and inside in ("and", "not"):
        return f"({text})"
    if isinstance(expr, And) and inside == "not":
        return f"({text})"
    return text


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def var(name: str) -> Var:
    """Shorthand for :class:`Var`."""
    return Var(name)


def and_(*operands) -> Expr:
    """N-ary AND (flattens nested ANDs, drops redundant constants)."""
    flat: List[Expr] = []
    for operand in operands:
        expr = _as_expr(operand)
        if isinstance(expr, And):
            flat.extend(expr.operands)
        elif isinstance(expr, Const):
            if not expr.value:
                return Const(False)
        else:
            flat.append(expr)
    if not flat:
        return Const(True)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def or_(*operands) -> Expr:
    """N-ary OR (flattens nested ORs, drops redundant constants)."""
    flat: List[Expr] = []
    for operand in operands:
        expr = _as_expr(operand)
        if isinstance(expr, Or):
            flat.extend(expr.operands)
        elif isinstance(expr, Const):
            if expr.value:
                return Const(True)
        else:
            flat.append(expr)
    if not flat:
        return Const(False)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def not_(operand) -> Expr:
    """Negation with double-negation elimination."""
    expr = _as_expr(operand)
    if isinstance(expr, Not):
        return expr.operand
    if isinstance(expr, Const):
        return Const(not expr.value)
    return Not(expr)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class _Tokenizer:
    def __init__(self, text: str):
        self.text = text
        self.position = 0

    def peek(self) -> str:
        while self.position < len(self.text) and self.text[self.position].isspace():
            self.position += 1
        if self.position >= len(self.text):
            return ""
        return self.text[self.position]

    def take(self) -> str:
        char = self.peek()
        if char:
            self.position += 1
        return char

    def take_identifier(self) -> str:
        self.peek()  # skip whitespace
        start = self.position
        while self.position < len(self.text) and (
            self.text[self.position].isalnum() or self.text[self.position] in "_[]<>"
        ):
            self.position += 1
        return self.text[start:self.position]

    def error(self, message: str) -> ExpressionParseError:
        return ExpressionParseError(message, self.text, self.position)


def parse_expression(text: str) -> Expr:
    """Parse a Boolean expression string into an :class:`Expr` tree."""
    tokenizer = _Tokenizer(text)
    expr = _parse_or(tokenizer)
    if tokenizer.peek():
        raise tokenizer.error(f"Unexpected character {tokenizer.peek()!r}")
    return expr


def _parse_or(tok: _Tokenizer) -> Expr:
    operands = [_parse_and(tok)]
    while tok.peek() in ("+", "|"):
        tok.take()
        operands.append(_parse_and(tok))
    return or_(*operands) if len(operands) > 1 else operands[0]


def _parse_and(tok: _Tokenizer) -> Expr:
    operands = [_parse_factor(tok)]
    while True:
        char = tok.peek()
        if char in ("*", "&"):
            tok.take()
            operands.append(_parse_factor(tok))
        elif char and (char.isalnum() or char in "(!~"):
            # implicit AND by adjacency, e.g. "AB + C"
            operands.append(_parse_factor(tok))
        else:
            break
    return and_(*operands) if len(operands) > 1 else operands[0]


def _parse_factor(tok: _Tokenizer) -> Expr:
    char = tok.peek()
    if char in ("!", "~"):
        tok.take()
        return not_(_parse_factor(tok))
    expr = _parse_atom(tok)
    while tok.peek() == "'":
        tok.take()
        expr = not_(expr)
    return expr


def _parse_atom(tok: _Tokenizer) -> Expr:
    char = tok.peek()
    if char == "(":
        tok.take()
        expr = _parse_or(tok)
        if tok.peek() != ")":
            raise tok.error("Expected ')'")
        tok.take()
        return expr
    if char == "0":
        tok.take()
        return Const(False)
    if char == "1":
        tok.take()
        return Const(True)
    if char and char.isalpha():
        name = tok.take_identifier()
        if not name:
            raise tok.error("Expected identifier")
        return Var(name)
    raise tok.error(f"Unexpected character {char!r}" if char else "Unexpected end of input")
