"""Standard gate functions used by the paper's cell library.

Every factory returns a :class:`~repro.logic.network.GateNetworks` whose
pull-down function matches the conventional static-CMOS/CNFET definition of
the cell.  The set covers all cells of Table 1, the AOI31 example of
Figure 4 and the NAND2+INV full adder of Figure 8.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import LogicError
from .expr import Expr, and_, or_, parse_expression, var
from .network import GateNetworks

_DEFAULT_INPUT_NAMES = ("A", "B", "C", "D", "E", "F", "G", "H")


def _input_names(count: int, names: Sequence[str] = None) -> Tuple[str, ...]:
    if names is not None:
        if len(names) != count:
            raise LogicError(f"Expected {count} input names, got {len(names)}")
        return tuple(names)
    if count > len(_DEFAULT_INPUT_NAMES):
        raise LogicError(f"Provide explicit names for {count} inputs")
    return _DEFAULT_INPUT_NAMES[:count]


def inverter() -> GateNetworks:
    """INV: out = A'."""
    return GateNetworks("INV", var("A"))


def nand(fanin: int, names: Sequence[str] = None) -> GateNetworks:
    """NAND-n: out = (A·B·...)'  — PDN is a series stack, PUN is parallel."""
    if fanin < 2:
        raise LogicError("NAND requires fan-in >= 2 (use inverter() for fan-in 1)")
    inputs = _input_names(fanin, names)
    return GateNetworks(f"NAND{fanin}", and_(*[var(n) for n in inputs]))


def nor(fanin: int, names: Sequence[str] = None) -> GateNetworks:
    """NOR-n: out = (A+B+...)' — PDN is parallel, PUN is a series stack."""
    if fanin < 2:
        raise LogicError("NOR requires fan-in >= 2 (use inverter() for fan-in 1)")
    inputs = _input_names(fanin, names)
    return GateNetworks(f"NOR{fanin}", or_(*[var(n) for n in inputs]))


def aoi21() -> GateNetworks:
    """AOI21: out = (A·B + C)'."""
    return GateNetworks("AOI21", or_(and_(var("A"), var("B")), var("C")))


def aoi22() -> GateNetworks:
    """AOI22: out = (A·B + C·D)'."""
    return GateNetworks("AOI22", or_(and_(var("A"), var("B")), and_(var("C"), var("D"))))


def aoi31() -> GateNetworks:
    """AOI31: out = (A·B·C + D)' — the generalised example of Figure 4."""
    return GateNetworks("AOI31", or_(and_(var("A"), var("B"), var("C")), var("D")))


def oai21() -> GateNetworks:
    """OAI21: out = ((A+B)·C)'."""
    return GateNetworks("OAI21", and_(or_(var("A"), var("B")), var("C")))


def oai22() -> GateNetworks:
    """OAI22: out = ((A+B)·(C+D))'."""
    return GateNetworks("OAI22", and_(or_(var("A"), var("B")), or_(var("C"), var("D"))))


def from_pulldown(name: str, expression: str) -> GateNetworks:
    """Build a gate from a textual pull-down expression, e.g.
    ``from_pulldown("AOI211", "A*B + C + D")``."""
    return GateNetworks(name, parse_expression(expression))


#: Factories of the canonical cell set used across the library.
STANDARD_GATES = {
    "INV": inverter,
    "NAND2": lambda: nand(2),
    "NAND3": lambda: nand(3),
    "NAND4": lambda: nand(4),
    "NOR2": lambda: nor(2),
    "NOR3": lambda: nor(3),
    "NOR4": lambda: nor(4),
    "AOI21": aoi21,
    "AOI22": aoi22,
    "AOI31": aoi31,
    "OAI21": oai21,
    "OAI22": oai22,
}


def standard_gate(name: str) -> GateNetworks:
    """Instantiate one of the canonical gates by name."""
    try:
        factory = STANDARD_GATES[name.upper()]
    except KeyError:
        raise LogicError(
            f"Unknown standard gate {name!r}; available: {sorted(STANDARD_GATES)}"
        ) from None
    return factory()


def all_standard_gates() -> Dict[str, GateNetworks]:
    """All canonical gates, keyed by name."""
    return {name: factory() for name, factory in STANDARD_GATES.items()}
