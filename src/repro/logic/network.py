"""Series-parallel transistor networks for static (CNFET/CMOS) gates.

An inverting gate computing ``out = NOT f(inputs)`` is realised by

* a pull-down network (PDN) of n-type devices whose topology mirrors ``f``
  (AND = series, OR = parallel) between ``out`` and ``gnd``; and
* a pull-up network (PUN) of p-type devices with the *dual* topology
  (series and parallel exchanged) between ``vdd`` and ``out``.

This module builds both, keeps the series-parallel structure (needed by the
sizing rules of Section III/IV and the symmetric-layout construction of
Figure 4), and flattens each network to an electrical multigraph of
transistors (needed by the Euler-path layout generator and by the functional
verification used in the immunity analysis).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import NetworkError
from .expr import And, Const, Expr, Not, Or, Var
from .truthtable import TruthTable

VDD_NET = "vdd"
GND_NET = "gnd"
OUTPUT_NET = "out"


# ---------------------------------------------------------------------------
# Series-parallel trees
# ---------------------------------------------------------------------------

class SPNode:
    """Base class of series-parallel network tree nodes."""

    def dual(self) -> "SPNode":
        """The dual network (series and parallel exchanged)."""
        raise NotImplementedError

    def leaf_count(self) -> int:
        """Number of transistors in the (sub)network."""
        raise NotImplementedError

    def signals(self) -> FrozenSet[str]:
        """Gate signals used by the (sub)network."""
        raise NotImplementedError

    def conducts(self, assignment: Mapping[str, bool], active_high: bool) -> bool:
        """Whether the network conducts end to end.

        ``active_high`` is ``True`` for n-type devices (conduct when the
        gate signal is 1) and ``False`` for p-type devices.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class SPLeaf(SPNode):
    """A single transistor controlled by ``signal``."""

    signal: str

    def dual(self) -> "SPNode":
        return self

    def leaf_count(self) -> int:
        return 1

    def signals(self) -> FrozenSet[str]:
        return frozenset({self.signal})

    def conducts(self, assignment: Mapping[str, bool], active_high: bool) -> bool:
        try:
            value = bool(assignment[self.signal])
        except KeyError:
            raise NetworkError(f"No value provided for signal {self.signal!r}") from None
        return value if active_high else not value

    def __str__(self) -> str:
        return self.signal


@dataclass(frozen=True)
class SPSeries(SPNode):
    """Series composition of sub-networks."""

    children: Tuple[SPNode, ...]

    def __post_init__(self):
        if len(self.children) < 2:
            raise NetworkError("Series composition needs at least two children")

    def dual(self) -> "SPNode":
        return SPParallel(tuple(child.dual() for child in self.children))

    def leaf_count(self) -> int:
        return sum(child.leaf_count() for child in self.children)

    def signals(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for child in self.children:
            names |= child.signals()
        return names

    def conducts(self, assignment: Mapping[str, bool], active_high: bool) -> bool:
        return all(child.conducts(assignment, active_high) for child in self.children)

    def __str__(self) -> str:
        return "(" + " - ".join(str(child) for child in self.children) + ")"


@dataclass(frozen=True)
class SPParallel(SPNode):
    """Parallel composition of sub-networks."""

    children: Tuple[SPNode, ...]

    def __post_init__(self):
        if len(self.children) < 2:
            raise NetworkError("Parallel composition needs at least two children")

    def dual(self) -> "SPNode":
        return SPSeries(tuple(child.dual() for child in self.children))

    def leaf_count(self) -> int:
        return sum(child.leaf_count() for child in self.children)

    def signals(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for child in self.children:
            names |= child.signals()
        return names

    def conducts(self, assignment: Mapping[str, bool], active_high: bool) -> bool:
        return any(child.conducts(assignment, active_high) for child in self.children)

    def __str__(self) -> str:
        return "(" + " | ".join(str(child) for child in self.children) + ")"


def sp_from_expression(expr: Expr) -> SPNode:
    """Build a series-parallel tree from a negation-free AND/OR expression.

    The expression describes the *conduction condition* of the network; for
    a PDN this is the gate's pull-down function ``f`` in ``out = NOT f``.
    """
    if isinstance(expr, Var):
        return SPLeaf(expr.name)
    if isinstance(expr, And):
        return _series(tuple(sp_from_expression(op) for op in expr.operands))
    if isinstance(expr, Or):
        return _parallel(tuple(sp_from_expression(op) for op in expr.operands))
    if isinstance(expr, Not):
        raise NetworkError(
            "Series-parallel networks require a negation-free expression; "
            f"found negation of {expr.operand}"
        )
    if isinstance(expr, Const):
        raise NetworkError("Constant functions have no transistor network")
    raise NetworkError(f"Unsupported expression node {type(expr).__name__}")


def _series(children: Tuple[SPNode, ...]) -> SPNode:
    flat: List[SPNode] = []
    for child in children:
        if isinstance(child, SPSeries):
            flat.extend(child.children)
        else:
            flat.append(child)
    return flat[0] if len(flat) == 1 else SPSeries(tuple(flat))


def _parallel(children: Tuple[SPNode, ...]) -> SPNode:
    flat: List[SPNode] = []
    for child in children:
        if isinstance(child, SPParallel):
            flat.extend(child.children)
        else:
            flat.append(child)
    return flat[0] if len(flat) == 1 else SPParallel(tuple(flat))


# ---------------------------------------------------------------------------
# Flattened transistor network (electrical multigraph)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Transistor:
    """One transistor edge of a network graph."""

    name: str
    gate: str
    source: str
    drain: str
    device: str            # "nfet" | "pfet"
    width: float = 1.0     # relative width (multiples of the unit width)

    def __post_init__(self):
        if self.device not in ("nfet", "pfet"):
            raise NetworkError(f"Unknown device type {self.device!r}")
        if self.width <= 0:
            raise NetworkError(f"Transistor {self.name!r} width must be positive")

    @property
    def terminals(self) -> Tuple[str, str]:
        return (self.source, self.drain)

    def conducts(self, assignment: Mapping[str, bool]) -> bool:
        """Whether the channel conducts under the given input assignment."""
        try:
            value = bool(assignment[self.gate])
        except KeyError:
            raise NetworkError(f"No value provided for signal {self.gate!r}") from None
        return value if self.device == "nfet" else not value


class TransistorNetwork:
    """A multigraph of transistors between two terminal nets.

    ``power_net`` is the rail end (``vdd`` for a PUN, ``gnd`` for a PDN) and
    ``output_net`` the cell output.  Internal nets are named ``m1, m2, ...``.
    """

    def __init__(self, device: str, power_net: str, output_net: str = OUTPUT_NET):
        if device not in ("nfet", "pfet"):
            raise NetworkError(f"Unknown device type {device!r}")
        self.device = device
        self.power_net = power_net
        self.output_net = output_net
        self.transistors: List[Transistor] = []
        self._internal_counter = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_sp(
        cls,
        tree: SPNode,
        device: str,
        power_net: str,
        output_net: str = OUTPUT_NET,
        name_prefix: str = "M",
    ) -> "TransistorNetwork":
        """Flatten a series-parallel tree into a transistor multigraph."""
        network = cls(device, power_net, output_net)
        network._expand(tree, power_net, output_net, name_prefix)
        return network

    def _new_internal_net(self) -> str:
        self._internal_counter += 1
        return f"m{self._internal_counter}"

    def _expand(self, node: SPNode, net_a: str, net_b: str, prefix: str) -> None:
        if isinstance(node, SPLeaf):
            index = len(self.transistors) + 1
            self.transistors.append(
                Transistor(
                    name=f"{prefix}{index}",
                    gate=node.signal,
                    source=net_a,
                    drain=net_b,
                    device=self.device,
                )
            )
            return
        if isinstance(node, SPSeries):
            nets = [net_a]
            for _ in range(len(node.children) - 1):
                nets.append(self._new_internal_net())
            nets.append(net_b)
            for child, (left, right) in zip(node.children, zip(nets[:-1], nets[1:])):
                self._expand(child, left, right, prefix)
            return
        if isinstance(node, SPParallel):
            for child in node.children:
                self._expand(child, net_a, net_b, prefix)
            return
        raise NetworkError(f"Unsupported SP node {type(node).__name__}")

    def add_transistor(self, transistor: Transistor) -> None:
        """Add an explicit transistor edge (used by custom networks)."""
        if transistor.device != self.device:
            raise NetworkError(
                f"Cannot add a {transistor.device} to a {self.device} network"
            )
        self.transistors.append(transistor)

    # -- queries --------------------------------------------------------------

    def nets(self) -> List[str]:
        """All net names, terminals first."""
        names = [self.power_net, self.output_net]
        for transistor in self.transistors:
            for net in transistor.terminals:
                if net not in names:
                    names.append(net)
        return names

    def internal_nets(self) -> List[str]:
        """Nets other than the two terminals."""
        return [n for n in self.nets() if n not in (self.power_net, self.output_net)]

    def signals(self) -> List[str]:
        """Gate signals in first-use order."""
        seen: List[str] = []
        for transistor in self.transistors:
            if transistor.gate not in seen:
                seen.append(transistor.gate)
        return seen

    def degree(self, net: str) -> int:
        """Number of transistor terminals attached to ``net``."""
        return sum(transistor.terminals.count(net) for transistor in self.transistors)

    def conducts(self, assignment: Mapping[str, bool]) -> bool:
        """Whether the network conducts between its two terminals under the
        given assignment (graph reachability over conducting edges)."""
        return self._connected(self.power_net, self.output_net, assignment)

    def _connected(self, net_a: str, net_b: str, assignment: Mapping[str, bool]) -> bool:
        frontier = [net_a]
        reached = {net_a}
        while frontier:
            net = frontier.pop()
            if net == net_b:
                return True
            for transistor in self.transistors:
                if not transistor.conducts(assignment):
                    continue
                if net in transistor.terminals:
                    other = (
                        transistor.drain
                        if transistor.source == net
                        else transistor.source
                    )
                    if other not in reached:
                        reached.add(other)
                        frontier.append(other)
        return net_b in reached

    def with_widths(self, widths: Mapping[str, float]) -> "TransistorNetwork":
        """Return a copy with per-transistor widths applied (missing names
        keep their current width)."""
        copy = TransistorNetwork(self.device, self.power_net, self.output_net)
        copy._internal_counter = self._internal_counter
        for transistor in self.transistors:
            width = widths.get(transistor.name, transistor.width)
            copy.transistors.append(
                Transistor(
                    name=transistor.name,
                    gate=transistor.gate,
                    source=transistor.source,
                    drain=transistor.drain,
                    device=transistor.device,
                    width=width,
                )
            )
        return copy

    def __len__(self) -> int:
        return len(self.transistors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransistorNetwork({self.device}, {self.power_net}->{self.output_net}, "
            f"{len(self.transistors)} devices)"
        )


# ---------------------------------------------------------------------------
# A complete static gate: PDN + PUN
# ---------------------------------------------------------------------------

@dataclass
class GateNetworks:
    """The PUN/PDN pair of an inverting static gate ``out = NOT f``.

    Attributes
    ----------
    name:
        Cell name (e.g. ``"NAND3"``).
    pulldown_function:
        The negation-free expression ``f``.
    pdn_tree / pun_tree:
        Series-parallel trees of the PDN and the (dual) PUN.
    pdn / pun:
        Flattened transistor networks.
    """

    name: str
    pulldown_function: Expr
    pdn_tree: SPNode = field(init=False)
    pun_tree: SPNode = field(init=False)
    pdn: TransistorNetwork = field(init=False)
    pun: TransistorNetwork = field(init=False)

    def __post_init__(self):
        self.pdn_tree = sp_from_expression(self.pulldown_function)
        self.pun_tree = self.pdn_tree.dual()
        self.pdn = TransistorNetwork.from_sp(
            self.pdn_tree, device="nfet", power_net=GND_NET, name_prefix="MN"
        )
        self.pun = TransistorNetwork.from_sp(
            self.pun_tree, device="pfet", power_net=VDD_NET, name_prefix="MP"
        )

    @property
    def inputs(self) -> Tuple[str, ...]:
        """Ordered input names (first-use order in the pull-down function)."""
        ordered: List[str] = []
        for signal in self.pdn.signals():
            if signal not in ordered:
                ordered.append(signal)
        return tuple(ordered)

    @property
    def transistor_count(self) -> int:
        return len(self.pdn) + len(self.pun)

    def output_value(self, assignment: Mapping[str, bool]) -> Optional[bool]:
        """Output driven by the gate under an input assignment.

        Returns ``True``/``False`` when exactly one network conducts,
        ``None`` for a conflict (both conduct) or a floating output
        (neither conducts) — a well-formed static gate never hits either.
        """
        pull_down = self.pdn.conducts(assignment)
        pull_up = self.pun.conducts(assignment)
        if pull_up and not pull_down:
            return True
        if pull_down and not pull_up:
            return False
        return None

    def truth_table(self) -> TruthTable:
        """Tabulated gate function."""
        return TruthTable.from_function(self.output_value, self.inputs)

    def is_complementary(self) -> bool:
        """Whether PUN and PDN are complementary (exactly one conducts for
        every input assignment)."""
        for bits in itertools.product((False, True), repeat=len(self.inputs)):
            assignment = dict(zip(self.inputs, bits))
            if self.pdn.conducts(assignment) == self.pun.conducts(assignment):
                return False
        return True

    def expected_truth_table(self) -> TruthTable:
        """Truth table of ``NOT f`` computed directly from the expression."""
        return TruthTable.from_function(
            lambda assignment: not self.pulldown_function.evaluate(assignment),
            self.inputs,
        )
