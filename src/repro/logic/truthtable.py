"""Truth tables and functional equivalence checks.

Used both by the logic layer (to verify that generated PUN/PDN networks
implement the intended cell function) and by the mispositioned-CNT immunity
checker (to compare the behaviour of a perturbed layout against the nominal
truth table under every input combination).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import LogicError
from .expr import Expr


@dataclass(frozen=True)
class TruthTable:
    """A complete truth table over an ordered tuple of input names.

    ``outputs[i]`` is the output for the input combination whose bits are
    the binary expansion of ``i`` with ``inputs[0]`` as the most significant
    bit (so row 0 is all-zeros and the last row is all-ones).
    """

    inputs: Tuple[str, ...]
    outputs: Tuple[Optional[bool], ...]

    def __post_init__(self):
        expected = 1 << len(self.inputs)
        if len(self.outputs) != expected:
            raise LogicError(
                f"Truth table over {len(self.inputs)} inputs needs {expected} rows, "
                f"got {len(self.outputs)}"
            )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_expression(cls, expr: Expr, inputs: Optional[Sequence[str]] = None) -> "TruthTable":
        """Tabulate a Boolean expression (inputs default to sorted variables)."""
        names = tuple(inputs) if inputs is not None else tuple(sorted(expr.variables()))
        missing = expr.variables() - set(names)
        if missing:
            raise LogicError(f"Expression uses variables not listed as inputs: {sorted(missing)}")
        outputs = tuple(
            expr.evaluate(dict(zip(names, bits)))
            for bits in _all_assignments(len(names))
        )
        return cls(names, outputs)

    @classmethod
    def from_function(
        cls, function: Callable[[Mapping[str, bool]], Optional[bool]], inputs: Sequence[str]
    ) -> "TruthTable":
        """Tabulate a Python callable mapping assignments to output values.

        The callable may return ``None`` to denote an undefined / floating
        output (used by the immunity checker for conflicting drive).
        """
        names = tuple(inputs)
        outputs = tuple(
            function(dict(zip(names, bits))) for bits in _all_assignments(len(names))
        )
        return cls(names, outputs)

    # -- queries -----------------------------------------------------------------

    def row(self, assignment: Mapping[str, bool]) -> Optional[bool]:
        """Output for a specific assignment."""
        index = 0
        for name in self.inputs:
            if name not in assignment:
                raise LogicError(f"Assignment missing input {name!r}")
            index = (index << 1) | (1 if assignment[name] else 0)
        return self.outputs[index]

    def rows(self) -> Iterable[Tuple[Dict[str, bool], Optional[bool]]]:
        """Iterate over ``(assignment, output)`` pairs."""
        for index, bits in enumerate(_all_assignments(len(self.inputs))):
            yield dict(zip(self.inputs, bits)), self.outputs[index]

    def is_complete(self) -> bool:
        """Whether every row has a defined (non-``None``) output."""
        return all(value is not None for value in self.outputs)

    def equivalent_to(self, other: "TruthTable") -> bool:
        """Functional equivalence (requires identical input sets; input
        order may differ)."""
        if set(self.inputs) != set(other.inputs):
            return False
        for assignment, output in self.rows():
            if output != other.row(assignment):
                return False
        return True

    def differing_rows(self, other: "TruthTable") -> List[Dict[str, bool]]:
        """Assignments on which the two tables disagree."""
        if set(self.inputs) != set(other.inputs):
            raise LogicError(
                f"Cannot compare tables over different inputs: "
                f"{sorted(self.inputs)} vs {sorted(other.inputs)}"
            )
        return [
            assignment
            for assignment, output in self.rows()
            if output != other.row(assignment)
        ]

    def format(self) -> str:
        """Human-readable table used by reports and examples."""
        header = " ".join(self.inputs) + " | out"
        lines = [header, "-" * len(header)]
        for assignment, output in self.rows():
            bits = " ".join("1" if assignment[name] else "0" for name in self.inputs)
            out = "X" if output is None else ("1" if output else "0")
            lines.append(f"{bits} | {out}")
        return "\n".join(lines)


def _all_assignments(count: int) -> Iterable[Tuple[bool, ...]]:
    return itertools.product((False, True), repeat=count)


def expressions_equivalent(left: Expr, right: Expr) -> bool:
    """Whether two expressions compute the same function over the union of
    their variables."""
    names = tuple(sorted(left.variables() | right.variables()))
    for bits in _all_assignments(len(names)):
        assignment = dict(zip(names, bits))
        if left.evaluate(assignment) != right.evaluate(assignment):
            return False
    return True
