"""repro.obs — structured tracing, metrics, and the repo's only clocks.

Three stdlib-only modules:

* :mod:`repro.obs.clock` — the sole sanctioned readers of
  ``time.time``/``time.monotonic``/``time.perf_counter`` (reprolint
  RPL010 fences every other module);
* :mod:`repro.obs.metrics` — a process-wide registry of counters and
  fixed-bucket histograms, snapshotted by ``GET /metrics`` and every
  trace envelope;
* :mod:`repro.obs.trace` — the span tracer and its module-level
  helpers (:func:`span`, :func:`annotate`, :func:`event`, :func:`add`)
  that every instrumented layer calls; all of them no-op when no tracer
  is active, which is what makes tracing observation-only.
"""

from . import clock
from .metrics import DEFAULT_BUCKETS, MetricsRegistry, registry, reset_registry
from .trace import (TRACE_SCHEMA, Span, Tracer, add, annotate, current_tracer,
                    event, span, summarize_trace, trace_counters, write_trace)

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "add",
    "annotate",
    "clock",
    "current_tracer",
    "event",
    "registry",
    "reset_registry",
    "span",
    "summarize_trace",
    "trace_counters",
    "write_trace",
]
