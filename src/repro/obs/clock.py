"""The only module in ``repro`` allowed to read process clocks.

Every wall-clock or monotonic read in the codebase funnels through these
three functions so that reprolint rule RPL010 can enforce, by a pure
AST scan, that no other module observes time.  Keeping the readers in
one place is what makes the observation-only contract checkable: span
timestamps and cache metadata may *record* time, but nothing outside
``repro.obs`` may *branch* on it, and nothing anywhere may feed it into
a content address (RPL003 guards the fingerprinted modules separately).

>>> isinstance(wall_time(), float)
True
>>> monotonic() <= monotonic()
True
"""

from __future__ import annotations

import time

__all__ = ["wall_time", "monotonic", "perf_counter"]


def wall_time() -> float:
    """Seconds since the Unix epoch (``time.time``)."""
    return time.time()


def monotonic() -> float:
    """Monotonic seconds, unaffected by wall-clock steps."""
    return time.monotonic()


def perf_counter() -> float:
    """Highest-resolution monotonic counter, for benchmarks."""
    return time.perf_counter()
