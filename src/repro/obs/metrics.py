"""Process-wide metrics registry: counters and fixed-bucket histograms.

A deliberately small, stdlib-only aggregation surface.  Counters are
monotonically increasing floats; histograms have *fixed* bucket edges
chosen at registration time (so two snapshots are always mergeable and
the wire form is stable).  The registry is shared process state — the
service's ``GET /metrics`` endpoint and every trace envelope embed a
snapshot of it — but reading it never mutates it, and nothing in the
numeric pipeline ever reads it back, so it cannot perturb payloads.

>>> reg = MetricsRegistry()
>>> reg.inc("cache.hits", 2)
>>> reg.observe("queue.latency_s", 0.25, buckets=(0.1, 1.0, 10.0))
>>> snap = reg.snapshot()
>>> snap["counters"]["cache.hits"]
2.0
>>> snap["histograms"]["queue.latency_s"]["counts"]
[0, 1, 0, 0]
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

# Module-object import (names resolved at call time) so that the
# cache -> obs -> runtime import triangle stays robust regardless of
# which package a consumer imports first.
from ..runtime import scheduler as _scheduler

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "registry",
    "reset_registry",
]

#: Default histogram edges (seconds): micro-task through long batch job.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0,
)


class MetricsRegistry:
    """Thread-safe counters plus fixed-bucket histograms."""

    def __init__(self) -> None:
        self._lock = _scheduler.make_lock()
        self._counters: Dict[str, float] = {}
        # name -> (edges, per-bucket counts incl. +inf overflow, sum, count)
        self._histograms: Dict[str, Dict[str, Any]] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        """Record ``value`` into histogram ``name``.

        ``buckets`` fixes the edges on first observation and is ignored
        afterwards — edges are part of the histogram's identity.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                edges = tuple(float(e) for e in (buckets or DEFAULT_BUCKETS))
                hist = {
                    "edges": edges,
                    "counts": [0] * (len(edges) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._histograms[name] = hist
            value = float(value)
            index = len(hist["edges"])
            for position, edge in enumerate(hist["edges"]):
                if value <= edge:
                    index = position
                    break
            hist["counts"][index] += 1
            hist["sum"] += value
            hist["count"] += 1

    def snapshot(self) -> Dict[str, Any]:
        """A deep, JSON-ready copy of the current state."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {
                    name: {
                        "edges": list(hist["edges"]),
                        "counts": list(hist["counts"]),
                        "sum": hist["sum"],
                        "count": hist["count"],
                    }
                    for name, hist in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Drop every counter and histogram (tests only)."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry every layer reports into."""
    return _REGISTRY


def reset_registry() -> None:
    """Clear the process-wide registry (test isolation helper)."""
    _REGISTRY.reset()
