"""Span-based tracing: where a run spent its time, without touching it.

A :class:`Tracer` owns a flat list of :class:`Span` records (parent
links by id, not nesting — the trace envelope stays validatable by the
repo's ``$ref``-free JSON schema subset).  Instrumented code never talks
to a tracer directly; it calls the module-level helpers —

* :func:`span` — open a nested span on the *active* tracer (no-op
  context manager when tracing is off),
* :func:`annotate` / :func:`event` / :func:`add` — attach attributes,
  point-in-time events, or counter deltas to the current span,

so every call site is observation-only by construction: with no active
tracer each helper returns immediately, and the instrumented function's
data path is byte-for-byte the untraced one.  ``tests/test_obs.py``
counter-proves this by diffing ``StudyResult.to_json()`` bytes with
tracing on and off.

The active tracer is tracked per-thread (``threading.local``): the
thread scheduler backend inherits nothing implicitly, and the process
backend cannot see the parent's tracer at all — worker-side sections
are aggregated by the parent's ``scheduler.run_tasks`` span instead.

Envelope (``repro-trace/v1``, schema at ``docs/repro_trace.schema.json``)::

    {"schema": "repro-trace/v1", "name": ..., "attributes": {...},
     "wall_start_s": ..., "duration_s": ...,
     "spans": [{"id", "parent", "name", "start_s", "duration_s",
                "attributes", "counters", "events"}, ...],
     "metrics": {"counters": {...}, "histograms": {...}}}

Span timestamps are relative to the tracer's monotonic origin; the one
wall-clock value (``wall_start_s``) anchors the envelope for humans and
never enters any content address.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

# Module-object imports (resolved at call time) keep the
# cache -> obs -> runtime import triangle order-independent.
from ..runtime import scheduler as _scheduler
from . import clock, metrics

__all__ = [
    "Span",
    "TRACE_SCHEMA",
    "Tracer",
    "add",
    "annotate",
    "current_tracer",
    "event",
    "span",
    "summarize_trace",
    "trace_counters",
    "write_trace",
]

TRACE_SCHEMA = "repro-trace/v1"

_ACTIVE = threading.local()


def _json_safe(value: Any) -> Any:
    """Coerce an attribute value to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


class Span:
    """One timed section: name, parent link, attributes, counters, events.

    Spans are created through :meth:`Tracer.span` and closed by the
    context manager; ``start_s``/``duration_s`` are monotonic offsets
    from the tracer's origin, so subtracting two spans' starts is always
    meaningful and wall-clock steps cannot corrupt a trace.
    """

    __slots__ = ("span_id", "parent_id", "name", "start_s", "duration_s",
                 "attributes", "counters", "events")

    def __init__(self, span_id: int, parent_id: int, name: str,
                 start_s: float) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.duration_s: Optional[float] = None
        self.attributes: Dict[str, Any] = {}
        self.counters: Dict[str, float] = {}
        self.events: List[Dict[str, Any]] = []

    def annotate(self, **attributes: Any) -> None:
        for key, value in attributes.items():
            self.attributes[key] = _json_safe(value)

    def add(self, counter: str, value: float = 1.0) -> None:
        self.counters[counter] = self.counters.get(counter, 0.0) + float(value)

    def to_document(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s if self.duration_s is not None
            else 0.0,
            "attributes": dict(self.attributes),
            "counters": dict(self.counters),
            "events": list(self.events),
        }


class Tracer:
    """Collects spans for one traced operation (a CLI run, a job).

    Thread-safe: the span list is lock-guarded and the open-span stack is
    per-thread, so thread-backend workers record their sections under the
    correct parent while serial code pays one lock per span.
    """

    def __init__(self, name: str, **attributes: Any) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = {}
        self.annotate(**attributes)
        self._lock = _scheduler.make_lock()
        self._spans: List[Span] = []
        self._stack = threading.local()
        self._origin = clock.monotonic()
        self._wall_start_s = clock.wall_time()
        self._duration_s: Optional[float] = None

    # -- span lifecycle ------------------------------------------------

    def _open_stack(self) -> List[Span]:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = []
            self._stack.spans = stack
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._open_stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a nested span; the parent is this thread's innermost
        open span (or the envelope root, parent id ``-1``)."""
        stack = self._open_stack()
        parent_id = stack[-1].span_id if stack else -1
        with self._lock:
            record = Span(len(self._spans), parent_id, name,
                          clock.monotonic() - self._origin)
            self._spans.append(record)
        record.annotate(**attributes)
        stack.append(record)
        try:
            yield record
        finally:
            stack.pop()
            record.duration_s = (clock.monotonic() - self._origin
                                 - record.start_s)

    # -- annotations ---------------------------------------------------

    def annotate(self, **attributes: Any) -> None:
        for key, value in attributes.items():
            self.attributes[key] = _json_safe(value)

    def event(self, name: str, **attributes: Any) -> None:
        record = {
            "name": name,
            "t_s": clock.monotonic() - self._origin,
            "attributes": {key: _json_safe(value)
                           for key, value in attributes.items()},
        }
        current = self.current_span()
        if current is not None:
            current.events.append(record)
        # Events outside any span are dropped rather than invent a
        # synthetic root: the envelope's spans list stays authoritative.

    # -- activation ----------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Make this tracer the calling thread's active tracer."""
        stack = _active_stack()
        stack.append(self)
        try:
            yield self
        finally:
            stack.pop()
            self._duration_s = clock.monotonic() - self._origin

    # -- export --------------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        with self._lock:
            spans = [record.to_document() for record in self._spans]
        duration = self._duration_s
        if duration is None:
            duration = clock.monotonic() - self._origin
        return {
            "schema": TRACE_SCHEMA,
            "name": self.name,
            "attributes": dict(self.attributes),
            "wall_start_s": self._wall_start_s,
            "duration_s": duration,
            "spans": spans,
            "metrics": metrics.registry().snapshot(),
        }


def _active_stack() -> List[Tracer]:
    stack = getattr(_ACTIVE, "tracers", None)
    if stack is None:
        stack = []
        _ACTIVE.tracers = stack
    return stack


def current_tracer() -> Optional[Tracer]:
    """The calling thread's active tracer, or ``None`` (tracing off)."""
    stack = _active_stack()
    return stack[-1] if stack else None


@contextmanager
def span(name: str, **attributes: Any) -> Iterator[Optional[Span]]:
    """Open ``name`` on the active tracer; no-op when tracing is off."""
    tracer = current_tracer()
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attributes) as record:
        yield record


def annotate(**attributes: Any) -> None:
    """Attach attributes to the innermost open span, if any."""
    tracer = current_tracer()
    if tracer is None:
        return
    current = tracer.current_span()
    if current is not None:
        current.annotate(**attributes)


def event(name: str, **attributes: Any) -> None:
    """Record a point-in-time event on the innermost open span."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.event(name, **attributes)


def add(counter: str, value: float = 1.0) -> None:
    """Bump a counter on the innermost open span, if any."""
    tracer = current_tracer()
    if tracer is None:
        return
    current = tracer.current_span()
    if current is not None:
        current.add(counter, value)


# -- envelope utilities ------------------------------------------------

def write_trace(document: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Serialise a trace envelope to ``path`` (stable key order)."""
    target = Path(path)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def trace_counters(document: Dict[str, Any]) -> Dict[str, float]:
    """Sum every span's counters across the envelope.

    >>> doc = {"spans": [{"counters": {"cache.hits": 2}},
    ...                  {"counters": {"cache.hits": 1, "cache.misses": 1}}]}
    >>> trace_counters(doc) == {"cache.hits": 3.0, "cache.misses": 1.0}
    True
    """
    totals: Dict[str, float] = {}
    for record in document.get("spans", ()):
        for name, value in record.get("counters", {}).items():
            totals[name] = totals.get(name, 0.0) + float(value)
    return totals


def summarize_trace(document: Dict[str, Any]) -> str:
    """A human-readable per-phase breakdown of a trace envelope."""
    lines = [
        f"trace: {document.get('name', '?')}  "
        f"({document.get('duration_s', 0.0):.3f}s total)",
    ]
    for key, value in sorted(document.get("attributes", {}).items()):
        lines.append(f"  {key} = {value}")
    total = float(document.get("duration_s", 0.0)) or None
    by_name: Dict[str, Dict[str, float]] = {}
    for record in document.get("spans", ()):
        entry = by_name.setdefault(
            record["name"], {"count": 0.0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += float(record.get("duration_s", 0.0))
    if by_name:
        lines.append("spans:")
        width = max(len(name) for name in by_name)
        for name, entry in sorted(by_name.items(),
                                  key=lambda item: -item[1]["seconds"]):
            share = (f"  {100.0 * entry['seconds'] / total:5.1f}%"
                     if total else "")
            lines.append(
                f"  {name.ljust(width)}  x{int(entry['count']):<4d} "
                f"{entry['seconds']:9.4f}s{share}")
    counters = trace_counters(document)
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            rendered = int(value) if float(value).is_integer() else value
            lines.append(f"  {name} = {rendered}")
    return "\n".join(lines)
