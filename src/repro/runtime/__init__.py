"""The runtime layer: deterministic parallel execution + result caching.

Everything below this package computes; this package decides *how* and
*whether* to compute.  It sits on top of the study layer and gives every
study three service-shaped properties:

* **one scheduler** (:mod:`~repro.runtime.scheduler`) — an ordered,
  deterministic task map over serial / thread / process backends.  Every
  parallel path in the repository (``run_sweep_study(jobs=...)``,
  ``montecarlo.sweep(workers=...)``, the CLI ``--jobs`` flag) lowers
  onto it, and sharded runs are bit-identical to serial ones because
  seeds are spawned per corner in the parent and transient shards replay
  the full-grid time base;
* **one cache** (:mod:`~repro.runtime.cache` +
  :mod:`~repro.runtime.fingerprint`) — a content-addressed on-disk store
  of serialized :class:`~repro.study.results.StudyResult` envelopes,
  keyed by a stable hash of (study, params, seed, spec, engine, package
  version).  Warm re-runs skip the engines entirely; provenance records
  ``cache="hit"`` / ``"miss"``;
* **one batch runner** (:mod:`~repro.runtime.manifest`) — ``repro batch
  manifest.json`` executes a list of studies with cross-study dedup
  through the cache.

Import direction: ``repro.runtime`` imports ``repro.study``; the study
layer only reaches back lazily (inside functions), so the layering stays
acyclic.
"""

from .cache import (
    CACHE_SCHEMA,
    CacheStats,
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    ResultCache,
    as_cache,
    with_cache_status,
)
from .fingerprint import EXECUTION_PARAMS, study_fingerprint, sweep_fingerprint
from .manifest import ManifestEntry, ManifestOutcome, ManifestResult, run_manifest
from .scheduler import (
    BACKENDS,
    plan_shards,
    resolve_backend,
    resolve_jobs,
    run_tasks,
    shard_indices,
)

__all__ = [
    "BACKENDS",
    "CACHE_SCHEMA",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "EXECUTION_PARAMS",
    "ManifestEntry",
    "ManifestOutcome",
    "ManifestResult",
    "ResultCache",
    "as_cache",
    "plan_shards",
    "resolve_backend",
    "resolve_jobs",
    "run_manifest",
    "run_tasks",
    "shard_indices",
    "study_fingerprint",
    "sweep_fingerprint",
    "with_cache_status",
]
