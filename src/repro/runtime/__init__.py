"""The runtime layer: deterministic parallel execution + result caching.

Everything below this package computes; this package decides *how* and
*whether* to compute.  It sits on top of the study layer and gives every
study three service-shaped properties:

* **one scheduler** (:mod:`~repro.runtime.scheduler`) — an ordered,
  deterministic task map over serial / thread / process backends.  Every
  parallel path in the repository (``run_sweep_study(jobs=...)``,
  ``montecarlo.sweep(workers=...)``, the CLI ``--jobs`` flag) lowers
  onto it, and sharded runs are bit-identical to serial ones because
  seeds are spawned per corner in the parent and transient shards replay
  the full-grid time base;
* **one cache** (:mod:`~repro.runtime.cache` +
  :mod:`~repro.runtime.fingerprint`) — a content-addressed on-disk store
  at two granularities: serialized
  :class:`~repro.study.results.StudyResult` envelopes keyed by a stable
  hash of (study, params, seed, spec, engine, package version), and
  per-corner metric envelopes keyed by each corner's resolved binding,
  spawned seed and shared-state context.  Warm re-runs skip the engines
  entirely; *changed* sweeps execute only the corners the store lacks
  (the delta path); provenance records ``cache="hit"`` / ``"miss"`` /
  ``"partial:<hits>/<corners>"``;
* **one batch runner** (:mod:`~repro.runtime.manifest`) — ``repro batch
  manifest.json`` executes a list of studies with cross-study dedup
  through the cache.

Import direction: ``repro.runtime`` imports ``repro.study``; the study
layer only reaches back lazily (inside functions), so the layering stays
acyclic.
"""

from .cache import (
    CACHE_SCHEMA,
    CORNER_SCHEMA,
    CacheStats,
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    ResultCache,
    as_cache,
    with_cache_status,
)
from .fingerprint import (
    EXECUTION_PARAMS,
    corner_fingerprint,
    study_fingerprint,
    sweep_fingerprint,
)
from .manifest import ManifestEntry, ManifestOutcome, ManifestResult, run_manifest
from .scheduler import (
    BACKENDS,
    DeltaPlan,
    plan_delta,
    plan_shards,
    resolve_backend,
    resolve_jobs,
    run_tasks,
    shard_indices,
)

__all__ = [
    "BACKENDS",
    "CACHE_SCHEMA",
    "CORNER_SCHEMA",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "DeltaPlan",
    "ENV_CACHE_DIR",
    "EXECUTION_PARAMS",
    "ManifestEntry",
    "ManifestOutcome",
    "ManifestResult",
    "ResultCache",
    "as_cache",
    "corner_fingerprint",
    "plan_delta",
    "plan_shards",
    "resolve_backend",
    "resolve_jobs",
    "run_manifest",
    "run_tasks",
    "shard_indices",
    "study_fingerprint",
    "sweep_fingerprint",
    "with_cache_status",
]
