"""The content-addressed on-disk result store.

Two granularities share one store root:

* **Study entries** — one serialized
  :class:`~repro.study.results.StudyResult` envelope filed under the
  :mod:`~repro.runtime.fingerprint` of the invocation that produced it.
* **Corner entries** — one tagged-JSON metrics payload per evaluated
  sweep corner, filed under its
  :func:`~repro.runtime.fingerprint.corner_fingerprint`.  These are what
  make sweep re-runs *incremental*: extending an axis only recomputes
  the corners whose addresses are absent
  (:func:`~repro.study.sweeps.run_sweep_study`).

::

    <root>/
      objects/<key[:2]>/<key>.json     one study entry per fingerprint
      corners/<key[:2]>/<key>.json     one corner envelope per fingerprint
      stats.json                       cumulative hit/miss/corrupt counters
                                       (study- and corner-level)

Entry files wrap their payload in a small integrity document
(``repro-cache-entry/v1`` / ``repro-corner-entry/v1``) carrying the
fingerprint and a SHA-256 digest of the canonical payload text.  Reads
re-validate both; anything that fails — truncated JSON, digest mismatch,
foreign fingerprint — is treated as a miss, counted as *corrupt*, and
evicted, so a damaged store degrades to recomputation instead of wrong
answers.

Writes are atomic (temp file + ``os.replace`` in the same directory), so
concurrent writers and readers — the scheduler's whole point — never
observe half an entry.

The default store location is ``.repro-cache/`` under the current
directory; the ``REPRO_CACHE_DIR`` environment variable or an explicit
``root`` overrides it (CLI: ``--cache DIR`` / ``--no-cache``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple, Union

from ..errors import CacheError
from ..obs import clock as obs_clock
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..study.results import StudyResult
from .scheduler import make_lock

#: Version tag of the on-disk cache entry wrapper.
CACHE_SCHEMA = "repro-cache-entry/v1"

#: Version tag of the on-disk per-corner envelope wrapper.
CORNER_SCHEMA = "repro-corner-entry/v1"

#: Environment variable naming the default cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Store location used when neither an explicit root nor the environment
#: variable names one.
DEFAULT_CACHE_DIR = ".repro-cache"

CacheLike = Union[None, bool, str, os.PathLike, "ResultCache"]

#: One lock per stats file (keyed by absolute path), shared by every
#: :class:`ResultCache` instance in the process.  Counter persistence is
#: a read-modify-write of ``stats.json``; without mutual exclusion two
#: concurrent service jobs interleave and drop increments.  The lock
#: comes from :func:`~repro.runtime.scheduler.make_lock` — the
#: scheduler module is the sanctioned home of concurrency primitives.
_STATS_LOCKS: Dict[str, Any] = {}
_STATS_LOCKS_GUARD = make_lock()


def _stats_lock(path: Path):
    """The process-wide lock serialising counter updates of ``path``."""
    key = os.path.abspath(os.fspath(path))
    with _STATS_LOCKS_GUARD:
        lock = _STATS_LOCKS.get(key)
        if lock is None:
            lock = make_lock()
            _STATS_LOCKS[key] = lock
    return lock


@dataclass(frozen=True)
class CacheStats:
    """One snapshot of a cache store: contents plus lifetime counters."""

    root: str
    entries: int = 0
    total_bytes: int = 0
    by_study: Dict[str, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    corner_entries: int = 0
    corner_bytes: int = 0
    corner_hits: int = 0
    corner_misses: int = 0
    corner_corrupt: int = 0

    def __str__(self) -> str:
        lines = [
            f"cache root   : {self.root}",
            f"entries      : {self.entries}",
            f"total bytes  : {self.total_bytes}",
            f"hits         : {self.hits}",
            f"misses       : {self.misses}",
            f"corrupt      : {self.corrupt}",
        ]
        for study in sorted(self.by_study):
            lines.append(f"  {study:<12}: {self.by_study[study]}")
        lines += [
            f"corner entries : {self.corner_entries}",
            f"corner bytes   : {self.corner_bytes}",
            f"corner hits    : {self.corner_hits}",
            f"corner misses  : {self.corner_misses}",
            f"corner corrupt : {self.corner_corrupt}",
        ]
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "by_study": dict(self.by_study),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "corner_entries": self.corner_entries,
            "corner_bytes": self.corner_bytes,
            "corner_hits": self.corner_hits,
            "corner_misses": self.corner_misses,
            "corner_corrupt": self.corner_corrupt,
        }


def _canonical_envelope_text(envelope: Dict[str, Any]) -> str:
    return json.dumps(envelope, sort_keys=True, separators=(",", ":"))


def _envelope_digest(envelope: Dict[str, Any]) -> str:
    return hashlib.sha256(
        _canonical_envelope_text(envelope).encode("utf-8")
    ).hexdigest()


def with_cache_status(result: StudyResult, status: str) -> StudyResult:
    """A copy of ``result`` whose provenance records ``status`` ("hit" or
    "miss").  The ``cache`` provenance field is excluded from equality,
    so a warm-cache copy still compares equal to the cold-run original —
    the bit-identity contract survives annotation."""
    provenance = dataclasses.replace(result.provenance, cache=status)
    return dataclasses.replace(result, provenance=provenance)


class ResultCache:
    """A content-addressed store of typed study results.

    >>> import tempfile
    >>> from repro.study.results import Fig3Result, Provenance
    >>> root = tempfile.mkdtemp()
    >>> cache = ResultCache(root)
    >>> result = Fig3Result(provenance=Provenance.capture("fig3"),
    ...                     baseline_area=288.0)
    >>> cache.get("0" * 64) is None      # cold store: a miss
    True
    >>> _ = cache.put("0" * 64, result)
    >>> cache.get("0" * 64) == result    # warm store: the same result
    True
    >>> stats = cache.stats()
    >>> (stats.entries, stats.hits, stats.misses)
    (1, 1, 1)
    """

    def __init__(self, root: Union[None, str, os.PathLike] = None):
        if root is None:
            root = os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR
        self.root = Path(root)

    # -- paths -----------------------------------------------------------------

    @property
    def _objects(self) -> Path:
        return self.root / "objects"

    @property
    def _corners(self) -> Path:
        return self.root / "corners"

    @property
    def _stats_path(self) -> Path:
        return self.root / "stats.json"

    def path_for(self, key: str) -> Path:
        """Where the study entry for ``key`` lives (whether or not it
        exists)."""
        return self._keyed_path(self._objects, key)

    def corner_path_for(self, key: str) -> Path:
        """Where the corner envelope for ``key`` lives (whether or not it
        exists)."""
        return self._keyed_path(self._corners, key)

    @staticmethod
    def _keyed_path(tree: Path, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise CacheError(f"Malformed cache key {key!r}")
        return tree / key[:2] / f"{key}.json"

    def _entries(self) -> Iterator[Path]:
        yield from self._tree_entries(self._objects)

    def _corner_entries(self) -> Iterator[Path]:
        yield from self._tree_entries(self._corners)

    @staticmethod
    def _tree_entries(tree: Path) -> Iterator[Path]:
        if not tree.is_dir():
            return
        for shard in sorted(tree.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.json"))

    # -- atomic file primitives ------------------------------------------------

    def _write_atomic(self, path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(text)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _bump(self, hits: int = 0, misses: int = 0, corrupt: int = 0,
              corner_hits: int = 0, corner_misses: int = 0,
              corner_corrupt: int = 0) -> None:
        """Fold counter deltas into ``stats.json``.  Strictly best-effort:
        counters are telemetry, so an unwritable store (read-only mount,
        foreign ownership) must never turn a valid hit into a failure —
        the write is simply skipped.  The read-modify-write is serialised
        by a process-wide per-store lock (shared across instances), so
        concurrent service jobs never drop an increment; the replace
        itself is atomic, so a reader never sees half a file."""
        self._mirror(hits=hits, misses=misses, corrupt=corrupt,
                     corner_hits=corner_hits, corner_misses=corner_misses,
                     corner_corrupt=corner_corrupt)
        with _stats_lock(self._stats_path):
            counters = self._counters()
            counters["hits"] += hits
            counters["misses"] += misses
            counters["corrupt"] += corrupt
            counters["corner_hits"] += corner_hits
            counters["corner_misses"] += corner_misses
            counters["corner_corrupt"] += corner_corrupt
            counters["updated"] = obs_clock.wall_time()
            try:
                self._write_atomic(self._stats_path, json.dumps(counters))
            except OSError:
                pass

    @staticmethod
    def _mirror(**deltas: int) -> None:
        """Mirror nonzero counter deltas into the process metrics registry
        and the active trace span (if any).  ``stats.json`` stays the
        durable record; the obs copies are the live, queryable view."""
        for name, value in deltas.items():
            if value:
                obs_metrics.registry().inc(f"cache.{name}", value)
                obs_trace.add(f"cache.{name}", value)

    def _counters(self) -> Dict[str, Any]:
        try:
            with open(self._stats_path, "r", encoding="utf-8") as stream:
                raw = json.load(stream)
        except (OSError, json.JSONDecodeError):
            raw = {}
        return {
            "hits": int(raw.get("hits", 0)),
            "misses": int(raw.get("misses", 0)),
            "corrupt": int(raw.get("corrupt", 0)),
            "corner_hits": int(raw.get("corner_hits", 0)),
            "corner_misses": int(raw.get("corner_misses", 0)),
            "corner_corrupt": int(raw.get("corner_corrupt", 0)),
        }

    # -- the store API ---------------------------------------------------------

    def get(self, key: str) -> Optional[StudyResult]:
        """The stored result for ``key``, or ``None`` (a miss).

        Integrity is re-validated on every read; corrupt entries are
        evicted and count as both *corrupt* and a miss.
        """
        path = self.path_for(key)
        document, corrupt = self._load_entry(path, key)
        result = None
        if document is not None:
            try:
                result = StudyResult.from_json_dict(document)
            except Exception:
                # A digest-valid entry that no longer decodes (result
                # class reshaped without a version bump, hand-edited
                # store) is corrupt, not fatal: evict and recompute.
                corrupt = True
        if result is None:
            self._bump(misses=1, corrupt=1 if corrupt else 0)
            if corrupt:
                obs_trace.event("cache.evict", key=key, kind="study")
                obs_metrics.registry().inc("cache.evictions")
                try:
                    path.unlink()
                except OSError:
                    pass
            return None
        self._bump(hits=1)
        return result

    def _load_entry(self, path: Path,
                    key: str) -> Tuple[Optional[Dict[str, Any]], bool]:
        """``(envelope, corrupt)``: the validated result envelope, or
        ``(None, False)`` for absent and ``(None, True)`` for damaged."""
        try:
            with open(path, "r", encoding="utf-8") as stream:
                wrapper = json.load(stream)
        except FileNotFoundError:
            return None, False
        except (OSError, json.JSONDecodeError):
            return None, True
        if not isinstance(wrapper, dict):
            return None, True
        envelope = wrapper.get("result")
        if (wrapper.get("schema") != CACHE_SCHEMA
                or wrapper.get("fingerprint") != key
                or not isinstance(envelope, dict)
                or wrapper.get("sha256") != _envelope_digest(envelope)):
            return None, True
        return envelope, False

    def put(self, key: str, result: StudyResult) -> Path:
        """Persist ``result`` under ``key`` atomically; returns the entry
        path.  Does not touch the hit/miss counters — pair it with the
        :meth:`get` miss that preceded it."""
        envelope = result.to_json_dict()
        wrapper = {
            "schema": CACHE_SCHEMA,
            "fingerprint": key,
            "study": type(result).study_name,
            "sha256": _envelope_digest(envelope),
            "created": obs_clock.wall_time(),
            "result": envelope,
        }
        path = self.path_for(key)
        try:
            self._write_atomic(path, json.dumps(wrapper, sort_keys=True))
        except OSError as error:
            raise CacheError(
                f"Cannot write cache entry {path}: {error}"
            ) from error
        self._mirror(puts=1)
        return path

    # -- the corner store ------------------------------------------------------

    def get_corner(self, key: str) -> Optional[Any]:
        """The stored metrics payload for one corner fingerprint, or
        ``None`` (a miss).

        The integrity discipline mirrors the study store: schema tag,
        fingerprint and SHA-256 digest are re-validated on every read, and
        anything that fails — including a digest-valid payload that no
        longer decodes — is evicted and counted as corner-corrupt.
        """
        value, corrupt = self._read_corner(key)
        if value is None:
            self._bump(corner_misses=1, corner_corrupt=1 if corrupt else 0)
        else:
            self._bump(corner_hits=1)
        return value

    def _read_corner(self, key: str) -> Tuple[Optional[Any], bool]:
        """``(decoded payload or None, corrupt)`` — validates, decodes
        and evicts, but never touches the counters."""
        from ..study.serialize import decode

        path = self.corner_path_for(key)
        payload, corrupt = self._load_corner(path, key)
        value = None
        if payload is not None:
            try:
                value = decode(payload)
            except Exception:
                corrupt = True
        if value is None and corrupt:
            obs_trace.event("cache.evict", key=key, kind="corner")
            obs_metrics.registry().inc("cache.evictions")
            try:
                path.unlink()
            except OSError:
                pass
        return value, corrupt

    def _load_corner(self, path: Path,
                     key: str) -> Tuple[Optional[Any], bool]:
        """``(payload, corrupt)`` — the validated encoded payload, or
        ``(None, False)`` for absent and ``(None, True)`` for damaged."""
        try:
            with open(path, "r", encoding="utf-8") as stream:
                wrapper = json.load(stream)
        except FileNotFoundError:
            return None, False
        except (OSError, json.JSONDecodeError):
            return None, True
        if not isinstance(wrapper, dict):
            return None, True
        payload = wrapper.get("payload")
        if (wrapper.get("schema") != CORNER_SCHEMA
                or wrapper.get("fingerprint") != key
                or payload is None
                or wrapper.get("sha256") != _envelope_digest(payload)):
            return None, True
        return payload, False

    def get_corners(self, keys: Sequence[str]) -> Dict[str, Any]:
        """Bulk :meth:`get_corner`: ``{key: payload}`` for every key that
        validated, with the hit/miss/corrupt counters folded in as **one**
        stats write (a sweep diffs hundreds of corners per run)."""
        found: Dict[str, Any] = {}
        missing: set = set()
        hits = misses = corrupt = 0
        for key in keys:
            if key in found:
                hits += 1
                continue
            if key in missing:
                misses += 1
                continue
            value, was_corrupt = self._read_corner(key)
            if value is None:
                misses += 1
                corrupt += 1 if was_corrupt else 0
                missing.add(key)
            else:
                found[key] = value
                hits += 1
        self._bump(corner_hits=hits, corner_misses=misses,
                   corner_corrupt=corrupt)
        return found

    def put_corner(self, key: str, metrics: Any,
                   engine: str = "") -> Path:
        """Persist one corner's metrics payload under its fingerprint
        atomically; returns the entry path.  Counter-neutral, like
        :meth:`put`."""
        from ..study.serialize import encode

        payload = encode(metrics)
        wrapper = {
            "schema": CORNER_SCHEMA,
            "fingerprint": key,
            "study": "corner",
            "engine": engine,
            "sha256": _envelope_digest(payload),
            "created": obs_clock.wall_time(),
            "payload": payload,
        }
        path = self.corner_path_for(key)
        try:
            self._write_atomic(path, json.dumps(wrapper, sort_keys=True))
        except OSError as error:
            raise CacheError(
                f"Cannot write corner entry {path}: {error}"
            ) from error
        self._mirror(corner_puts=1)
        return path

    # -- maintenance -----------------------------------------------------------

    def stats(self) -> CacheStats:
        """Scan the store: entry counts, bytes, per-study breakdown (study
        entries) and corner-store totals, plus the cumulative
        hit/miss/corrupt counters of both granularities."""
        entries = 0
        total_bytes = 0
        by_study: Dict[str, int] = {}
        for path in self._entries():
            entries += 1
            try:
                total_bytes += path.stat().st_size
                with open(path, "r", encoding="utf-8") as stream:
                    study = json.load(stream).get("study", "?")
            except (OSError, json.JSONDecodeError):
                study = "?"
            by_study[study] = by_study.get(study, 0) + 1
        corner_entries = 0
        corner_bytes = 0
        for path in self._corner_entries():
            corner_entries += 1
            try:
                corner_bytes += path.stat().st_size
            except OSError:
                pass
        counters = self._counters()
        return CacheStats(
            root=str(self.root),
            entries=entries,
            total_bytes=total_bytes,
            by_study=by_study,
            corner_entries=corner_entries,
            corner_bytes=corner_bytes,
            **counters,
        )

    def prune(self, study: Optional[str] = None,
              max_age_s: Optional[float] = None,
              max_entries: Optional[int] = None) -> int:
        """Delete entries; returns the number removed.

        With no bounds this clears everything (optionally one study's
        entries — corner envelopes carry the pseudo-study ``"corner"``).
        ``max_age_s`` keeps only entries written within the last that many
        seconds; ``max_entries`` keeps only the newest that many entries
        per granularity (study entries and corner envelopes are bounded
        independently — they have very different cardinalities).  Both
        bounds respect the ``study`` filter and compose: an entry is
        removed if *either* bound says so.  Counters survive pruning.
        """
        if max_age_s is not None and max_age_s < 0:
            raise CacheError(f"max_age_s must be >= 0, got {max_age_s!r}")
        if max_entries is not None and max_entries < 0:
            raise CacheError(f"max_entries must be >= 0, got {max_entries!r}")
        removed = 0
        now = obs_clock.wall_time()
        for tree_paths in (list(self._entries()), list(self._corner_entries())):
            candidates = []
            for path in tree_paths:
                try:
                    with open(path, "r", encoding="utf-8") as stream:
                        wrapper = json.load(stream)
                    entry_study = wrapper.get("study")
                    created = float(wrapper.get("created") or 0.0)
                except (OSError, json.JSONDecodeError, TypeError, ValueError):
                    # Unreadable entries are prunable regardless of the
                    # study filter, and sort as infinitely old.
                    entry_study, created = study, 0.0
                if study is not None and entry_study != study:
                    continue
                candidates.append((created, str(path), path))
            doomed = set()
            if max_age_s is None and max_entries is None:
                doomed.update(path for _, _, path in candidates)
            else:
                if max_age_s is not None:
                    cutoff = now - max_age_s
                    doomed.update(path for created, _, path in candidates
                                  if created < cutoff)
                if max_entries is not None:
                    survivors = sorted(
                        (entry for entry in candidates
                         if entry[2] not in doomed),
                        reverse=True,
                    )
                    doomed.update(path for _, _, path
                                  in survivors[max_entries:])
            for path in doomed:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


def as_cache(cache: CacheLike) -> Optional[ResultCache]:
    """Normalise the ``cache=`` parameter every runtime entry point takes:
    ``None``/``False`` disable caching, ``True`` opens the default store
    (``$REPRO_CACHE_DIR`` or ``.repro-cache/``), a path opens that store,
    and a :class:`ResultCache` passes through."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, os.PathLike)):
        return ResultCache(cache)
    raise CacheError(
        f"cache= must be None, bool, a path or a ResultCache, "
        f"got {type(cache).__name__}"
    )


__all__ = [
    "CACHE_SCHEMA",
    "CORNER_SCHEMA",
    "CacheLike",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "ENV_CACHE_DIR",
    "ResultCache",
    "as_cache",
    "with_cache_status",
]
