"""Content addresses for study invocations.

A *fingerprint* is the cache key of one study run: a stable SHA-256 hex
digest of everything that determines the typed result —

* the study name and (for sweeps) the engine,
* the caller's parameter overrides and seed (``SeedSequence`` values are
  lowered to their tagged-JSON form, so equal seeds hash equally however
  they are spelled as sequences),
* the :class:`~repro.study.spec.SweepSpec`, when one is involved,
* ``repro.__version__`` — a new package version never reuses old cache
  entries,
* the provenance ``config_hash`` of the same configuration, tying the
  key to the envelope schema version.

Hashing rides on the tagged-JSON encoder of
:mod:`repro.study.serialize` (:func:`~repro.study.serialize.
canonical_json` — sorted keys, compact separators, ``repr``
shortest-round-trip floats), so any parameter value a result envelope
can carry can also be fingerprinted, bit-exactly.

The key is **conservative**: it hashes the parameters as the caller
spelled them, so spelling a default out produces a different address
than omitting it.  A conservative key can cause a spurious miss, never a
wrong hit.

Pure *execution* parameters — worker counts, scheduler backends, chunk
sizes — are excluded (:data:`EXECUTION_PARAMS`): the determinism
contract guarantees they cannot change the result, so they must not
change its address either.

>>> study_fingerprint("fig3") == study_fingerprint("fig3")
True
>>> study_fingerprint("fig3") != study_fingerprint("fig3", {"unit_width": 6})
True
>>> study_fingerprint("fig3", {"jobs": 4}) == study_fingerprint("fig3")
True
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Mapping, Optional

import numpy as np

from ..study.results import RESULT_SCHEMA, _normalize_seeds
from ..study.serialize import canonical_json, config_hash

#: Parameters that select *how* a study executes, never *what* it
#: computes.  The scheduler's determinism contract makes results
#: invariant under all of them, so they are excluded from fingerprints.
EXECUTION_PARAMS = frozenset({"jobs", "workers", "backend", "chunk_size"})


def _package_version() -> str:
    from .. import __version__
    return __version__


def study_fingerprint(
    study: str,
    params: Optional[Mapping[str, Any]] = None,
    seed: Any = None,
    engine: Optional[str] = None,
    spec: Any = None,
) -> str:
    """The content address of one study invocation.

    ``params`` are the caller's explicit overrides; ``seed``/``engine``/
    ``spec`` are the sweep driver's positional configuration (``None``
    for plain registry studies, whose seed travels inside ``params``).
    """
    safe_params: Dict[str, Any] = {
        key: _normalize_seeds(value)
        for key, value in sorted((params or {}).items())
        if key not in EXECUTION_PARAMS
    }
    document = {
        "study": study,
        "engine": engine,
        "seed": _normalize_seeds(seed) if seed is not None else None,
        "params": safe_params,
        "spec": spec,
        "version": _package_version(),
        "config": config_hash(
            {"study": study, "params": safe_params, "schema": RESULT_SCHEMA}
        ),
    }
    return hashlib.sha256(
        canonical_json(document).encode("utf-8")
    ).hexdigest()


def netlist_context(netlist: Any) -> Dict[str, Any]:
    """A stable structural digest of a gate netlist for corner contexts.

    Circuit-study corners depend on the whole mapped netlist, not just
    scalar axis values; this lowers a
    :class:`~repro.circuit.netlist.GateNetlist` to a canonical plain-data
    form — sorted instances with their cell types, drives and
    connections, plus the IO declaration — so two structurally identical
    netlists address the same corners regardless of construction order,
    while any rewiring, renaming or drive change misses.
    """
    gates = sorted(
        (
            gate.name,
            gate.cell_type,
            float(gate.drive_strength),
            tuple(sorted(gate.connections.items())),
        )
        for gate in netlist.gates
    )
    return {
        "name": netlist.name,
        "inputs": tuple(netlist.inputs),
        "outputs": tuple(netlist.outputs),
        "gates": tuple(gates),
    }


def sweep_fingerprint(spec: Any, engine: str, trials: int, seed: Any,
                      fixed: Optional[Mapping[str, Any]] = None) -> str:
    """The content address of one :func:`~repro.study.sweeps.
    run_sweep_study` invocation."""
    return study_fingerprint(
        "sweep",
        params={"trials": trials, **(dict(fixed) if fixed else {})},
        seed=seed,
        engine=engine,
        spec=spec,
    )


def _plain_scalars(value: Any) -> Any:
    """Lower NumPy scalars to their Python equivalents, recursively.

    Corner parameters arrive however the caller spelled the axis —
    ``np.float64(0.9)`` from a ``linspace``, plain ``0.9`` from the CLI.
    Both select the same corner, so both must hash to the same address.
    (Arrays are left alone: the tagged encoder already canonicalises
    them, and an array-valued parameter *is* a different value.)
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {key: _plain_scalars(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return type(value)(_plain_scalars(item) for item in value)
    return value


def corner_fingerprint(
    engine: str,
    params: Mapping[str, Any],
    seed: Any = None,
    trials: Optional[int] = None,
    context: Any = None,
) -> str:
    """The content address of one evaluated sweep **corner**.

    ``params`` is the corner's fully-resolved binding — every engine axis,
    swept or fixed — so the address does not depend on *which* axes were
    swept, only on the values this corner was evaluated at.  ``seed`` is
    the corner's pre-spawned child :class:`~numpy.random.SeedSequence`
    (immunity engine): it is spawned in the parent under the
    ``_SWEEP_SPAWN_KEY`` contract, so hashing its *value* makes the
    address independent of sharding while still forcing a recompute
    whenever a grid reshape reassigns seeds.  ``context`` carries
    engine-specific shared state the corner's result depends on beyond
    its own parameters — for the transient engine, the per-cell shared
    time base — so a grid extension that shifts that state correctly
    misses.

    Like :func:`study_fingerprint`, the address folds in
    ``repro.__version__`` and the envelope config hash, and is
    conservative: a spurious miss is possible, a wrong hit is not.

    >>> corner_fingerprint("immunity", {"gate": "NAND2"}, trials=10) \\
    ...     == corner_fingerprint("immunity", {"gate": "NAND2"}, trials=10)
    True
    >>> import numpy as np
    >>> corner_fingerprint("transient", {"vdd": np.float64(0.9)}) \\
    ...     == corner_fingerprint("transient", {"vdd": 0.9})
    True
    """
    safe_params: Dict[str, Any] = {
        key: _normalize_seeds(_plain_scalars(value))
        for key, value in sorted(params.items())
        if key not in EXECUTION_PARAMS
    }
    document = {
        "kind": "sweep-corner",
        "engine": engine,
        "params": safe_params,
        "trials": trials,
        "seed": _normalize_seeds(seed) if seed is not None else None,
        "context": _plain_scalars(context),
        "version": _package_version(),
        "config": config_hash(
            {"kind": "sweep-corner", "engine": engine,
             "params": safe_params, "schema": RESULT_SCHEMA}
        ),
    }
    return hashlib.sha256(
        canonical_json(document).encode("utf-8")
    ).hexdigest()
