"""Content addresses for study invocations.

A *fingerprint* is the cache key of one study run: a stable SHA-256 hex
digest of everything that determines the typed result —

* the study name and (for sweeps) the engine,
* the caller's parameter overrides and seed (``SeedSequence`` values are
  lowered to their tagged-JSON form, so equal seeds hash equally however
  they are spelled as sequences),
* the :class:`~repro.study.spec.SweepSpec`, when one is involved,
* ``repro.__version__`` — a new package version never reuses old cache
  entries,
* the provenance ``config_hash`` of the same configuration, tying the
  key to the envelope schema version.

Hashing rides on the tagged-JSON encoder of
:mod:`repro.study.serialize` (:func:`~repro.study.serialize.
canonical_json` — sorted keys, compact separators, ``repr``
shortest-round-trip floats), so any parameter value a result envelope
can carry can also be fingerprinted, bit-exactly.

The key is **conservative**: it hashes the parameters as the caller
spelled them, so spelling a default out produces a different address
than omitting it.  A conservative key can cause a spurious miss, never a
wrong hit.

Pure *execution* parameters — worker counts, scheduler backends, chunk
sizes — are excluded (:data:`EXECUTION_PARAMS`): the determinism
contract guarantees they cannot change the result, so they must not
change its address either.

>>> study_fingerprint("fig3") == study_fingerprint("fig3")
True
>>> study_fingerprint("fig3") != study_fingerprint("fig3", {"unit_width": 6})
True
>>> study_fingerprint("fig3", {"jobs": 4}) == study_fingerprint("fig3")
True
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Mapping, Optional

from ..study.results import RESULT_SCHEMA, _normalize_seeds
from ..study.serialize import canonical_json, config_hash

#: Parameters that select *how* a study executes, never *what* it
#: computes.  The scheduler's determinism contract makes results
#: invariant under all of them, so they are excluded from fingerprints.
EXECUTION_PARAMS = frozenset({"jobs", "workers", "backend", "chunk_size"})


def _package_version() -> str:
    from .. import __version__
    return __version__


def study_fingerprint(
    study: str,
    params: Optional[Mapping[str, Any]] = None,
    seed: Any = None,
    engine: Optional[str] = None,
    spec: Any = None,
) -> str:
    """The content address of one study invocation.

    ``params`` are the caller's explicit overrides; ``seed``/``engine``/
    ``spec`` are the sweep driver's positional configuration (``None``
    for plain registry studies, whose seed travels inside ``params``).
    """
    safe_params: Dict[str, Any] = {
        key: _normalize_seeds(value)
        for key, value in sorted((params or {}).items())
        if key not in EXECUTION_PARAMS
    }
    document = {
        "study": study,
        "engine": engine,
        "seed": _normalize_seeds(seed) if seed is not None else None,
        "params": safe_params,
        "spec": spec,
        "version": _package_version(),
        "config": config_hash(
            {"study": study, "params": safe_params, "schema": RESULT_SCHEMA}
        ),
    }
    return hashlib.sha256(
        canonical_json(document).encode("utf-8")
    ).hexdigest()


def sweep_fingerprint(spec: Any, engine: str, trials: int, seed: Any,
                      fixed: Optional[Mapping[str, Any]] = None) -> str:
    """The content address of one :func:`~repro.study.sweeps.
    run_sweep_study` invocation."""
    return study_fingerprint(
        "sweep",
        params={"trials": trials, **(dict(fixed) if fixed else {})},
        seed=seed,
        engine=engine,
        spec=spec,
    )
