"""The batch/manifest runner: many studies, one cache, zero rework.

A *manifest* is a JSON list of study invocations::

    [
      {"study": "fig3", "params": {"unit_width": 6}},
      {"study": "fig2", "params": {"trials": 100, "seed": 7}},
      {"study": "sweep", "engine": "immunity", "mode": "grid",
       "axes": {"cnts_per_trial": [2, 4]},
       "params": {"trials": 100, "seed": 7}}
    ]

(the top level may also be ``{"studies": [...]}``).  Plain entries run
through :func:`~repro.study.registry.run_study`; ``"study": "sweep"``
entries build a :class:`~repro.study.spec.SweepSpec` from ``axes`` /
``mode`` and run through :func:`~repro.study.sweeps.run_sweep_study`
(``engine``, plus ``trials`` / ``seed`` / fixed values inside
``params``).

:func:`run_manifest` executes the list in order and deduplicates work
across entries by :mod:`~repro.runtime.fingerprint`: a repeated
invocation — identical study, parameters and seed, however many entries
apart — reuses the in-process result (``dedup``), and with a ``cache``
attached every computed result also lands in the content-addressed
store, so a re-run of the whole manifest (or any other manifest sharing
entries) is pure cache hits.  Sweep entries additionally dedup at
**corner** granularity through the persistent corner store: two sweep
entries whose grids merely *overlap* share the overlapping corners'
results, and the later entry reports ``partial:<hits>/<corners>`` while
executing only its genuinely new corners (see
:func:`~repro.study.sweeps.run_sweep_study`).  ``jobs`` fans each
parallelizable entry out through the runtime scheduler.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import RuntimeLayerError
from ..study.registry import get_study
from ..study.results import Provenance, StudyResult
from ..study.spec import SweepSpec
from .cache import CacheLike, as_cache
from .fingerprint import study_fingerprint, sweep_fingerprint

ManifestSource = Union[str, os.PathLike, Sequence[Mapping[str, Any]],
                       Mapping[str, Any]]


@dataclass(frozen=True)
class ManifestEntry:
    """One parsed manifest line: a study (or sweep) invocation."""

    study: str
    params: Dict[str, Any] = field(default_factory=dict)
    engine: Optional[str] = None                 # sweep entries only
    axes: Optional[Dict[str, Tuple[object, ...]]] = None
    mode: str = "grid"

    @property
    def is_sweep(self) -> bool:
        return self.study == "sweep"

    def spec(self) -> SweepSpec:
        if not self.axes:
            raise RuntimeLayerError(
                "A sweep manifest entry needs a non-empty 'axes' mapping"
            )
        return SweepSpec.from_mapping(self.axes, mode=self.mode)

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any], index: int) -> "ManifestEntry":
        if not isinstance(data, Mapping):
            raise RuntimeLayerError(
                f"Manifest entry {index} must be an object, "
                f"got {type(data).__name__}"
            )
        study = data.get("study")
        if not isinstance(study, str) or not study:
            raise RuntimeLayerError(
                f"Manifest entry {index} needs a 'study' name"
            )
        known = {"study", "params", "engine", "axes", "mode"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise RuntimeLayerError(
                f"Manifest entry {index} has unknown keys {unknown}; "
                f"allowed: {sorted(known)}"
            )
        params = data.get("params") or {}
        if not isinstance(params, Mapping):
            raise RuntimeLayerError(
                f"Manifest entry {index}: 'params' must be an object"
            )
        axes = data.get("axes")
        if axes is not None:
            if not isinstance(axes, Mapping):
                raise RuntimeLayerError(
                    f"Manifest entry {index}: 'axes' must be an object"
                )
            axes = {name: tuple(values if isinstance(values, (list, tuple))
                                else (values,))
                    for name, values in axes.items()}
        if study != "sweep" and (axes is not None or "engine" in data):
            raise RuntimeLayerError(
                f"Manifest entry {index}: 'axes'/'engine' only apply to "
                f"\"study\": \"sweep\" entries"
            )
        return cls(
            study=study,
            params=dict(params),
            engine=data.get("engine"),
            axes=axes,
            mode=data.get("mode", "grid"),
        )


@dataclass(frozen=True)
class ManifestOutcome:
    """How one entry was satisfied: computed, cache hit, or deduplicated
    against an earlier entry of the same manifest run."""

    index: int
    study: str
    fingerprint: str
    status: str    # "computed" | "hit" | "miss" | "partial:<h>/<n>" | "dedup"


@dataclass(frozen=True)
class ManifestResult(StudyResult):
    """The typed outcome of :func:`run_manifest`.

    ``results`` holds the live per-entry :class:`StudyResult` objects in
    manifest order (excluded from serialization and equality, like the
    full-adder study's flow artifacts); the serialized payload carries
    the outcomes and counts.
    """

    study_name: ClassVar[str] = "manifest"

    outcomes: Tuple[ManifestOutcome, ...] = ()
    results: Optional[Tuple[StudyResult, ...]] = field(
        default=None, compare=False, repr=False,
        metadata={"serialize": False},
    )

    def count(self, status: str) -> int:
        """Outcomes matching ``status`` exactly, or — for parameterised
        statuses like the sweep driver's ``"partial:<hits>/<corners>"`` —
        by their prefix (``count("partial")``)."""
        return sum(
            1 for outcome in self.outcomes
            if outcome.status == status
            or outcome.status.startswith(status + ":")
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "outcomes": list(self.outcomes),
            "entries": len(self.outcomes),
            "computed": self.count("computed"),
            "hits": self.count("hit"),
            "misses": self.count("miss"),
            "partial": self.count("partial"),
            "deduped": self.count("dedup"),
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        return cls(
            provenance=provenance,
            outcomes=tuple(payload["outcomes"]),
        )

    def __str__(self) -> str:
        width = max([len("study")] + [len(o.study) for o in self.outcomes])
        header = f"{'#':>3} {'study':<{width}} {'status':<8} fingerprint"
        lines = [header, "-" * len(header)]
        for outcome in self.outcomes:
            lines.append(
                f"{outcome.index:>3} {outcome.study:<{width}} "
                f"{outcome.status:<8} {outcome.fingerprint[:16]}"
            )
        lines.append(
            f"{len(self.outcomes)} entries: {self.count('computed')} computed, "
            f"{self.count('miss')} misses, {self.count('hit')} hits, "
            f"{self.count('partial')} partial, {self.count('dedup')} deduped"
        )
        return "\n".join(lines)


def _load_entries(source: ManifestSource) -> List[ManifestEntry]:
    if isinstance(source, (str, os.PathLike)):
        try:
            with open(source, "r", encoding="utf-8") as stream:
                document = json.load(stream)
        except OSError as error:
            raise RuntimeLayerError(
                f"Cannot read manifest {source}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise RuntimeLayerError(
                f"Manifest {source} is not valid JSON: {error}"
            ) from error
    else:
        document = source
    if isinstance(document, Mapping):
        document = document.get("studies")
    if not isinstance(document, Sequence) or isinstance(document, (str, bytes)):
        raise RuntimeLayerError(
            "A manifest is a JSON list of study entries "
            "(or {\"studies\": [...]})"
        )
    if not document:
        raise RuntimeLayerError("Manifest has no entries")
    return [ManifestEntry.from_mapping(entry, index)
            for index, entry in enumerate(document)]


def _sweep_call(entry: ManifestEntry):
    """``(spec, engine, trials, seed, fixed)`` for one sweep entry, with
    the trials/seed defaults read off ``run_sweep_study``'s own signature
    so the manifest can never drift from the driver."""
    import inspect

    from ..study.sweeps import run_sweep_study

    signature = inspect.signature(run_sweep_study).parameters
    params = dict(entry.params)
    trials = params.pop("trials", signature["trials"].default)
    seed = params.pop("seed", signature["seed"].default)
    return entry.spec(), entry.engine or "immunity", trials, seed, params


def _entry_key(entry: ManifestEntry) -> Tuple[str, str]:
    """``(canonical study name, fingerprint)`` — the exact key the cached
    execution path will use, computed once per entry."""
    if entry.is_sweep:
        spec, engine, trials, seed, fixed = _sweep_call(entry)
        return "sweep", sweep_fingerprint(spec, engine, trials, seed, fixed)
    name = get_study(entry.study).name
    return name, study_fingerprint(name, params=entry.params)


def _requests_fresh_entropy(entry: ManifestEntry) -> bool:
    """An explicit ``"seed": null`` asks for fresh OS entropy — such an
    entry must neither dedup nor cache (mirrors the driver-level
    bypass)."""
    return "seed" in entry.params and entry.params["seed"] is None


def _run_entry(entry: ManifestEntry, cache, jobs: Optional[int],
               backend: Optional[str]) -> StudyResult:
    """Execute one (non-deduplicated) entry."""
    from ..study.registry import run_study
    from ..study.sweeps import run_sweep_study

    if entry.is_sweep:
        spec, engine, trials, seed, fixed = _sweep_call(entry)
        return run_sweep_study(
            spec, engine=engine, trials=trials, seed=seed,
            jobs=jobs, backend=backend, cache=cache, **fixed,
        )
    definition = get_study(entry.study)
    # Forward the manifest-level jobs only to runners that can use it;
    # serial studies just run serially instead of erroring the batch.
    entry_jobs = jobs if "workers" in definition.parameters() else None
    return run_study(definition.name, cache=cache, jobs=entry_jobs,
                     **entry.params)


def run_manifest(source: ManifestSource, cache: CacheLike = None,
                 jobs: Optional[int] = None,
                 backend: Optional[str] = None) -> ManifestResult:
    """Execute a manifest of studies with cross-study dedup.

    ``source`` is a path to a manifest JSON file, or the already-loaded
    list / ``{"studies": [...]}`` mapping.  Entries run in order; an
    entry whose fingerprint matched an earlier one reuses that result
    without re-running anything (``dedup``), and with ``cache`` attached
    each unique invocation is a ``miss`` (computed, stored) or ``hit``
    (loaded).  Without a cache, unique entries report ``computed``.
    """
    entries = _load_entries(source)
    store = as_cache(cache)
    memo: Dict[str, StudyResult] = {}
    outcomes: List[ManifestOutcome] = []
    results: List[StudyResult] = []
    for index, entry in enumerate(entries):
        study, key = _entry_key(entry)
        deterministic = not _requests_fresh_entropy(entry)
        if deterministic and key in memo:
            result = memo[key]
            status = "dedup"
        else:
            result = _run_entry(entry, store, jobs, backend)
            if deterministic:
                memo[key] = result
            status = result.provenance.cache or "computed"
        outcomes.append(ManifestOutcome(
            index=index, study=study, fingerprint=key, status=status,
        ))
        results.append(result)
    return ManifestResult(
        provenance=Provenance.capture(
            "manifest",
            params={"entries": len(entries)},
        ),
        outcomes=tuple(outcomes),
        results=tuple(results),
    )


__all__ = [
    "ManifestEntry",
    "ManifestOutcome",
    "ManifestResult",
    "run_manifest",
]
