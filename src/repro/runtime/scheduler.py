"""The deterministic parallel scheduler.

One pool implementation for the whole repository: every parallel code
path — ``run_sweep_study(jobs=...)``, ``montecarlo.sweep(workers=...)``,
the ``--jobs`` CLI flag — lowers onto :func:`run_tasks`, an *ordered*
map over one of three backends:

========  ===========================  =====================================
backend   executor                     when
========  ===========================  =====================================
serial    in-process ``for`` loop      ``jobs<=1`` (the reference path)
process   ``ProcessPoolExecutor``      default for ``jobs>1`` (CPU-bound
                                       NumPy work; fork-cheap on Linux)
thread    ``ThreadPoolExecutor``       explicit opt-in (cheap tasks, tests,
                                       single-core containers)
========  ===========================  =====================================

Determinism contract
--------------------
``run_tasks(fn, tasks)[i] == fn(tasks[i])`` for every backend and every
``jobs`` value — results come back in submission order, and tasks are
constructed so that *nothing about scheduling leaks into them*:

* every random task carries its own pre-spawned child
  :class:`~numpy.random.SeedSequence`, derived in the parent under the
  reserved ``_SWEEP_SPAWN_KEY`` contract **per corner, not per worker**
  (see :meth:`repro.study.spec.SweepSpec.seeds`);
* transient shards re-plan the full characterisation grid (cheap,
  analytical) and integrate only their slice on the shared time base
  (:func:`repro.cells.characterize.characterize_cases`), so a shard's
  waveforms are bit-identical to the full-batch run.

Sharding (:func:`shard_indices`) is contiguous and balanced, purely a
function of ``(n, shards)`` — never of measured runtimes — so the same
request always produces the same task list.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import (AbstractSet, Callable, List, Optional, Sequence, Tuple,
                    TypeVar)

from ..errors import RuntimeLayerError

#: The executor backends :func:`run_tasks` understands.
BACKENDS = ("serial", "thread", "process")

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request: ``None``/``0``/``1`` mean serial,
    any negative value means "one per CPU".

    >>> resolve_jobs(None), resolve_jobs(1), resolve_jobs(4)
    (1, 1, 4)
    >>> resolve_jobs(-1) >= 1
    True
    """
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return int(jobs)


def resolve_backend(backend: Optional[str], jobs: int) -> str:
    """Pick the executor: explicit ``backend`` wins, otherwise serial for
    one job and a process pool for more."""
    if backend is None:
        return "process" if jobs > 1 else "serial"
    if backend not in BACKENDS:
        raise RuntimeLayerError(
            f"Unknown scheduler backend {backend!r}; use one of {BACKENDS}"
        )
    return backend


def run_tasks(
    fn: Callable[[_Task], _Result],
    tasks: Sequence[_Task],
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[_Result]:
    """Ordered map of ``fn`` over ``tasks`` on the selected backend.

    ``results[i] == fn(tasks[i])`` regardless of backend, worker count or
    completion order; the process backend requires ``fn`` and every task
    to be picklable (module-level functions, frozen dataclasses).
    """
    # Imported here, not at module top: obs itself obtains its locks from
    # this module, so the dependency must stay one-way at import time.
    from ..obs import trace as obs_trace

    jobs = resolve_jobs(jobs)
    backend = resolve_backend(backend, jobs)
    tracer = obs_trace.current_tracer()
    if backend == "serial" or jobs <= 1 or len(tasks) <= 1:
        if tracer is None:
            return [fn(task) for task in tasks]
        with obs_trace.span("scheduler.run_tasks", backend="serial",
                            jobs=jobs, tasks=len(tasks)):
            results = []
            for index, task in enumerate(tasks):
                with obs_trace.span("scheduler.task", index=index):
                    results.append(fn(task))
            return results
    executor_type = (ProcessPoolExecutor if backend == "process"
                     else ThreadPoolExecutor)
    with executor_type(max_workers=min(jobs, len(tasks))) as pool:
        if tracer is None:
            return list(pool.map(fn, tasks))
        # Traced path: submit each task individually and collect results
        # in submission order — equivalent to ``pool.map`` (same ordered
        # results, same worker fan-out), but each wait is attributable
        # to one task span.  Workers never see the tracer (it is
        # thread-local, and process workers share nothing), so traced
        # and untraced execution feed ``fn`` identical inputs.
        with obs_trace.span("scheduler.run_tasks", backend=backend,
                            jobs=jobs, tasks=len(tasks)):
            futures = [pool.submit(fn, task) for task in tasks]
            results = []
            for index, future in enumerate(futures):
                with obs_trace.span("scheduler.task", index=index):
                    results.append(future.result())
            return results


def make_lock() -> threading.Lock:
    """A mutual-exclusion lock for callers that need one.

    This module and ``service/jobs.py`` are the only places allowed to
    construct concurrency primitives (the RPL009 contract, a sibling of
    the RPL001 single-pool rule): everything else — e.g. the result
    cache's counter persistence — obtains its lock here, so a grep for
    thread machinery always lands on the sanctioned modules.
    """
    return threading.Lock()


def shard_indices(n: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most ``shards`` contiguous, balanced
    ``(start, stop)`` slices — deterministic in ``(n, shards)`` alone.

    >>> shard_indices(5, 2)
    [(0, 3), (3, 5)]
    >>> shard_indices(2, 8)
    [(0, 1), (1, 2)]
    >>> shard_indices(0, 3)
    []
    """
    if n <= 0:
        return []
    shards = max(1, min(shards, n))
    base, extra = divmod(n, shards)
    slices = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


@dataclass(frozen=True)
class DeltaPlan:
    """Which corners of a sweep the store already holds, and which must
    run: the scheduler's diff of a requested grid against the
    content-addressed corner store.

    ``keys[i]`` is corner ``i``'s fingerprint; ``hit_indices`` /
    ``miss_indices`` partition ``range(len(keys))`` in corner order.  The
    plan is pure data — executing the misses and merging is the sweep
    driver's job — so it is deterministic in ``(keys, cached)`` alone.
    """

    keys: Tuple[str, ...]
    hit_indices: Tuple[int, ...]
    miss_indices: Tuple[int, ...]

    @property
    def total(self) -> int:
        return len(self.keys)

    @property
    def hits(self) -> int:
        return len(self.hit_indices)

    @property
    def misses(self) -> int:
        return len(self.miss_indices)

    @property
    def status(self) -> str:
        """The provenance ``cache`` annotation this plan earns: ``"hit"``
        (everything served from the store), ``"miss"`` (nothing was), or
        ``"partial:<hits>/<total>"``."""
        if self.total and self.misses == 0:
            return "hit"
        if self.hits == 0:
            return "miss"
        return f"partial:{self.hits}/{self.total}"


def plan_delta(keys: Sequence[str], cached: AbstractSet[str]) -> DeltaPlan:
    """Partition per-corner fingerprints into store hits and misses.

    >>> plan = plan_delta(["aa", "bb", "cc"], {"bb"})
    >>> plan.hit_indices, plan.miss_indices, plan.status
    ((1,), (0, 2), 'partial:1/3')
    """
    hit_indices = tuple(i for i, key in enumerate(keys) if key in cached)
    miss_indices = tuple(i for i, key in enumerate(keys) if key not in cached)
    return DeltaPlan(keys=tuple(keys), hit_indices=hit_indices,
                     miss_indices=miss_indices)


def plan_shards(n_tasks: int, jobs: Optional[int],
                oversubscribe: int = 4) -> List[Tuple[int, int]]:
    """The shard plan for ``n_tasks`` units of work on ``jobs`` workers:
    contiguous chunks, ``oversubscribe`` shards per worker so stragglers
    balance, one shard per task when tasks are scarce."""
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return shard_indices(n_tasks, 1)
    return shard_indices(n_tasks, jobs * max(1, oversubscribe))


__all__ = [
    "BACKENDS",
    "DeltaPlan",
    "make_lock",
    "plan_delta",
    "plan_shards",
    "resolve_backend",
    "resolve_jobs",
    "run_tasks",
    "shard_indices",
]
