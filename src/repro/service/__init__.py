"""The async study service: an HTTP job API over the runtime layer.

``python -m repro serve`` turns the repository into a long-running
service — clients POST the same study/sweep/manifest documents the CLI
accepts, poll job status, and fetch result envelopes bit-identical to a
direct :func:`~repro.study.registry.run_study` call.  Identical
concurrent submissions collapse onto one engine run via the runtime
layer's content fingerprints.  Stdlib only: ``http.server`` +
``threading``, no new dependencies.
"""

from .api import KINDS, JobSubmission
from .errors import (InvalidSubmission, JobNotFound, JobStateError,
                     error_payload)
from .jobs import JOB_STATES, TERMINAL_STATES, Job, JobManager
from .server import ReproService, describe_endpoints, status_for

__all__ = [
    "InvalidSubmission",
    "JOB_STATES",
    "Job",
    "JobManager",
    "JobNotFound",
    "JobStateError",
    "JobSubmission",
    "KINDS",
    "ReproService",
    "TERMINAL_STATES",
    "describe_endpoints",
    "error_payload",
    "status_for",
]
