"""The service API boundary: submission documents in, typed jobs out.

A *submission* is the JSON body of one ``POST /jobs`` — the same three
invocation shapes the CLI and manifest runner already understand:

* a **study** — ``{"study": "fig3", "params": {"unit_width": 6}}``
* a **sweep** — ``{"study": "sweep", "engine": "immunity",
  "axes": {"cnts_per_trial": [2, 4]}, "mode": "grid",
  "params": {"trials": 100, "seed": 7}}``
* a **manifest** — ``{"studies": [entry, entry, ...]}`` (each entry a
  study/sweep object as above)

Parsing reuses :class:`~repro.runtime.manifest.ManifestEntry`, so the
service accepts exactly what ``repro batch`` accepts and rejects exactly
what it rejects — one validation surface, not two.

**Fingerprints are execution-blind at the API boundary too.**  The body
may carry top-level ``jobs``/``backend`` overrides (how the engines
should execute), but :meth:`JobSubmission.fingerprint` is computed from
the *work* alone, through the same
:func:`~repro.runtime.fingerprint.study_fingerprint` /
:func:`~repro.runtime.fingerprint.sweep_fingerprint` addresses the cache
uses.  Two clients POSTing the same study with different worker counts
collapse onto one job — the RPL004 contract, extended to HTTP.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import ReproError
from ..runtime.manifest import (
    ManifestEntry,
    _entry_key,
    _requests_fresh_entropy,
    _run_entry,
)
from ..runtime.scheduler import BACKENDS
from ..study.registry import get_study
from ..study.results import StudyResult
from ..study.serialize import canonical_json
from .errors import InvalidSubmission

#: Submission kinds, in increasing compositeness.
KINDS = ("study", "sweep", "manifest")


def _validate_execution(jobs: Any, backend: Any) -> Tuple[Optional[int],
                                                          Optional[str]]:
    """Normalise the body's optional execution overrides."""
    if jobs is not None:
        if isinstance(jobs, bool) or not isinstance(jobs, int):
            raise InvalidSubmission(
                f"'jobs' must be an integer worker count, got {jobs!r}"
            )
    if backend is not None and backend not in BACKENDS:
        raise InvalidSubmission(
            f"Unknown backend {backend!r}; use one of {BACKENDS}"
        )
    return jobs, backend


def _parse_entry(document: Mapping[str, Any], index: int) -> ManifestEntry:
    """One study/sweep entry through the manifest validator, with
    submission-grade error wrapping and eager study-name resolution."""
    try:
        entry = ManifestEntry.from_mapping(document, index)
        if entry.is_sweep:
            if entry.engine not in (None, "immunity", "transient"):
                raise InvalidSubmission(
                    f"Unknown sweep engine {entry.engine!r}; "
                    "use 'immunity' or 'transient'"
                )
            entry.spec()                 # validates the axes mapping
        else:
            get_study(entry.study)       # unknown studies fail at submit
    except InvalidSubmission:
        raise
    except ReproError as error:
        raise InvalidSubmission(str(error)) from error
    return entry


@dataclass(frozen=True)
class JobSubmission:
    """One validated unit of service work, ready to fingerprint and run.

    ``entries`` holds the parsed invocation(s) — exactly one for study
    and sweep submissions, one per manifest line otherwise; ``documents``
    keeps the normalised raw entry mappings so manifest runs replay
    through :func:`~repro.runtime.manifest.run_manifest` unchanged.
    ``jobs``/``backend`` are the body's optional execution overrides —
    applied when the job runs, invisible to :meth:`fingerprint`.
    """

    kind: str
    entries: Tuple[ManifestEntry, ...]
    documents: Tuple[Dict[str, Any], ...] = field(default=())
    jobs: Optional[int] = None
    backend: Optional[str] = None

    @classmethod
    def from_document(cls, document: Any) -> "JobSubmission":
        """Parse and validate one ``POST /jobs`` body.

        Raises :class:`~repro.service.errors.InvalidSubmission` (HTTP
        400) on anything that cannot become a job, with the underlying
        validator's message preserved.
        """
        if not isinstance(document, Mapping):
            raise InvalidSubmission(
                "A submission is a JSON object "
                "({'study': ...} or {'studies': [...]}), "
                f"got {type(document).__name__}"
            )
        body = dict(document)
        jobs, backend = _validate_execution(
            body.pop("jobs", None), body.pop("backend", None)
        )
        if "studies" in body:
            raw_entries = body.pop("studies")
            if body:
                raise InvalidSubmission(
                    f"Manifest submissions take only 'studies' (plus "
                    f"'jobs'/'backend'); unknown keys {sorted(body)}"
                )
            if not isinstance(raw_entries, (list, tuple)) or not raw_entries:
                raise InvalidSubmission(
                    "'studies' must be a non-empty list of study/sweep "
                    "entries"
                )
            entries = tuple(
                _parse_entry(entry, index)
                for index, entry in enumerate(raw_entries)
            )
            return cls(
                kind="manifest",
                entries=entries,
                documents=tuple(dict(entry) for entry in raw_entries),
                jobs=jobs,
                backend=backend,
            )
        entry = _parse_entry(body, 0)
        return cls(
            kind="sweep" if entry.is_sweep else "study",
            entries=(entry,),
            documents=(dict(body),),
            jobs=jobs,
            backend=backend,
        )

    # -- identity --------------------------------------------------------------

    def fingerprint(self) -> str:
        """The content address of this submission's *work*.

        Study and sweep submissions reuse the runtime layer's study/sweep
        fingerprints verbatim — a service job and a ``repro run``/``repro
        sweep`` of the same invocation share one cache entry.  Manifest
        submissions hash the ordered list of their entries' fingerprints.
        Execution overrides (``jobs``/``backend``) never participate.
        """
        keys = [_entry_key(entry)[1] for entry in self.entries]
        if self.kind != "manifest":
            return keys[0]
        text = canonical_json({"kind": "manifest", "entries": keys})
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @property
    def deterministic(self) -> bool:
        """Whether identical submissions are interchangeable.  An entry
        with an explicit ``"seed": null`` asks for fresh OS entropy, so
        such a submission must neither dedup nor attach — mirroring the
        manifest runner's bypass."""
        return not any(_requests_fresh_entropy(entry)
                       for entry in self.entries)

    @property
    def study(self) -> str:
        """The display label: the canonical study name, ``"sweep"``, or
        ``"manifest"``."""
        if self.kind == "manifest":
            return "manifest"
        entry = self.entries[0]
        return "sweep" if entry.is_sweep else get_study(entry.study).name

    def total_corners(self) -> Optional[int]:
        """How many sweep corners this submission expands to (the job's
        progress denominator), or ``None`` when corners are not the unit
        of work."""
        totals = [len(entry.spec().corners())
                  for entry in self.entries if entry.is_sweep]
        if not totals:
            return None
        return sum(totals)

    # -- execution -------------------------------------------------------------

    def run(self, cache=None, jobs: Optional[int] = None,
            backend: Optional[str] = None) -> StudyResult:
        """Execute the submission through the registry / sweep driver /
        manifest runner.  The body's own ``jobs``/``backend`` win over
        the service defaults passed in."""
        from ..runtime.manifest import run_manifest

        effective_jobs = self.jobs if self.jobs is not None else jobs
        effective_backend = self.backend if self.backend is not None \
            else backend
        if self.kind == "manifest":
            return run_manifest(list(self.documents), cache=cache,
                                jobs=effective_jobs,
                                backend=effective_backend)
        return _run_entry(self.entries[0], cache, effective_jobs,
                          effective_backend)

    def describe(self) -> Dict[str, Any]:
        """The submission's face in job documents."""
        return {
            "kind": self.kind,
            "study": self.study,
            "entries": len(self.entries),
            "deterministic": self.deterministic,
        }


__all__ = ["KINDS", "JobSubmission"]
