"""Typed errors of the study service layer.

Every failure the job API can surface is an exception class here, and
every exception renders to the same wire shape via :func:`error_payload`
— a small JSON document carrying the exception type and message — so a
client can branch on ``error["type"]`` instead of parsing prose.  The
HTTP layer maps the classes onto status codes
(:data:`~repro.service.server.STATUS_BY_ERROR`); the job layer stores
the payload on failed jobs, which is how an engine raising mid-job
becomes a ``failed`` status with a typed body instead of a hung job or
a dead server.
"""

from __future__ import annotations

from typing import Any, Dict

from ..errors import ReproError, ServiceError


class InvalidSubmission(ServiceError):
    """A ``POST /jobs`` body that cannot become a job: malformed JSON
    shape, unknown study, bad axes, illegal execution parameters."""


class JobNotFound(ServiceError):
    """A job id no job carries (HTTP 404)."""


class JobStateError(ServiceError):
    """A legal request against a job in the wrong state — cancelling a
    running job, fetching the result of an unfinished one (HTTP 409)."""


def error_payload(error: BaseException) -> Dict[str, Any]:
    """The wire form of one exception: type name, message, and whether
    it belongs to the repo's :class:`~repro.errors.ReproError` hierarchy
    (library failures) or escaped from elsewhere (engine bugs).

    >>> error_payload(JobNotFound("no job 'job-000009'"))
    {'type': 'JobNotFound', 'message': "no job 'job-000009'", 'repro': True}
    """
    return {
        "type": type(error).__name__,
        "message": str(error),
        "repro": isinstance(error, ReproError),
    }


__all__ = [
    "InvalidSubmission",
    "JobNotFound",
    "JobStateError",
    "error_payload",
]
