"""Jobs and the :class:`JobManager`: the service's multiplexing core.

One manager owns a bounded pool of worker threads (this module and
``runtime/scheduler.py`` are the only places allowed to construct
thread/lock primitives — the RPL009 contract), a FIFO queue of jobs, and
the dedup index that makes the service scale: submissions are keyed by
their content fingerprint, and a second identical submission **attaches**
to the first's job — queued, running or already done — instead of
spawning new work.  K identical concurrent POSTs therefore cost exactly
one engine run, and every client reads the same bit-identical envelope.

The job state machine::

    queued ──▶ running ──▶ done
       │           └─────▶ failed      (engine raised: typed error payload)
       └─────▶ cancelled               (DELETE while still queued)

Transitions only move rightwards; ``done``/``failed``/``cancelled`` are
terminal.  Cancellation is queue-level by design: a *running* engine
invocation is never interrupted (killing it mid-write would violate the
cache's integrity discipline and the determinism contract), so
cancelling a running/finished job raises
:class:`~repro.service.errors.JobStateError`.

Worker threads run each job through
:meth:`~repro.service.api.JobSubmission.run` — which lowers onto the
registry, the sweep driver and the manifest runner, and from there onto
the repo's one deterministic scheduler.  An engine exception marks the
job ``failed`` with :func:`~repro.service.errors.error_payload` and the
worker moves on; the pool never dies with its job.

Sweep progress rides on the delta planner: the manager wraps its store
in a :class:`_ProgressCache` whose corner reads/writes tick the job's
``progress`` counter, so ``GET /jobs/<id>`` reports per-corner progress
(cached corners count the moment the plan resolves them; fresh corners
as each one lands in the store).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

from ..errors import ServiceError
from ..obs import clock as obs_clock
from ..obs import metrics as obs_metrics
from ..obs.trace import Tracer
from ..runtime.cache import ResultCache, as_cache
from ..study.results import StudyResult
from .api import JobSubmission
from .errors import JobNotFound, JobStateError, error_payload

#: The job states, in lifecycle order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States no transition leaves.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submission's lifecycle record.  Mutated only under the
    manager's lock; HTTP handlers read consistent snapshots via
    :meth:`JobManager.document`."""

    id: str
    submission: JobSubmission
    fingerprint: str
    status: str = QUEUED
    created: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    clients: int = 1
    progress_total: Optional[int] = None
    progress_done: int = 0
    result: Optional[StudyResult] = None
    error: Optional[Dict[str, Any]] = None
    #: The job's ``repro-trace/v1`` envelope, recorded by the worker on
    #: completion (success or failure).  Deliberately NOT part of
    #: :meth:`document` — the job wire form predates tracing and stays
    #: byte-identical; ``GET /jobs/<id>/trace`` serves this separately.
    trace_document: Optional[Dict[str, Any]] = None

    def document(self) -> Dict[str, Any]:
        """The job's wire form (the ``GET /jobs/<id>`` body)."""
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "submission": self.submission.describe(),
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "clients": self.clients,
            "progress": {
                "total": self.progress_total,
                "done": self.progress_done,
            },
            "cache": (self.result.provenance.cache
                      if self.result is not None else None),
            "error": self.error,
        }


class _ProgressCache(ResultCache):
    """A :class:`ResultCache` on the same root that reports per-corner
    progress back to the job as the sweep driver consumes it.

    ``get_corners`` ticks once per corner the delta plan serves from the
    store; ``put_corner`` once per freshly computed corner.  Everything
    else — study entries, stats, pruning — is the plain store."""

    def __init__(self, root, on_corners: Callable[[int], None]):
        super().__init__(root)
        self._on_corners = on_corners

    def get_corners(self, keys):
        found = super().get_corners(keys)
        if found:
            self._on_corners(len(found))
        return found

    def put_corner(self, key, metrics, engine=""):
        path = super().put_corner(key, metrics, engine=engine)
        self._on_corners(1)
        return path


class JobManager:
    """Multiplex concurrent jobs onto a bounded worker pool.

    ``cache`` is the content-addressed store every job runs against
    (anything :func:`~repro.runtime.cache.as_cache` accepts);
    ``jobs``/``backend`` are the default per-job scheduler fan-out, and
    ``workers`` bounds how many jobs execute concurrently.  The manager
    starts its workers immediately and runs until :meth:`close`.
    """

    def __init__(self, cache=None, jobs: Optional[int] = None,
                 backend: Optional[str] = None, workers: int = 2):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self._store = as_cache(cache)
        self._engine_jobs = jobs
        self._backend = backend
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._by_fingerprint: Dict[str, Job] = {}
        self._queue: Deque[str] = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._settled = threading.Condition(self._lock)
        self._closing = False
        self._sequence = 0
        self._workers = workers
        self._started_monotonic = obs_clock.monotonic()
        self._busy_seconds = 0.0
        self._threads = [
            threading.Thread(target=self._work, daemon=True,
                             name=f"repro-job-worker-{index}")
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ------------------------------------------------------------

    def submit(self, submission: JobSubmission) -> "tuple[Job, bool]":
        """Enqueue one submission; returns ``(job, attached)``.

        Deterministic submissions dedup by fingerprint: when a live job
        (queued, running, done) with the same address exists, the caller
        attaches to it — ``attached`` is ``True``, the job's ``clients``
        count grows, and no new work is created.  Failed and cancelled
        jobs never absorb new submissions (a retry must actually retry),
        and nondeterministic submissions (``"seed": null``) always get a
        fresh job.
        """
        with self._wakeup:
            if self._closing:
                raise ServiceError("JobManager is closed")
            key = submission.fingerprint()
            if submission.deterministic:
                existing = self._by_fingerprint.get(key)
                if existing is not None \
                        and existing.status not in (FAILED, CANCELLED):
                    existing.clients += 1
                    return existing, True
            self._sequence += 1
            job = Job(
                id=f"job-{self._sequence:06d}",
                submission=submission,
                fingerprint=key,
                created=obs_clock.wall_time(),
                progress_total=submission.total_corners(),
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            if submission.deterministic:
                self._by_fingerprint[key] = job
            self._queue.append(job.id)
            self._wakeup.notify()
            return job, False

    # -- inspection ------------------------------------------------------------

    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFound(f"No job {job_id!r}")
        return job

    def document(self, job_id: str) -> Dict[str, Any]:
        """A consistent snapshot of one job's wire form."""
        with self._lock:
            return self._get(job_id).document()

    def documents(self) -> List[Dict[str, Any]]:
        """Snapshots of every job, in submission order."""
        with self._lock:
            return [self._jobs[job_id].document() for job_id in self._order]

    def result(self, job_id: str) -> StudyResult:
        """The finished job's typed result; :class:`JobStateError` until
        the job is ``done`` (a ``failed`` job's message carries its typed
        error payload)."""
        with self._lock:
            job = self._get(job_id)
            if job.status == DONE:
                return job.result
            if job.status == FAILED:
                raise JobStateError(
                    f"Job {job_id} failed: "
                    f"{(job.error or {}).get('type', 'Exception')}: "
                    f"{(job.error or {}).get('message', '')}"
                )
            raise JobStateError(
                f"Job {job_id} is {job.status}, not done"
            )

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state (or the timeout
        lapses); returns the job either way."""
        deadline = (None if timeout is None
                    else obs_clock.monotonic() + timeout)
        with self._settled:
            job = self._get(job_id)
            while job.status not in TERMINAL_STATES:
                remaining = None if deadline is None \
                    else deadline - obs_clock.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._settled.wait(remaining)
            return job

    # -- cancellation / shutdown -----------------------------------------------

    def cancel(self, job_id: str) -> Job:
        """Cancel a **queued** job.  Running jobs are never interrupted
        (see the module docstring) and terminal jobs cannot change, so
        both raise :class:`JobStateError`."""
        with self._lock:
            job = self._get(job_id)
            if job.status != QUEUED:
                raise JobStateError(
                    f"Job {job_id} is {job.status}; only queued jobs can "
                    "be cancelled"
                )
            job.status = CANCELLED
            job.finished = obs_clock.wall_time()
            obs_metrics.registry().inc("service.jobs_cancelled")
            self._settled.notify_all()
            return job

    def close(self, cancel_queued: bool = True,
              timeout: Optional[float] = None) -> None:
        """Shut the pool down.  Queued jobs are cancelled (or drained,
        with ``cancel_queued=False``); running jobs always finish —
        interrupting them is not a thing this layer does."""
        with self._wakeup:
            self._closing = True
            if cancel_queued:
                while self._queue:
                    job = self._jobs[self._queue.popleft()]
                    if job.status == QUEUED:
                        job.status = CANCELLED
                        job.finished = obs_clock.wall_time()
                        obs_metrics.registry().inc("service.jobs_cancelled")
                self._settled.notify_all()
            self._wakeup.notify_all()
        for thread in self._threads:
            thread.join(timeout)

    # -- the worker loop -------------------------------------------------------

    def _job_store(self, job: Job):
        """The store this job runs against: the manager's cache, wrapped
        to tick the job's corner progress (sweeps only — the wrapper is
        inert for plain studies, which never touch the corner API)."""
        if self._store is None:
            return None

        def on_corners(count: int) -> None:
            with self._lock:
                job.progress_done += count

        return _ProgressCache(self._store.root, on_corners)

    def _work(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._closing:
                    self._wakeup.wait()
                if not self._queue:
                    return                   # closing and drained
                job = self._jobs[self._queue.popleft()]
                if job.status != QUEUED:
                    continue                 # cancelled while queued
                job.status = RUNNING
                job.started = obs_clock.wall_time()
                submission = job.submission
            obs_metrics.registry().observe(
                "service.queue_latency_s", max(job.started - job.created, 0.0)
            )
            store = self._job_store(job)
            # Every job gets its own tracer: the worker thread activates
            # it around the engine run, so the cache / sweep / scheduler
            # instrumentation lands in this job's envelope and concurrent
            # workers never interleave (the active tracer is
            # thread-local).
            tracer = Tracer(f"job:{job.id}", job=job.id,
                            fingerprint=job.fingerprint,
                            kind=submission.kind)
            busy_start = obs_clock.monotonic()
            try:
                with tracer.activate():
                    with tracer.span("job.run", kind=submission.kind):
                        result = submission.run(cache=store,
                                                jobs=self._engine_jobs,
                                                backend=self._backend)
            except Exception as error:
                obs_metrics.registry().inc("service.jobs_failed")
                with self._lock:
                    self._busy_seconds += obs_clock.monotonic() - busy_start
                    job.status = FAILED
                    job.error = error_payload(error)
                    job.finished = obs_clock.wall_time()
                    job.trace_document = tracer.to_document()
                    self._settled.notify_all()
            else:
                obs_metrics.registry().inc("service.jobs_done")
                with self._lock:
                    self._busy_seconds += obs_clock.monotonic() - busy_start
                    job.status = DONE
                    job.result = result
                    job.finished = obs_clock.wall_time()
                    job.trace_document = tracer.to_document()
                    if job.progress_total is not None:
                        job.progress_done = job.progress_total
                    self._settled.notify_all()

    # -- observability ---------------------------------------------------------

    def trace(self, job_id: str) -> Dict[str, Any]:
        """The finished job's ``repro-trace/v1`` envelope;
        :class:`JobStateError` while the job has not run yet."""
        with self._lock:
            job = self._get(job_id)
            if job.trace_document is None:
                raise JobStateError(
                    f"Job {job_id} is {job.status}; its trace is recorded "
                    "when the job finishes"
                )
            return job.trace_document

    def metrics_document(self) -> Dict[str, Any]:
        """The ``GET /metrics`` body: pool health plus a snapshot of the
        process-wide metrics registry (queue latency histogram, cache
        counters, sweep planner counters)."""
        with self._lock:
            by_status = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_status[job.status] += 1
            queue_depth = len(self._queue)
            busy = self._busy_seconds
        uptime = max(obs_clock.monotonic() - self._started_monotonic, 1e-9)
        return {
            "schema": "repro-metrics/v1",
            "workers": self._workers,
            "uptime_s": uptime,
            "worker_busy_s": busy,
            "worker_utilization": busy / (uptime * self._workers),
            "jobs": by_status,
            "queue_depth": queue_depth,
            "metrics": obs_metrics.registry().snapshot(),
        }


__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "Job",
    "JobManager",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
]
