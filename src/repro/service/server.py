"""The HTTP face of the study service: stdlib only, eight endpoints.

============================  ==============================================
endpoint                      meaning
============================  ==============================================
``POST /jobs``                submit a study/sweep/manifest body; ``201``
                              with the new job document, or ``200`` when the
                              submission deduplicated onto an existing job
                              (``"deduplicated": true`` in the body)
``GET /jobs``                 list every job, submission order
``GET /jobs/<id>``            one job's status/progress document
``GET /jobs/<id>/result``     the finished job's tagged-JSON envelope —
                              byte-identical to ``repro run --json``
``GET /jobs/<id>/trace``      the finished job's ``repro-trace/v1``
                              envelope (409 until the job has run)
``DELETE /jobs/<id>``         cancel a *queued* job
``GET /health``               liveness probe
``GET /metrics``              pool health (queue depth, worker
                              utilization) + process metrics snapshot
============================  ==============================================

Errors arrive as ``{"error": {"type", "message", "repro"}}`` with the
status code chosen by exception class (:data:`STATUS_BY_ERROR`): a bad
submission is 400, an unknown job 404, an illegal state transition 409,
anything unexpected 500 — and the server survives all of them.

The handler holds no state of its own: every request reaches the one
:class:`~repro.service.jobs.JobManager` hanging off the server object,
and all mutation happens under the manager's lock.  The server is
:class:`http.server.ThreadingHTTPServer`, so slow pollers never block a
submit.  Note this module constructs **no** thread or lock primitives
itself (RPL009): the threading server spawns its own handler threads
internally, and the worker pool lives in ``jobs.py``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Type

from ..errors import ReproError
from .api import JobSubmission
from .errors import (InvalidSubmission, JobNotFound, JobStateError,
                     error_payload)
from .jobs import JobManager

#: How exception classes map onto HTTP status codes; first match wins,
#: so subclasses go before their bases.
STATUS_BY_ERROR: Tuple[Tuple[Type[BaseException], int], ...] = (
    (InvalidSubmission, 400),
    (JobNotFound, 404),
    (JobStateError, 409),
    (ReproError, 400),
)

#: Submission bodies larger than this are rejected outright (a manifest
#: of a few hundred entries is ~100 KiB; 4 MiB is nowhere near a limit
#: a legitimate client hits).
MAX_BODY_BYTES = 4 * 1024 * 1024


def status_for(error: BaseException) -> int:
    """The HTTP status an exception earns (500 when nothing matches).

    >>> status_for(JobNotFound("x")), status_for(ValueError("x"))
    (404, 500)
    """
    for error_type, status in STATUS_BY_ERROR:
        if isinstance(error, error_type):
            return status
    return 500


class _Handler(BaseHTTPRequestHandler):
    """Route requests onto ``self.server.manager``; never raise."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    @property
    def manager(self) -> JobManager:
        return self.server.manager

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, document: Any) -> None:
        body = json.dumps(document, indent=2, sort_keys=False)
        payload = (body + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error_json(self, error: BaseException) -> None:
        self._send_json(status_for(error), {"error": error_payload(error)})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise InvalidSubmission(
                f"Submission body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise InvalidSubmission("Empty submission body")
        try:
            return json.loads(raw)
        except ValueError as error:
            raise InvalidSubmission(
                f"Submission body is not JSON: {error}"
            ) from error

    # -- verbs -----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802  (http.server naming)
        try:
            parts = [part for part in self.path.split("/") if part]
            if parts != ["jobs"]:
                raise JobNotFound(f"No such endpoint: POST {self.path}")
            submission = JobSubmission.from_document(self._read_body())
            job, attached = self.manager.submit(submission)
            document = self.manager.document(job.id)
            document["deduplicated"] = attached
            self._send_json(200 if attached else 201, document)
        except Exception as error:
            self._send_error_json(error)

    def do_GET(self) -> None:  # noqa: N802
        try:
            parts = [part for part in self.path.split("?")[0].split("/")
                     if part]
            if parts == ["health"]:
                self._send_json(200, {"status": "ok"})
            elif parts == ["jobs"]:
                self._send_json(200, {"jobs": self.manager.documents()})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, self.manager.document(parts[1]))
            elif len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "result":
                result = self.manager.result(parts[1])
                self._send_json(200, result.to_json_dict())
            elif len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "trace":
                self._send_json(200, self.manager.trace(parts[1]))
            elif parts == ["metrics"]:
                self._send_json(200, self.manager.metrics_document())
            else:
                raise JobNotFound(f"No such endpoint: GET {self.path}")
        except Exception as error:
            self._send_error_json(error)

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            parts = [part for part in self.path.split("/") if part]
            if len(parts) != 2 or parts[0] != "jobs":
                raise JobNotFound(f"No such endpoint: DELETE {self.path}")
            job = self.manager.cancel(parts[1])
            self._send_json(200, self.manager.document(job.id))
        except Exception as error:
            self._send_error_json(error)


class ReproService(ThreadingHTTPServer):
    """The study service: a threading HTTP server bound to one
    :class:`~repro.service.jobs.JobManager`.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports the
    resolved address either way.  :meth:`close` tears down both the
    socket and the worker pool.
    """

    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 cache: Any = True, jobs: Optional[int] = None,
                 backend: Optional[str] = None, workers: int = 2,
                 verbose: bool = False):
        self.manager = JobManager(cache=cache, jobs=jobs, backend=backend,
                                  workers=workers)
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving and shut the job pool down (queued jobs are
        cancelled; running jobs finish)."""
        self.shutdown()
        self.server_close()
        self.manager.close()


def describe_endpoints() -> Dict[str, str]:
    """The endpoint table, for ``repro serve``'s startup banner."""
    return {
        "POST /jobs": "submit a study/sweep/manifest body",
        "GET /jobs": "list jobs",
        "GET /jobs/<id>": "job status and progress",
        "GET /jobs/<id>/result": "finished job's result envelope",
        "GET /jobs/<id>/trace": "finished job's repro-trace/v1 envelope",
        "DELETE /jobs/<id>": "cancel a queued job",
        "GET /health": "liveness probe",
        "GET /metrics": "pool health + process metrics snapshot",
    }


__all__ = [
    "MAX_BODY_BYTES",
    "STATUS_BY_ERROR",
    "ReproService",
    "describe_endpoints",
    "status_for",
]
