"""The Study layer: one typed, serializable API over every experiment.

The paper's evaluation is reproduced by the ``run_*`` functions of
:mod:`repro.analysis.experiments`; this package gives all of them a common
shape:

* :class:`~repro.study.spec.SweepSpec` / :class:`~repro.study.spec.Corner`
  — one sweep abstraction (named axes, grid or zip expansion, the PR-1
  ``SeedLike`` seed-spawning contract) consumed by both the Monte Carlo
  immunity engine and the batch transient/characterisation engine;
* :class:`~repro.study.results.StudyResult` and its per-figure subclasses
  — frozen dataclasses with lossless ``to_dict()`` / ``from_dict()`` /
  JSON round-trips, provenance metadata (engine, seed, parameters, config
  hash) and ``__str__`` renderings that replace the old ``format_*``
  helpers;
* :func:`~repro.study.registry.run_study` / ``list_studies`` — a registry
  mapping figure/table names to their runners;
* :func:`~repro.study.sweeps.run_sweep_study` — the unified sweep driver;
* :mod:`repro.study.cli` — the ``python -m repro`` command line
  (``repro list``, ``repro run fig7 --json out.json``, ``repro sweep
  --axis vdd=0.8:1.0:5 ...``).
"""

from .results import (
    CharacterizationResult,
    CircuitCellReport,
    CircuitStudyResult,
    EdpSummaryResult,
    Fig2ImmunityResult,
    Fig3Result,
    Fig4Result,
    Fig7Result,
    FO4GainPoint,
    FO4TransientPoint,
    Fo4TransientResult,
    FullAdderResult,
    ImmunitySweepResult,
    PitchSensitivityResult,
    Provenance,
    RESULT_SCHEMA,
    StudyResult,
    Table1Result,
)
from .registry import StudyDefinition, get_study, list_studies, run_study
from .serialize import canonical_json, config_hash, decode, encode
from .spec import Axis, Corner, SweepSpec, parse_axis
from .sweeps import SweepRecord, SweepStudyResult, run_sweep_study

__all__ = [
    "Axis",
    "CharacterizationResult",
    "CircuitCellReport",
    "CircuitStudyResult",
    "Corner",
    "EdpSummaryResult",
    "Fig2ImmunityResult",
    "Fig3Result",
    "Fig4Result",
    "Fig7Result",
    "FO4GainPoint",
    "FO4TransientPoint",
    "Fo4TransientResult",
    "FullAdderResult",
    "ImmunitySweepResult",
    "PitchSensitivityResult",
    "Provenance",
    "RESULT_SCHEMA",
    "StudyDefinition",
    "StudyResult",
    "SweepRecord",
    "SweepSpec",
    "SweepStudyResult",
    "Table1Result",
    "canonical_json",
    "config_hash",
    "decode",
    "encode",
    "get_study",
    "list_studies",
    "parse_axis",
    "run_study",
    "run_sweep_study",
]
