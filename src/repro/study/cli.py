"""The ``repro`` command line: every paper scenario reachable headlessly.

Examples::

    python -m repro list
    python -m repro run fig7 --json fig7.json
    python -m repro run fig2 --seed 7 --trials 500 --json -
    python -m repro run fig8 --text
    python -m repro run fig3 --json - --cache .repro-cache
    python -m repro sweep --engine immunity --axis cnts_per_trial=2,4,8 \
        --axis technique=vulnerable,compact --trials 500 --jobs 4 --json -
    python -m repro sweep --engine transient --axis vdd=0.8:1.0:5 \
        --set cell=NAND2 --json sweep.json
    python -m repro circuit --generate adder:8 --trials 500 --json -
    python -m repro circuit design.v --cache .repro-cache
    python -m repro sweep --engine circuit --axis metallic_fraction=0:0.02:3 \
        --set circuit=adder:4 --set draws=500 --json -
    python -m repro batch manifest.json --cache .repro-cache --jobs 4
    python -m repro sweep --engine immunity --axis cnts_per_trial=2,4,8 \
        --cache .repro-cache --trace sweep-trace.json --json -
    python -m repro trace summarize sweep-trace.json
    python -m repro serve --port 8000 --cache .repro-cache --workers 2
    python -m repro cache stats --cache .repro-cache
    python -m repro cache prune --cache .repro-cache
    python -m repro cache prune --cache .repro-cache --max-age 86400 \
        --max-entries 512

``--json -`` streams the serialized result envelope (schema
``repro-study-result/v1``; see ``docs/repro_result.schema.json``) to
stdout; ``--json PATH`` writes it to a file.  Without ``--json`` the
result's text rendering (``str(result)``) is printed.

Runtime flags (``run``, ``sweep`` and ``batch``): ``--jobs N`` shards
the work over the runtime scheduler (bit-identical to serial);
``--cache DIR`` consults and fills the content-addressed result store
(also enabled store-wide by ``$REPRO_CACHE_DIR``; ``--no-cache`` turns
it off).  With a cache attached, ``sweep`` is **incremental by
default**: the requested grid is diffed against the persistent corner
store and only missing corners execute, so extending an axis of an
already-cached sweep costs O(delta), not O(grid).  The cache outcome
(``hit`` / ``miss`` / ``partial:<hits>/<corners>``) is written to stderr
and recorded in the result's provenance.

``--trace PATH`` (``run``, ``sweep``, ``circuit``, ``batch``) records a
``repro-trace/v1`` envelope of the invocation — spans, cache counters,
metrics snapshot — without changing the result by a single byte;
``repro trace summarize PATH`` renders its per-phase time breakdown.
"""

from __future__ import annotations

import argparse
import inspect
import json as json_module
import os
import sys
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ReproError, StudyError
from .registry import get_study, list_studies, run_study
from .results import StudyResult
from .spec import SweepSpec, _parse_scalar
from .sweeps import run_sweep_study


def _parse_assignment(text: str) -> tuple:
    """``"key=value"`` -> (key, parsed value).

    ``true``/``false``/``none`` (any case, ``null`` too) coerce to the
    Python literals.  Commas build a tuple; a trailing comma makes a
    one-element tuple (``tube_counts=4,`` -> ``(4,)``), which is how
    sequence-typed runner parameters take a single value from the command
    line.  Malformed assignments raise :class:`StudyError`, which the CLI
    turns into a one-line message and exit code 2 — never a traceback.
    """
    key, sep, raw = text.partition("=")
    key = key.strip()
    if not sep or not key:
        raise StudyError(f"Malformed parameter {text!r}; expected key=value")
    raw = raw.strip()
    if not raw:
        raise StudyError(f"Parameter {text!r} has no value; expected key=value")
    if "," in raw:
        tokens = [token for token in raw.split(",") if token.strip()]
        if not tokens:
            raise StudyError(f"Parameter {text!r} has no values")
        return key, tuple(_parse_value(token) for token in tokens)
    return key, _parse_value(raw)


def _parse_value(token: str):
    """One CLI value: the ``true``/``false``/``none`` literals, then the
    int/float/str scalar fallback — applied uniformly to scalars and to
    every element of a comma-separated tuple."""
    lowered = token.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    return _parse_scalar(token)


def _parse_assignments(texts: Optional[Sequence[str]],
                       flag: str) -> Dict[str, Any]:
    """Parse repeated ``KEY=VALUE`` flags, naming the flag in errors."""
    values: Dict[str, Any] = {}
    for text in texts or []:
        try:
            key, value = _parse_assignment(text)
        except StudyError as error:
            raise StudyError(f"{flag} {error}") from error
        values[key] = value
    return values


def _resolve_cache(args):
    """The ``--cache``/``--no-cache``/``$REPRO_CACHE_DIR`` resolution.

    Returns a :class:`~repro.runtime.cache.ResultCache` or ``None``; the
    explicit flags win over the environment variable.
    """
    from ..runtime.cache import ENV_CACHE_DIR, ResultCache

    if getattr(args, "no_cache", False):
        return None
    explicit = getattr(args, "cache", None)
    if explicit:
        return ResultCache(explicit)
    if os.environ.get(ENV_CACHE_DIR):
        return ResultCache()
    return None


def _note_cache(result: StudyResult, store, stderr) -> None:
    if store is not None and result.provenance.cache is not None:
        stderr.write(f"cache {result.provenance.cache}: {store.root}\n")


@contextmanager
def _traced(args, name: str, stderr):
    """Trace the wrapped invocation when ``--trace PATH`` was given.

    Activates a fresh tracer around the body (the instrumented layers
    pick it up thread-locally), then writes the ``repro-trace/v1``
    envelope to the requested path.  Without ``--trace`` this is a pure
    pass-through — the command runs exactly as before.
    """
    path = getattr(args, "trace", None)
    if not path:
        yield
        return
    from ..obs import trace as obs_trace

    tracer = obs_trace.Tracer(name, command=name.partition(":")[0])
    with tracer.activate():
        yield
    obs_trace.write_trace(tracer.to_document(), path)
    stderr.write(f"trace written: {path}\n")


def _emit(result: StudyResult, json_target: Optional[str],
          as_text: bool, stdout) -> None:
    if json_target is not None:
        if json_target == "-":
            stdout.write(result.to_json() + "\n")
        else:
            result.to_json(path=json_target)
            stdout.write(f"wrote {json_target}\n")
    if as_text or json_target is None:
        stdout.write(str(result) + "\n")


def _cmd_list(args, stdout, stderr) -> int:
    studies = list_studies()
    if args.json:
        stdout.write(json_module.dumps(
            [
                {
                    "name": definition.name,
                    "figure": definition.figure,
                    "description": definition.description,
                    "aliases": list(definition.aliases),
                }
                for definition in studies
            ],
            indent=2,
        ) + "\n")
        return 0
    header = f"{'name':<18} {'figure':<12} description"
    stdout.write(header + "\n")
    stdout.write("-" * 72 + "\n")
    for definition in studies:
        aliases = f"  (aliases: {', '.join(definition.aliases)})" \
            if definition.aliases else ""
        stdout.write(
            f"{definition.name:<18} {definition.figure:<12} "
            f"{definition.description}{aliases}\n"
        )
    stdout.write(
        "\nrun one with: python -m repro run <name> [--json out.json]\n"
    )
    return 0


def _cmd_run(args, stdout, stderr) -> int:
    definition = get_study(args.study)
    accepted = set(inspect.signature(definition.runner).parameters)
    params = _parse_assignments(args.param, "--param")
    if args.seed is not None:
        if "seed" not in accepted:
            raise StudyError(
                f"Study {definition.name!r} takes no seed; "
                f"parameters: {sorted(accepted)}"
            )
        params["seed"] = args.seed
    if args.trials is not None:
        if "trials" not in accepted:
            raise StudyError(
                f"Study {definition.name!r} takes no trial count; "
                f"parameters: {sorted(accepted)}"
            )
        params["trials"] = args.trials
    store = _resolve_cache(args)
    with _traced(args, f"run:{definition.name}", stderr):
        result = run_study(definition.name, cache=store, jobs=args.jobs,
                           **params)
    _note_cache(result, store, stderr)
    _emit(result, args.json, args.text, stdout)
    return 0


def _cmd_sweep(args, stdout, stderr) -> int:
    spec = SweepSpec.parse(args.axis, mode=args.mode)
    kwargs: Dict[str, Any] = _parse_assignments(args.set, "--set")
    if args.engine in ("immunity", "circuit"):
        kwargs["trials"] = args.trials if args.trials is not None else 200
        kwargs["seed"] = args.seed if args.seed is not None else 2009
    elif args.trials is not None or args.seed is not None:
        # Mirror `repro run`: rejecting the flags beats silently ignoring
        # them — the transient engine is deterministic and unseeded.
        raise StudyError(
            f"Engine {args.engine!r} takes no --seed/--trials "
            "(the transient engine is deterministic)"
        )
    store = _resolve_cache(args)
    with _traced(args, f"sweep:{args.engine}", stderr):
        result = run_sweep_study(spec, engine=args.engine, jobs=args.jobs,
                                 backend=args.backend, cache=store, **kwargs)
    _note_cache(result, store, stderr)
    _emit(result, args.json, args.text, stdout)
    return 0


def _cmd_circuit(args, stdout, stderr) -> int:
    from ..circuit_study import run_circuit_study

    if args.verilog is None and args.generate is None:
        raise StudyError(
            "repro circuit needs a Verilog file or --generate FAMILY[:BITS]"
        )
    if args.verilog is not None and args.generate is not None:
        raise StudyError(
            "repro circuit takes a Verilog file or --generate, not both"
        )
    if args.verilog is not None:
        # A missing/unreadable file surfaces as `error: ...` + exit 2 via
        # main()'s OSError handler, like every other CLI failure.
        with open(args.verilog, "r", encoding="utf-8") as stream:
            circuit = stream.read()
    else:
        circuit = args.generate
    params = _parse_assignments(args.param, "--param")
    if args.trials is not None:
        params["trials"] = args.trials
    if args.seed is not None:
        params["seed"] = args.seed
    store = _resolve_cache(args)
    with _traced(args, "circuit", stderr):
        result = run_circuit_study(circuit, workers=args.jobs,
                                   backend=args.backend, cache=store,
                                   **params)
    _note_cache(result, store, stderr)
    _emit(result, args.json, args.text, stdout)
    return 0


def _cmd_batch(args, stdout, stderr) -> int:
    from ..runtime.manifest import run_manifest

    store = _resolve_cache(args)
    with _traced(args, "batch", stderr):
        result = run_manifest(args.manifest, cache=store, jobs=args.jobs)
    _emit(result, args.json, args.text, stdout)
    return 0


def _cmd_serve(args, stdout, stderr) -> int:
    from ..service.server import ReproService, describe_endpoints

    store = _resolve_cache(args)
    service = ReproService(
        host=args.host,
        port=args.port,
        cache=store,
        jobs=args.jobs,
        backend=args.backend,
        workers=args.workers,
        verbose=args.verbose,
    )
    stdout.write(f"repro service listening on {service.url}\n")
    for endpoint, meaning in describe_endpoints().items():
        stdout.write(f"  {endpoint:<24} {meaning}\n")
    if store is not None:
        stdout.write(f"  cache: {store.root}\n")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        stderr.write("shutting down\n")
    finally:
        service.close()
    return 0


def _cmd_cache(args, stdout, stderr) -> int:
    from ..runtime.cache import ResultCache

    store = _resolve_cache(args) or ResultCache()
    if args.cache_command == "stats":
        stats = store.stats()
        if args.json:
            stdout.write(json_module.dumps(stats.as_dict(), indent=2,
                                           sort_keys=True) + "\n")
        else:
            stdout.write(str(stats) + "\n")
        return 0
    # Mirror _parse_assignment's discipline: malformed bounds become a
    # one-line `error: ...` and exit code 2, never a traceback.
    if args.max_age is not None and args.max_age < 0:
        raise StudyError(
            f"--max-age must be >= 0 seconds, got {args.max_age:g}"
        )
    if args.max_entries is not None and args.max_entries < 0:
        raise StudyError(
            f"--max-entries must be >= 0, got {args.max_entries}"
        )
    removed = store.prune(study=args.study, max_age_s=args.max_age,
                          max_entries=args.max_entries)
    stdout.write(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
                 f"from {store.root}\n")
    return 0


def _cmd_trace(args, stdout, stderr) -> int:
    from ..obs import trace as obs_trace

    try:
        with open(args.file, "r", encoding="utf-8") as stream:
            document = json_module.load(stream)
    except ValueError as error:
        raise StudyError(f"{args.file} is not JSON: {error}") from error
    found = document.get("schema") if isinstance(document, dict) else None
    if found != obs_trace.TRACE_SCHEMA:
        raise StudyError(
            f"{args.file} is not a {obs_trace.TRACE_SCHEMA} envelope "
            f"(schema={found!r})"
        )
    stdout.write(obs_trace.summarize_trace(document) + "\n")
    return 0


def _add_runtime_flags(parser: argparse.ArgumentParser,
                       backend: bool = False, trace: bool = True) -> None:
    """The scheduler/cache flags shared by ``run``, ``sweep``, ``batch``."""
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="shard the work over N workers (bit-identical "
                             "to serial; negative = one per CPU)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="consult/fill the content-addressed result "
                             "store at DIR (default store: $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache even if "
                             "$REPRO_CACHE_DIR is set")
    if trace:
        parser.add_argument("--trace", metavar="PATH", default=None,
                            help="write a repro-trace/v1 envelope of this "
                                 "invocation to PATH (observation-only: "
                                 "the result is bit-identical either way)")
    if backend:
        parser.add_argument("--backend", choices=("serial", "thread", "process"),
                            default=None,
                            help="scheduler backend (default: process pool "
                                 "when --jobs > 1)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the paper's figures and tables headlessly "
            "(typed Study API over the vectorized engines)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list every runnable study")
    list_parser.add_argument("--json", action="store_true",
                             help="emit the study table as JSON")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = subparsers.add_parser(
        "run", help="run one study (repro run fig7 --json out.json)")
    run_parser.add_argument("study", help="study name or alias (see: repro list)")
    run_parser.add_argument("--json", metavar="PATH",
                            help="write the serialized result ('-' = stdout)")
    run_parser.add_argument("--text", action="store_true",
                            help="also print the text rendering with --json")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="Monte Carlo seed (seeded studies only)")
    run_parser.add_argument("--trials", type=int, default=None,
                            help="Monte Carlo trial count (seeded studies only)")
    run_parser.add_argument("--param", action="append", metavar="KEY=VALUE",
                            help="extra runner parameter (repeatable; commas "
                                 "build a list, trailing comma a one-element "
                                 "list, e.g. tube_counts=4,; true/false/none "
                                 "coerce to the Python literals)")
    _add_runtime_flags(run_parser)
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a unified sweep (repro sweep --axis vdd=0.8:1.0:5 ...)")
    sweep_parser.add_argument("--axis", action="append", required=True,
                              metavar="NAME=SPEC",
                              help="axis as name=start:stop:steps, name=a,b,c "
                                   "or name=value (repeatable)")
    sweep_parser.add_argument("--engine",
                              choices=("immunity", "transient", "circuit"),
                              default="immunity")
    sweep_parser.add_argument("--mode", choices=("grid", "zip"), default="grid",
                              help="cartesian grid or lock-step zip expansion")
    sweep_parser.add_argument("--trials", type=int, default=None,
                              help="Monte Carlo trials (immunity engine; "
                                   "default 200)")
    sweep_parser.add_argument("--seed", type=int, default=None,
                              help="Monte Carlo seed (immunity engine; "
                                   "default 2009)")
    sweep_parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                              help="fixed value for an unswept axis (repeatable)")
    sweep_parser.add_argument("--json", metavar="PATH",
                              help="write the serialized result ('-' = stdout)")
    sweep_parser.add_argument("--text", action="store_true",
                              help="also print the text rendering with --json")
    _add_runtime_flags(sweep_parser, backend=True)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    circuit_parser = subparsers.add_parser(
        "circuit",
        help="run the circuit-level yield/delay/energy study on a Verilog "
             "netlist or a built-in generator "
             "(repro circuit --generate adder:8 --json -)")
    circuit_parser.add_argument("verilog", nargs="?", default=None,
                                metavar="FILE.V",
                                help="structural Verilog netlist to analyse")
    circuit_parser.add_argument("--generate", metavar="FAMILY[:BITS]",
                                default=None,
                                help="use a built-in circuit instead of a "
                                     "file: adder:8, comparator:4, mac:4, "
                                     "fulladder")
    circuit_parser.add_argument("--json", metavar="PATH",
                                help="write the serialized result "
                                     "('-' = stdout)")
    circuit_parser.add_argument("--text", action="store_true",
                                help="also print the text rendering with "
                                     "--json")
    circuit_parser.add_argument("--seed", type=int, default=None,
                                help="Monte Carlo seed (default 2009)")
    circuit_parser.add_argument("--trials", type=int, default=None,
                                help="Monte Carlo trials per unique cell "
                                     "(default 200)")
    circuit_parser.add_argument("--param", action="append",
                                metavar="KEY=VALUE",
                                help="extra study parameter (repeatable), "
                                     "e.g. metallic_fraction=0.01 draws=5000")
    _add_runtime_flags(circuit_parser, backend=True)
    circuit_parser.set_defaults(handler=_cmd_circuit)

    batch_parser = subparsers.add_parser(
        "batch",
        help="run a JSON manifest of studies with cross-study dedup "
             "(repro batch manifest.json --cache .repro-cache)")
    batch_parser.add_argument("manifest",
                              help="path to the manifest JSON (a list of "
                                   "{study, params} / sweep entries)")
    batch_parser.add_argument("--json", metavar="PATH",
                              help="write the serialized batch outcome "
                                   "('-' = stdout)")
    batch_parser.add_argument("--text", action="store_true",
                              help="also print the text rendering with --json")
    _add_runtime_flags(batch_parser)
    batch_parser.set_defaults(handler=_cmd_batch)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the async study service: an HTTP job API "
             "(repro serve --port 8000 --cache .repro-cache)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8000,
                              help="bind port (0 = ephemeral; default: 8000)")
    serve_parser.add_argument("--workers", type=int, default=2, metavar="N",
                              help="concurrent job slots (default: 2)")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log each HTTP request to stderr")
    # The service records one trace per job (GET /jobs/<id>/trace), so a
    # process-level --trace would be misleading here.
    _add_runtime_flags(serve_parser, backend=True, trace=False)
    serve_parser.set_defaults(handler=_cmd_serve)

    trace_parser = subparsers.add_parser(
        "trace",
        help="inspect repro-trace/v1 envelopes written by --trace")
    trace_sub = trace_parser.add_subparsers(dest="trace_command",
                                            required=True)
    summarize_parser = trace_sub.add_parser(
        "summarize",
        help="per-phase time breakdown of a trace file")
    summarize_parser.add_argument("file",
                                  help="trace JSON written by --trace or "
                                       "GET /jobs/<id>/trace")
    summarize_parser.set_defaults(handler=_cmd_trace)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or prune the result cache")
    cache_sub = cache_parser.add_subparsers(dest="cache_command",
                                            required=True)
    stats_parser = cache_sub.add_parser(
        "stats", help="entry counts, sizes and hit/miss counters")
    stats_parser.add_argument("--cache", metavar="DIR", default=None,
                              help="store location (default: "
                                   "$REPRO_CACHE_DIR or .repro-cache)")
    stats_parser.add_argument("--json", action="store_true",
                              help="emit the stats as JSON")
    stats_parser.set_defaults(handler=_cmd_cache)
    prune_parser = cache_sub.add_parser(
        "prune", help="delete cache entries (all, one study's, or bounded "
                      "by age / count)")
    prune_parser.add_argument("--cache", metavar="DIR", default=None,
                              help="store location (default: "
                                   "$REPRO_CACHE_DIR or .repro-cache)")
    prune_parser.add_argument("--study", default=None,
                              help="only prune entries of this study "
                                   "(corner envelopes: 'corner')")
    prune_parser.add_argument("--max-age", type=float, default=None,
                              metavar="SECONDS",
                              help="drop entries older than SECONDS "
                                   "(default: no age bound)")
    prune_parser.add_argument("--max-entries", type=int, default=None,
                              metavar="N",
                              help="keep only the N newest entries per "
                                   "granularity (study entries and corner "
                                   "envelopes bounded independently)")
    prune_parser.set_defaults(handler=_cmd_cache)

    return parser


def main(argv: Optional[Sequence[str]] = None,
         stdout=None, stderr=None) -> int:
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.handler(args, stdout, stderr)
    except ReproError as error:
        stderr.write(f"error: {error}\n")
        return 2
    except OSError as error:
        stderr.write(f"error: {error}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
