"""The ``repro`` command line: every paper scenario reachable headlessly.

Examples::

    python -m repro list
    python -m repro run fig7 --json fig7.json
    python -m repro run fig2 --seed 7 --trials 500 --json -
    python -m repro run fig8 --text
    python -m repro sweep --engine immunity --axis cnts_per_trial=2,4,8 \
        --axis technique=vulnerable,compact --trials 500 --json -
    python -m repro sweep --engine transient --axis vdd=0.8:1.0:5 \
        --set cell=NAND2 --json sweep.json

``--json -`` streams the serialized result envelope (schema
``repro-study-result/v1``; see ``docs/repro_result.schema.json``) to
stdout; ``--json PATH`` writes it to a file.  Without ``--json`` the
result's text rendering (``str(result)``) is printed.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ReproError, StudyError
from .registry import get_study, list_studies, run_study
from .results import StudyResult
from .spec import SweepSpec, _parse_scalar
from .sweeps import run_sweep_study


def _parse_assignment(text: str) -> tuple:
    """``"key=value"`` -> (key, parsed value).

    Commas build a tuple; a trailing comma makes a one-element tuple
    (``tube_counts=4,`` -> ``(4,)``), which is how sequence-typed runner
    parameters take a single value from the command line.
    """
    key, sep, raw = text.partition("=")
    key = key.strip()
    if not sep or not key:
        raise StudyError(f"Malformed parameter {text!r}; expected key=value")
    raw = raw.strip()
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return key, lowered == "true"
    if lowered in ("none", "null"):
        return key, None
    if "," in raw:
        tokens = [token for token in raw.split(",") if token.strip()]
        if not tokens:
            raise StudyError(f"Parameter {text!r} has no values")
        return key, tuple(_parse_scalar(token) for token in tokens)
    return key, _parse_scalar(raw)


def _emit(result: StudyResult, json_target: Optional[str],
          as_text: bool, stdout) -> None:
    if json_target is not None:
        if json_target == "-":
            stdout.write(result.to_json() + "\n")
        else:
            result.to_json(path=json_target)
            stdout.write(f"wrote {json_target}\n")
    if as_text or json_target is None:
        stdout.write(str(result) + "\n")


def _cmd_list(args, stdout) -> int:
    studies = list_studies()
    if args.json:
        import json as json_module

        stdout.write(json_module.dumps(
            [
                {
                    "name": definition.name,
                    "figure": definition.figure,
                    "description": definition.description,
                    "aliases": list(definition.aliases),
                }
                for definition in studies
            ],
            indent=2,
        ) + "\n")
        return 0
    header = f"{'name':<18} {'figure':<12} description"
    stdout.write(header + "\n")
    stdout.write("-" * 72 + "\n")
    for definition in studies:
        aliases = f"  (aliases: {', '.join(definition.aliases)})" \
            if definition.aliases else ""
        stdout.write(
            f"{definition.name:<18} {definition.figure:<12} "
            f"{definition.description}{aliases}\n"
        )
    stdout.write(
        "\nrun one with: python -m repro run <name> [--json out.json]\n"
    )
    return 0


def _cmd_run(args, stdout) -> int:
    definition = get_study(args.study)
    accepted = set(inspect.signature(definition.runner).parameters)
    params: Dict[str, Any] = {}
    for text in args.param or []:
        key, value = _parse_assignment(text)
        params[key] = value
    if args.seed is not None:
        if "seed" not in accepted:
            raise StudyError(
                f"Study {definition.name!r} takes no seed; "
                f"parameters: {sorted(accepted)}"
            )
        params["seed"] = args.seed
    if args.trials is not None:
        if "trials" not in accepted:
            raise StudyError(
                f"Study {definition.name!r} takes no trial count; "
                f"parameters: {sorted(accepted)}"
            )
        params["trials"] = args.trials
    result = run_study(definition.name, **params)
    _emit(result, args.json, args.text, stdout)
    return 0


def _cmd_sweep(args, stdout) -> int:
    spec = SweepSpec.parse(args.axis, mode=args.mode)
    fixed: Dict[str, Any] = {}
    for text in args.set or []:
        key, value = _parse_assignment(text)
        fixed[key] = value
    kwargs: Dict[str, Any] = dict(fixed)
    if args.engine == "immunity":
        kwargs["trials"] = args.trials if args.trials is not None else 200
        kwargs["seed"] = args.seed if args.seed is not None else 2009
    elif args.trials is not None or args.seed is not None:
        # Mirror `repro run`: rejecting the flags beats silently ignoring
        # them — the transient engine is deterministic and unseeded.
        raise StudyError(
            f"Engine {args.engine!r} takes no --seed/--trials "
            "(the transient engine is deterministic)"
        )
    result = run_sweep_study(spec, engine=args.engine, **kwargs)
    _emit(result, args.json, args.text, stdout)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the paper's figures and tables headlessly "
            "(typed Study API over the vectorized engines)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list every runnable study")
    list_parser.add_argument("--json", action="store_true",
                             help="emit the study table as JSON")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = subparsers.add_parser(
        "run", help="run one study (repro run fig7 --json out.json)")
    run_parser.add_argument("study", help="study name or alias (see: repro list)")
    run_parser.add_argument("--json", metavar="PATH",
                            help="write the serialized result ('-' = stdout)")
    run_parser.add_argument("--text", action="store_true",
                            help="also print the text rendering with --json")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="Monte Carlo seed (seeded studies only)")
    run_parser.add_argument("--trials", type=int, default=None,
                            help="Monte Carlo trial count (seeded studies only)")
    run_parser.add_argument("--param", action="append", metavar="KEY=VALUE",
                            help="extra runner parameter (repeatable; commas "
                                 "build a list, trailing comma a one-element "
                                 "list, e.g. tube_counts=4,)")
    run_parser.set_defaults(handler=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a unified sweep (repro sweep --axis vdd=0.8:1.0:5 ...)")
    sweep_parser.add_argument("--axis", action="append", required=True,
                              metavar="NAME=SPEC",
                              help="axis as name=start:stop:steps, name=a,b,c "
                                   "or name=value (repeatable)")
    sweep_parser.add_argument("--engine", choices=("immunity", "transient"),
                              default="immunity")
    sweep_parser.add_argument("--mode", choices=("grid", "zip"), default="grid",
                              help="cartesian grid or lock-step zip expansion")
    sweep_parser.add_argument("--trials", type=int, default=None,
                              help="Monte Carlo trials (immunity engine; "
                                   "default 200)")
    sweep_parser.add_argument("--seed", type=int, default=None,
                              help="Monte Carlo seed (immunity engine; "
                                   "default 2009)")
    sweep_parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                              help="fixed value for an unswept axis (repeatable)")
    sweep_parser.add_argument("--json", metavar="PATH",
                              help="write the serialized result ('-' = stdout)")
    sweep_parser.add_argument("--text", action="store_true",
                              help="also print the text rendering with --json")
    sweep_parser.set_defaults(handler=_cmd_sweep)

    return parser


def main(argv: Optional[Sequence[str]] = None,
         stdout=None, stderr=None) -> int:
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.handler(args, stdout)
    except ReproError as error:
        stderr.write(f"error: {error}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
