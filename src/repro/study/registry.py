"""The study registry: every paper figure/table reachable by name.

:func:`run_study` is the single typed entry point over all experiment
runners — ``run_study("fig7", max_tubes=10)`` — with keyword validation
against the runner's signature, and :func:`list_studies` enumerates what
can be run (the ``repro list`` CLI command prints it).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..errors import StudyError
from .results import StudyResult


@dataclass(frozen=True)
class StudyDefinition:
    """One runnable study: name, runner, and what it reproduces."""

    name: str
    runner: Callable[..., StudyResult]
    figure: str
    description: str
    aliases: Tuple[str, ...] = ()

    def parameters(self) -> Dict[str, object]:
        """The runner's keyword parameters and their defaults."""
        signature = inspect.signature(self.runner)
        return {
            name: (None if parameter.default is inspect.Parameter.empty
                   else parameter.default)
            for name, parameter in signature.parameters.items()
        }


def _definitions() -> List[StudyDefinition]:
    # Imported lazily so `import repro.study` does not pay for the whole
    # analysis stack until a study is actually listed or run.
    from ..analysis import experiments

    return [
        StudyDefinition(
            "table1", experiments.run_table1, "Table 1",
            "Area saving of the compact vs baseline layouts (20 entries)",
        ),
        StudyDefinition(
            "fig2", experiments.run_fig2_immunity, "Figure 2",
            "Monte Carlo mispositioned-CNT immunity per layout technique",
            aliases=("fig2_immunity", "immunity"),
        ),
        StudyDefinition(
            "immunity_sweep", experiments.run_immunity_sweep, "Figure 2+",
            "Failure rate across defect density / alignment / metallic residue",
        ),
        StudyDefinition(
            "fig3", experiments.run_fig3_nand3, "Figure 3",
            "The NAND3 compaction walk-through (16.67 % at 4 λ)",
            aliases=("fig3_nand3", "nand3"),
        ),
        StudyDefinition(
            "fig4", experiments.run_fig4_aoi31, "Figure 4",
            "The generalised AOI31 compact layout (schemes 1 and 2)",
            aliases=("fig4_aoi31", "aoi31"),
        ),
        StudyDefinition(
            "fig7", experiments.run_fig7_fo4, "Figure 7",
            "FO4 delay/energy gains vs number of CNTs (analytical sweep)",
            aliases=("fig7_fo4", "fo4"),
        ),
        StudyDefinition(
            "fo4_transient", experiments.run_fo4_transient_sweep, "Figure 7+",
            "Waveform-level Figure 7 cross-check on the batch transient engine",
        ),
        StudyDefinition(
            "characterization", experiments.run_characterization, "Sect. IV",
            "Multi-corner standard-cell characterisation on the batch engine",
            aliases=("char",),
        ),
        StudyDefinition(
            "pitch", experiments.run_pitch_sensitivity, "Figure 7+",
            "Delay variation across the optimal 4.5-5.5 nm pitch window",
            aliases=("pitch_sensitivity",),
        ),
        StudyDefinition(
            "fig8", experiments.run_fulladder_case_study, "Figures 8/9",
            "The NAND2+INV full adder through the logic-to-GDSII flow",
            aliases=("fulladder", "fig9"),
        ),
        StudyDefinition(
            "edp", experiments.run_edp_summary, "Abstract",
            "Headline EDP / EDAP gains at the optimal pitch",
            aliases=("edp_summary", "table2"),
        ),
        StudyDefinition(
            "circuit", experiments.run_circuit_study, "Beyond the paper",
            "Circuit-level yield/delay/energy over a mapped netlist "
            "(Verilog or built-in adder/comparator/MAC generators)",
            aliases=("circuit_study",),
        ),
    ]


def list_studies() -> List[StudyDefinition]:
    """All runnable studies, in paper order."""
    return _definitions()


def get_study(name: str) -> StudyDefinition:
    """Resolve a study by canonical name or alias (case-insensitive)."""
    wanted = name.strip().lower()
    definitions = _definitions()
    for definition in definitions:
        if wanted == definition.name or wanted in definition.aliases:
            return definition
    known = ", ".join(definition.name for definition in definitions)
    raise StudyError(f"Unknown study {name!r}; available: {known}")


def run_study(name: str, cache=None, jobs: "int | None" = None,
              **params) -> StudyResult:
    """Run one study by name with keyword overrides.

    Unknown keywords raise :class:`~repro.errors.StudyError` listing the
    runner's accepted parameters, so typos fail fast instead of silently
    running the default configuration.

    ``cache`` plugs the runtime layer's content-addressed store in: a
    :class:`~repro.runtime.cache.ResultCache`, a directory path, or
    ``True`` for the default store.  The invocation is fingerprinted
    (study name, parameters, package version — see
    :mod:`repro.runtime.fingerprint`); a warm entry is returned without
    invoking the runner, and provenance records ``cache="hit"`` or
    ``"miss"`` either way.

    ``jobs`` asks for parallel execution and is forwarded to the runner's
    ``workers`` parameter; studies without one reject it, mirroring how
    the CLI rejects ``--seed`` for unseeded studies.
    """
    definition = get_study(name)
    accepted = definition.parameters()
    unknown = sorted(set(params) - set(accepted))
    if unknown:
        raise StudyError(
            f"Study {definition.name!r} does not accept {unknown}; "
            f"parameters: {sorted(accepted)}"
        )
    if jobs is not None:
        if "workers" in accepted:
            params.setdefault("workers", jobs)
        elif "jobs" in accepted:
            params.setdefault("jobs", jobs)
        else:
            raise StudyError(
                f"Study {definition.name!r} has no parallel runner "
                f"(no workers parameter); parameters: {sorted(accepted)}"
            )
    # Imported lazily: the runtime layer sits on top of the study layer,
    # so a module-level import here would be circular.
    from ..obs import trace as obs_trace
    from ..runtime.cache import as_cache, with_cache_status
    from ..runtime.fingerprint import study_fingerprint

    store = as_cache(cache)
    if "seed" in params and params["seed"] is None:
        # An explicit seed=None asks for fresh OS entropy — caching that
        # would serve a stale random draw as a "hit", so bypass.
        store = None
    with obs_trace.span(f"study:{definition.name}",
                        study=definition.name, cached=store is not None):
        if store is None:
            return definition.runner(**params)
        key = study_fingerprint(definition.name, params=params)
        obs_trace.annotate(fingerprint=key)
        cached = store.get(key)
        if cached is not None:
            obs_trace.annotate(cache="hit")
            return with_cache_status(cached, "hit")
        result = definition.runner(**params)
        store.put(key, result)
        obs_trace.annotate(cache="miss")
        return with_cache_status(result, "miss")
