"""Typed, serializable results for every experiment of the evaluation.

Each ``run_*`` runner in :mod:`repro.analysis.experiments` historically
returned an untyped ``Dict[str, object]``.  The classes here give every
experiment a frozen dataclass result with four guarantees:

* **compatibility** — results speak the Mapping protocol and
  :meth:`StudyResult.to_dict` reproduces the pre-redesign dict payload
  exactly (same keys, bit-identical values for fixed seeds), so existing
  ``result["optimal"]["delay_gain"]`` call sites keep working;
* **serialization** — :meth:`StudyResult.to_json` / ``from_json`` round-
  trip losslessly through the tagged encoding of
  :mod:`repro.study.serialize`, NumPy fields included;
* **provenance** — every result carries a :class:`Provenance` block
  (study, engine, seed, parameters, content hash, package version);
* **rendering** — ``str(result)`` replaces the old ad-hoc ``format_fig7``
  / ``format_fulladder`` helpers.

The one documented exception to losslessness: the full-adder study's
in-memory flow artifacts (placed layouts, GDSII bytes) serialize as
:class:`~repro.flow.designkit.FlowSummary` views, not as the multi-
megabyte object graphs themselves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import (
    Any, ClassVar, Dict, Iterator, List, Mapping, Optional, Tuple, Type,
)

from ..errors import StudyError
from .serialize import config_hash, decode, encode

#: Version tag of the serialized result envelope.
RESULT_SCHEMA = "repro-study-result/v1"


def _package_version() -> str:
    from .. import __version__
    return __version__


def _normalize_seeds(value: Any) -> Any:
    """Replace :class:`~numpy.random.SeedSequence` values (which compare by
    identity) with their tagged-dict form so provenance stays value-
    comparable across serialization; everything else passes through."""
    import numpy as np

    if isinstance(value, np.random.SeedSequence):
        return encode(value)
    if isinstance(value, dict):
        return {key: _normalize_seeds(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return type(value)(_normalize_seeds(item) for item in value)
    return value


@dataclass(frozen=True)
class Provenance:
    """Where a result came from: enough to reproduce it headlessly.

    ``params`` holds the runner's full keyword set and ``seed`` the seed it
    was given (seed sequences normalised to their tagged-dict form);
    ``config_hash`` is a short content hash of (study, params, schema) —
    two results with the same hash were produced by the same configuration
    of the same code version, which makes result files git-describable.

    ``cache`` records how the runtime layer produced the result — ``None``
    (no cache consulted), ``"miss"`` (computed and stored) or ``"hit"``
    (returned from the content-addressed store).  It is excluded from
    equality: a warm-cache result must still compare equal to the cold run
    that produced it, which is the runtime layer's bit-identity contract.
    """

    study: str
    params: Dict[str, Any]
    engine: Optional[str] = None
    seed: Any = None
    config_hash: str = ""
    package_version: str = ""
    schema: str = RESULT_SCHEMA
    cache: Optional[str] = field(default=None, compare=False)

    @classmethod
    def capture(cls, study: str, params: Optional[Mapping[str, Any]] = None,
                engine: Optional[str] = None, seed: Any = None) -> "Provenance":
        """Record the configuration of a runner invocation."""
        safe_params = {key: _normalize_seeds(value)
                       for key, value in (params or {}).items()}
        return cls(
            study=study,
            params=safe_params,
            engine=engine,
            seed=_normalize_seeds(seed) if seed is not None else None,
            config_hash=config_hash(
                {"study": study, "params": safe_params, "schema": RESULT_SCHEMA}
            ),
            package_version=_package_version(),
        )

    @classmethod
    def unknown(cls, study: str) -> "Provenance":
        """Placeholder provenance for results rebuilt from bare payloads."""
        return cls.capture(study, params={"reconstructed": True})


#: Result classes by study name, for ``from_json`` dispatch.
_RESULT_TYPES: Dict[str, Type["StudyResult"]] = {}


@dataclass(frozen=True)
class StudyResult:
    """Base class of every typed experiment result.

    Subclasses are frozen dataclasses that set ``study_name`` and
    implement :meth:`to_dict` (the legacy payload) plus
    :meth:`from_payload` (its inverse).  The Mapping protocol delegates to
    :meth:`to_dict`, which is what keeps pre-redesign subscription code
    working unchanged.
    """

    provenance: Provenance = field(repr=False, metadata={"serialize": False})

    study_name: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        name = cls.__dict__.get("study_name") or getattr(cls, "study_name", "")
        if name:
            _RESULT_TYPES[name] = cls

    # -- the legacy payload ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The pre-redesign dict payload of this experiment (same keys,
        bit-identical values for fixed seeds)."""
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any],
                     provenance: Provenance) -> "StudyResult":
        """Rebuild a result from a (decoded) payload mapping."""
        raise NotImplementedError

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any],
                  provenance: Optional[Provenance] = None) -> "StudyResult":
        """Rebuild a result from a :meth:`to_dict` payload."""
        return cls.from_payload(
            payload, provenance or Provenance.unknown(cls.study_name)
        )

    # -- Mapping compatibility -------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        return self.to_dict()[key]

    def __contains__(self, key: object) -> bool:
        return key in self.to_dict()

    def __iter__(self) -> Iterator[str]:
        return iter(self.to_dict())

    def __len__(self) -> int:
        return len(self.to_dict())

    def keys(self):
        return self.to_dict().keys()

    def values(self):
        return self.to_dict().values()

    def items(self):
        return self.to_dict().items()

    def get(self, key: str, default: Any = None) -> Any:
        return self.to_dict().get(key, default)

    # -- JSON round-trip -------------------------------------------------------

    def payload_for_json(self) -> Dict[str, Any]:
        """The payload to serialize; defaults to :meth:`to_dict`.
        Subclasses carrying unserializable artifacts override this to
        substitute summary views."""
        return self.to_dict()

    def to_json_dict(self) -> Dict[str, Any]:
        """The serialized envelope: schema + study + provenance + payload."""
        return {
            "schema": RESULT_SCHEMA,
            "study": type(self).study_name,
            "provenance": {
                f.name: encode(getattr(self.provenance, f.name))
                for f in dataclass_fields(self.provenance)
            },
            "payload": encode(self.payload_for_json()),
        }

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Serialize to JSON text; optionally also write it to ``path``."""
        text = json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as stream:
                stream.write(text + "\n")
        return text

    @classmethod
    def from_json_dict(cls, document: Mapping[str, Any]) -> "StudyResult":
        """Rebuild a result from a :meth:`to_json_dict` envelope."""
        try:
            study = document["study"]
            raw_provenance = document["provenance"]
            raw_payload = document["payload"]
        except (KeyError, TypeError) as error:
            raise StudyError(f"Malformed study-result document: {error}") from error
        result_type = _RESULT_TYPES.get(study)
        if result_type is None:
            raise StudyError(
                f"Unknown study {study!r}; known: {sorted(_RESULT_TYPES)}"
            )
        if cls is not StudyResult and cls is not result_type:
            raise StudyError(
                f"Document holds a {study!r} result, not {cls.study_name!r}"
            )
        if not isinstance(raw_provenance, Mapping):
            raise StudyError("Malformed study-result document: provenance "
                             "must be an object")
        # Unknown provenance keys (e.g. fields added by a newer package
        # version) are dropped rather than fatal; missing required ones
        # surface as a StudyError, not a raw TypeError.
        known = {f.name for f in dataclass_fields(Provenance)}
        try:
            provenance = Provenance(**{
                key: decode(value) for key, value in raw_provenance.items()
                if key in known
            })
        except TypeError as error:
            raise StudyError(
                f"Malformed provenance block: {error}"
            ) from error
        return result_type.from_payload(decode(raw_payload), provenance)

    @classmethod
    def from_json(cls, text: str) -> "StudyResult":
        return cls.from_json_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Shared renderings (the canonical replacements of the format_* helpers)
# ---------------------------------------------------------------------------

def render_fig7(result: Mapping[str, Any]) -> str:
    """Render a Figure 7 sweep payload as a text table."""
    header = (f"{'CNTs':>5} {'pitch(nm)':>10} {'delay gain':>11} "
              f"{'energy gain':>12} {'EDP gain':>9}")
    lines = [header, "-" * len(header)]
    for point in result["sweep"]:
        lines.append(
            f"{point['num_tubes']:>5} {point['pitch_nm']:>10.2f} "
            f"{point['delay_gain']:>11.2f} {point['energy_gain']:>12.2f} "
            f"{point['edp_gain']:>9.2f}"
        )
    best = result["optimal"]
    paper = result["paper"]
    lines.append("")
    lines.append(
        f"optimal: {best['delay_gain']:.2f}x delay, {best['energy_gain']:.2f}x energy "
        f"at pitch {best['pitch_nm']:.2f} nm "
        f"(paper: {paper['delay_gain_optimal']}x, {paper['energy_gain_optimal']}x at "
        f"{paper['optimal_pitch_nm']} nm)"
    )
    return "\n".join(lines)


def render_fulladder(result: Mapping[str, Any]) -> str:
    """Render the full-adder case study payload as text."""
    paper = result["paper"]
    lines = [
        "Full adder (NAND2 + INV, Figure 8) — CNFET vs 65 nm CMOS",
        "-" * 60,
        f"delay gain            : {result['delay_gain']:.2f}x (paper ~{paper['delay_gain']}x)",
        f"energy gain           : {result['energy_gain']:.2f}x (paper ~{paper['energy_gain']}x)",
        f"area gain (scheme 1)  : {result['area_gain_scheme1']:.2f}x (paper ~{paper['area_gain_scheme1']}x)",
        f"area gain (scheme 2)  : {result['area_gain_scheme2']:.2f}x (paper ~{paper['area_gain_scheme2']}x)",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Per-figure results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Result(StudyResult):
    """Table 1: area saving of the compact vs baseline layouts."""

    study_name: ClassVar[str] = "table1"

    rows: Tuple[Any, ...] = ()                  # AreaComparisonRow entries
    formatted: str = ""
    mean_absolute_error: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rows": list(self.rows),
            "formatted": self.formatted,
            "mean_absolute_error": self.mean_absolute_error,
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        return cls(
            provenance=provenance,
            rows=tuple(payload["rows"]),
            formatted=payload["formatted"],
            mean_absolute_error=payload["mean_absolute_error"],
        )

    def __str__(self) -> str:
        return self.formatted


@dataclass(frozen=True)
class Fig3Result(StudyResult):
    """Figure 3: the NAND3 compaction walk-through."""

    study_name: ClassVar[str] = "fig3"

    unit_width: float = 4.0
    baseline_area: float = 0.0
    compact_area: float = 0.0
    measured_saving: float = 0.0
    paper_saving: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "unit_width": self.unit_width,
            "baseline_area": self.baseline_area,
            "compact_area": self.compact_area,
            "measured_saving": self.measured_saving,
            "paper_saving": self.paper_saving,
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        return cls(provenance=provenance, **payload)

    def __str__(self) -> str:
        paper = ("n/a" if self.paper_saving is None
                 else f"{self.paper_saving * 100:.2f}%")
        return (
            f"NAND3 compaction at {self.unit_width:g} λ: "
            f"{self.baseline_area:g} λ² -> {self.compact_area:g} λ² "
            f"({self.measured_saving * 100:.2f}% saved, paper {paper})"
        )


@dataclass(frozen=True)
class Fig2ImmunityResult(StudyResult):
    """Figure 2: Monte Carlo immunity per layout technique."""

    study_name: ClassVar[str] = "fig2"

    gate: str = ""
    results: Dict[str, Any] = field(default_factory=dict)  # MonteCarloResult
    formatted: str = ""
    vulnerable_failure_rate: float = 0.0
    baseline_immune: bool = False
    compact_immune: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "gate": self.gate,
            "results": dict(self.results),
            "formatted": self.formatted,
            "vulnerable_failure_rate": self.vulnerable_failure_rate,
            "baseline_immune": self.baseline_immune,
            "compact_immune": self.compact_immune,
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        return cls(
            provenance=provenance,
            gate=payload["gate"],
            results=dict(payload["results"]),
            formatted=payload["formatted"],
            vulnerable_failure_rate=payload["vulnerable_failure_rate"],
            baseline_immune=payload["baseline_immune"],
            compact_immune=payload["compact_immune"],
        )

    def __str__(self) -> str:
        return self.formatted


@dataclass(frozen=True)
class ImmunitySweepResult(StudyResult):
    """The batched defect-parameter sweep extending Figure 2."""

    study_name: ClassVar[str] = "immunity_sweep"

    points: Tuple[Any, ...] = ()                # SweepPoint entries
    formatted: str = ""
    worst_failure_rate_by_technique: Dict[str, float] = field(default_factory=dict)
    compact_always_immune: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "points": list(self.points),
            "formatted": self.formatted,
            "worst_failure_rate_by_technique": dict(
                self.worst_failure_rate_by_technique
            ),
            "compact_always_immune": self.compact_always_immune,
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        return cls(
            provenance=provenance,
            points=tuple(payload["points"]),
            formatted=payload["formatted"],
            worst_failure_rate_by_technique=dict(
                payload["worst_failure_rate_by_technique"]
            ),
            compact_always_immune=payload["compact_always_immune"],
        )

    def __str__(self) -> str:
        return self.formatted


@dataclass(frozen=True)
class Fig4Result(StudyResult):
    """Figure 4: the generalised AOI31 compact layout."""

    study_name: ClassVar[str] = "fig4"

    gate: str = ""
    pun_contacts: int = 0
    pun_gates: int = 0
    pdn_contacts: int = 0
    pdn_gates: int = 0
    pun_width_factors: Tuple[float, ...] = ()
    pdn_width_factors: Tuple[float, ...] = ()
    scheme1_area: float = 0.0
    scheme2_area: float = 0.0
    requires_etched_regions: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "gate": self.gate,
            "pun_contacts": self.pun_contacts,
            "pun_gates": self.pun_gates,
            "pdn_contacts": self.pdn_contacts,
            "pdn_gates": self.pdn_gates,
            "pun_width_factors": list(self.pun_width_factors),
            "pdn_width_factors": list(self.pdn_width_factors),
            "scheme1_area": self.scheme1_area,
            "scheme2_area": self.scheme2_area,
            "requires_etched_regions": self.requires_etched_regions,
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        data = dict(payload)
        data["pun_width_factors"] = tuple(data["pun_width_factors"])
        data["pdn_width_factors"] = tuple(data["pdn_width_factors"])
        return cls(provenance=provenance, **data)

    def __str__(self) -> str:
        return (
            f"{self.gate}: {self.pun_gates}+{self.pdn_gates} gate stripes, "
            f"{self.pun_contacts}+{self.pdn_contacts} contacts, "
            f"{self.requires_etched_regions} etched regions; "
            f"scheme 1 {self.scheme1_area:g} λ², scheme 2 {self.scheme2_area:g} λ²"
        )


class _PointBase:
    """Shared dict conversion for flat sweep-point dataclasses: field
    order is the legacy payload's key order, so adding a field updates
    ``as_dict``/``from_mapping`` and the JSON round-trip in one place."""

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    @classmethod
    def from_mapping(cls, data: Mapping[str, float]):
        return cls(**{f.name: data[f.name] for f in dataclass_fields(cls)})


@dataclass(frozen=True)
class FO4GainPoint(_PointBase):
    """One CNT-count point of the analytical Figure 7 sweep."""

    num_tubes: int
    pitch_nm: float
    delay_gain: float
    energy_gain: float
    edp_gain: float
    cnfet_delay_ps: float
    cmos_delay_ps: float


@dataclass(frozen=True)
class Fig7Result(StudyResult):
    """Figure 7 / Case study 1: FO4 gains vs number of CNTs."""

    study_name: ClassVar[str] = "fig7"

    sweep: Tuple[FO4GainPoint, ...] = ()
    single_cnt: Optional[FO4GainPoint] = None
    optimal: Optional[FO4GainPoint] = None
    inverter_area_gain: float = 0.0
    paper: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": [point.as_dict() for point in self.sweep],
            "single_cnt": self.single_cnt.as_dict() if self.single_cnt else None,
            "optimal": self.optimal.as_dict() if self.optimal else None,
            "inverter_area_gain": self.inverter_area_gain,
            "paper": dict(self.paper),
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        def point(data):
            if data is None:
                return None
            if isinstance(data, FO4GainPoint):
                return data
            return FO4GainPoint.from_mapping(data)

        return cls(
            provenance=provenance,
            sweep=tuple(point(entry) for entry in payload["sweep"]),
            single_cnt=point(payload["single_cnt"]),
            optimal=point(payload["optimal"]),
            inverter_area_gain=payload["inverter_area_gain"],
            paper=dict(payload["paper"]),
        )

    def __str__(self) -> str:
        return render_fig7(self)


@dataclass(frozen=True)
class FO4TransientPoint(_PointBase):
    """One CNT-count point of the waveform-level Figure 7 cross-check."""

    num_tubes: int
    pitch_nm: float
    cnfet_delay_ps: float
    cmos_delay_ps: float
    delay_gain: float
    energy_gain: float


@dataclass(frozen=True)
class Fo4TransientResult(StudyResult):
    """The batch-transient-engine cross-check of the Figure 7 sweep."""

    study_name: ClassVar[str] = "fo4_transient"

    sweep: Tuple[FO4TransientPoint, ...] = ()
    cmos_delay_ps: float = 0.0
    optimal: Optional[FO4TransientPoint] = None
    batch_size: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": [point.as_dict() for point in self.sweep],
            "cmos_delay_ps": self.cmos_delay_ps,
            "optimal": self.optimal.as_dict() if self.optimal else None,
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        def point(data):
            if data is None:
                return None
            if isinstance(data, FO4TransientPoint):
                return data
            return FO4TransientPoint.from_mapping(data)

        return cls(
            provenance=provenance,
            sweep=tuple(point(entry) for entry in payload["sweep"]),
            cmos_delay_ps=payload["cmos_delay_ps"],
            optimal=point(payload["optimal"]),
            batch_size=payload["batch_size"],
        )

    def __str__(self) -> str:
        header = (f"{'CNTs':>5} {'pitch(nm)':>10} {'CNFET(ps)':>10} "
                  f"{'CMOS(ps)':>9} {'delay gain':>11} {'energy gain':>12}")
        lines = [header, "-" * len(header)]
        for p in self.sweep:
            lines.append(
                f"{p.num_tubes:>5} {p.pitch_nm:>10.2f} {p.cnfet_delay_ps:>10.2f} "
                f"{p.cmos_delay_ps:>9.2f} {p.delay_gain:>11.2f} "
                f"{p.energy_gain:>12.2f}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class CharacterizationResult(StudyResult):
    """Multi-corner standard-cell characterisation on the batch engine."""

    study_name: ClassVar[str] = "characterization"

    sweep: Any = None                           # CharacterizationSweep
    formatted: str = ""
    grid_shape: Tuple[int, ...] = ()
    points: int = 0
    monotone_in_load: Optional[bool] = None
    faster_at_higher_drive: Optional[bool] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep,
            "formatted": self.formatted,
            "grid_shape": tuple(self.grid_shape),
            "points": self.points,
            "monotone_in_load": self.monotone_in_load,
            "faster_at_higher_drive": self.faster_at_higher_drive,
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        return cls(
            provenance=provenance,
            sweep=payload["sweep"],
            formatted=payload["formatted"],
            grid_shape=tuple(payload["grid_shape"]),
            points=payload["points"],
            monotone_in_load=payload["monotone_in_load"],
            faster_at_higher_drive=payload["faster_at_higher_drive"],
        )

    def __str__(self) -> str:
        return self.formatted


@dataclass(frozen=True)
class PitchSensitivityResult(StudyResult):
    """Delay variation across the optimal-pitch window."""

    study_name: ClassVar[str] = "pitch"

    pitch_low_nm: float = 0.0
    pitch_high_nm: float = 0.0
    delay_variation: float = 0.0
    paper_variation: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pitch_low_nm": self.pitch_low_nm,
            "pitch_high_nm": self.pitch_high_nm,
            "delay_variation": self.delay_variation,
            "paper_variation": self.paper_variation,
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        return cls(provenance=provenance, **payload)

    def __str__(self) -> str:
        return (
            f"FO4 delay varies {self.delay_variation * 100:.2f}% across "
            f"{self.pitch_low_nm:g}-{self.pitch_high_nm:g} nm pitch "
            f"(paper ~{self.paper_variation * 100:.0f}%)"
        )


@dataclass(frozen=True)
class FullAdderResult(StudyResult):
    """Figures 8/9 / Case study 2: the full adder through the flow.

    ``flow_results`` holds the live in-memory :class:`~repro.flow.designkit.
    FlowResult` artifacts of a fresh run (excluded from equality and from
    serialization); ``flow_summaries`` is the serializable view that
    survives the JSON round-trip.
    """

    study_name: ClassVar[str] = "fig8"

    flow_summaries: Dict[int, Any] = field(default_factory=dict)  # FlowSummary
    gains: Dict[int, Any] = field(default_factory=dict)           # GainReport
    delay_gain: float = 0.0
    energy_gain: float = 0.0
    area_gain_scheme1: float = 0.0
    area_gain_scheme2: float = 0.0
    paper: Dict[str, Any] = field(default_factory=dict)
    flow_results: Optional[Dict[int, Any]] = field(
        default=None, compare=False, repr=False,
        metadata={"serialize": False},
    )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "flow_results": (self.flow_results if self.flow_results is not None
                             else dict(self.flow_summaries)),
            "gains": dict(self.gains),
            "delay_gain": self.delay_gain,
            "energy_gain": self.energy_gain,
            "area_gain_scheme1": self.area_gain_scheme1,
            "area_gain_scheme2": self.area_gain_scheme2,
            "paper": dict(self.paper),
        }

    def payload_for_json(self) -> Dict[str, Any]:
        payload = self.to_dict()
        payload["flow_results"] = dict(self.flow_summaries)
        return payload

    @classmethod
    def from_payload(cls, payload, provenance):
        from ..flow.designkit import FlowResult, FlowSummary

        raw = payload["flow_results"]
        live: Optional[Dict[int, Any]] = None
        summaries: Dict[int, Any] = {}
        for scheme, entry in dict(raw).items():
            if isinstance(entry, FlowResult):
                live = live or {}
                live[scheme] = entry
                summaries[scheme] = entry.summarize()
            elif isinstance(entry, FlowSummary):
                summaries[scheme] = entry
            else:
                raise StudyError(
                    f"flow_results[{scheme}] is neither FlowResult nor "
                    f"FlowSummary: {type(entry).__name__}"
                )
        return cls(
            provenance=provenance,
            flow_summaries=summaries,
            gains=dict(payload["gains"]),
            delay_gain=payload["delay_gain"],
            energy_gain=payload["energy_gain"],
            area_gain_scheme1=payload["area_gain_scheme1"],
            area_gain_scheme2=payload["area_gain_scheme2"],
            paper=dict(payload["paper"]),
            flow_results=live,
        )

    def __str__(self) -> str:
        return render_fulladder(self)


@dataclass(frozen=True)
class CircuitCellReport(_PointBase):
    """Per-unique-cell outcome of a circuit study: one Monte Carlo
    immunity run plus one measured-timing characterisation, shared by
    every instance of the cell in the mapped netlist."""

    cell: str
    gate: str
    drive_strength: float
    instances: int
    trials: int
    failures: int
    failure_rate: float
    immune: bool
    input_capacitance_f: float
    drive_resistance_ohm: float
    parasitic_capacitance_f: float


@dataclass(frozen=True)
class CircuitStudyResult(StudyResult):
    """Circuit-level yield / delay / energy aggregation over a mapped
    netlist (the synthesized-circuit extension of the paper's per-cell
    analysis).

    ``functional_yield`` is the analytic every-cell-must-work product
    ``Π(1 − p_cell)`` over all instances; ``monte_carlo_yield`` is the
    empirical fraction of defect draws with zero defective instances,
    with ``defect_histogram`` recording the full defective-instance-count
    distribution.  Timing and energy come from static analysis over the
    measured per-cell models.
    """

    study_name: ClassVar[str] = "circuit"

    circuit: str = ""
    source: str = ""
    instances: int = 0
    unique_cells: int = 0
    cells: Tuple[CircuitCellReport, ...] = ()
    functional_yield: float = 0.0
    monte_carlo_yield: float = 0.0
    draws: int = 0
    defect_histogram: Tuple[Tuple[int, int], ...] = ()
    critical_path_delay_s: float = 0.0
    critical_path: Tuple[str, ...] = ()
    output_arrivals_s: Dict[str, float] = field(default_factory=dict)
    total_energy_per_cycle_j: float = 0.0
    total_cell_area_lambda2: float = 0.0
    vdd: float = 0.0
    pitch_nm: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "source": self.source,
            "instances": self.instances,
            "unique_cells": self.unique_cells,
            "cells": [cell.as_dict() for cell in self.cells],
            "functional_yield": self.functional_yield,
            "monte_carlo_yield": self.monte_carlo_yield,
            "draws": self.draws,
            "defect_histogram": [list(pair) for pair in self.defect_histogram],
            "critical_path_delay_s": self.critical_path_delay_s,
            "critical_path": list(self.critical_path),
            "output_arrivals_s": dict(self.output_arrivals_s),
            "total_energy_per_cycle_j": self.total_energy_per_cycle_j,
            "total_cell_area_lambda2": self.total_cell_area_lambda2,
            "vdd": self.vdd,
            "pitch_nm": self.pitch_nm,
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        def cell(entry):
            if isinstance(entry, CircuitCellReport):
                return entry
            return CircuitCellReport.from_mapping(entry)

        return cls(
            provenance=provenance,
            circuit=payload["circuit"],
            source=payload["source"],
            instances=payload["instances"],
            unique_cells=payload["unique_cells"],
            cells=tuple(cell(entry) for entry in payload["cells"]),
            functional_yield=payload["functional_yield"],
            monte_carlo_yield=payload["monte_carlo_yield"],
            draws=payload["draws"],
            defect_histogram=tuple(
                (int(count), int(freq))
                for count, freq in payload["defect_histogram"]
            ),
            critical_path_delay_s=payload["critical_path_delay_s"],
            critical_path=tuple(payload["critical_path"]),
            output_arrivals_s=dict(payload["output_arrivals_s"]),
            total_energy_per_cycle_j=payload["total_energy_per_cycle_j"],
            total_cell_area_lambda2=payload["total_cell_area_lambda2"],
            vdd=payload["vdd"],
            pitch_nm=payload["pitch_nm"],
        )

    def __str__(self) -> str:
        header = (f"{'cell':<12} {'uses':>5} {'trials':>7} {'fail rate':>10} "
                  f"{'immune':>7}")
        lines = [
            f"Circuit study: {self.circuit} ({self.source}) — "
            f"{self.instances} instances, {self.unique_cells} unique cells",
            "-" * len(header),
            header,
            "-" * len(header),
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.cell:<12} {cell.instances:>5} {cell.trials:>7} "
                f"{cell.failure_rate * 100:>9.2f}% {str(cell.immune):>7}"
            )
        lines.extend([
            "",
            f"functional yield (analytic)   : {self.functional_yield * 100:.3f}%",
            f"functional yield (Monte Carlo): {self.monte_carlo_yield * 100:.3f}% "
            f"over {self.draws} draws",
            f"critical path delay           : {self.critical_path_delay_s * 1e12:.2f} ps "
            f"({' -> '.join(self.critical_path)})",
            f"switching energy / cycle      : {self.total_energy_per_cycle_j * 1e15:.2f} fJ "
            f"at vdd {self.vdd:g} V",
            f"total cell area               : {self.total_cell_area_lambda2:g} λ²",
        ])
        return "\n".join(lines)


@dataclass(frozen=True)
class EdpSummaryResult(StudyResult):
    """The headline EDP / EDAP summary (abstract + conclusions)."""

    study_name: ClassVar[str] = "edp"

    delay_gain_optimal: float = 0.0
    energy_gain_optimal: float = 0.0
    area_gain: float = 0.0
    edp_gain_optimal: float = 0.0
    edp_gain_single_cnt: float = 0.0
    edp_gain_best: float = 0.0
    edap_gain_optimal: float = 0.0
    paper_edp_gain: float = 0.0
    paper_edap_gain: float = 0.0
    paper_area_saving: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "delay_gain_optimal": self.delay_gain_optimal,
            "energy_gain_optimal": self.energy_gain_optimal,
            "area_gain": self.area_gain,
            "edp_gain_optimal": self.edp_gain_optimal,
            "edp_gain_single_cnt": self.edp_gain_single_cnt,
            "edp_gain_best": self.edp_gain_best,
            "edap_gain_optimal": self.edap_gain_optimal,
            "paper_edp_gain": self.paper_edp_gain,
            "paper_edap_gain": self.paper_edap_gain,
            "paper_area_saving": self.paper_area_saving,
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        return cls(provenance=provenance, **payload)

    def __str__(self) -> str:
        return "\n".join([
            f"delay gain (optimal pitch) : {self.delay_gain_optimal:.2f}x",
            f"energy gain (optimal pitch): {self.energy_gain_optimal:.2f}x",
            f"area gain                  : {self.area_gain:.2f}x",
            f"EDP gain                   : {self.edp_gain_optimal:.2f}x "
            f"(best {self.edp_gain_best:.2f}x, paper >{self.paper_edp_gain:g}x)",
            f"EDAP gain                  : {self.edap_gain_optimal:.2f}x "
            f"(paper ~{self.paper_edap_gain:g}x)",
        ])
