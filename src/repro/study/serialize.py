"""Tagged-JSON serialization for study results.

Study payloads mix plain Python scalars with NumPy scalars and arrays,
tuples, ``bytes``, non-string dictionary keys and (frozen) dataclasses from
across the library.  Plain :mod:`json` either rejects or silently degrades
all of those, so :func:`encode` lowers any payload to a JSON-safe tree of
tagged nodes and :func:`decode` restores it **losslessly** — round-tripping
preserves types and is bit-identical for every numeric value (JSON floats
use ``repr`` shortest-round-trip formatting, which is exact for IEEE-754
doubles).

Tags
----
``{"__tuple__": [...]}``
    a tuple (JSON has only lists);
``{"__bytes__": "<base64>"}``
    raw bytes;
``{"__npscalar__": {"dtype": ..., "value": ...}}``
    a NumPy scalar (``np.float64(3.5)``, ``np.int64(7)``, ``np.bool_``);
``{"__ndarray__": {"dtype": ..., "shape": [...], "data": [...]}}``
    a NumPy array, C-order flattened;
``{"__map__": [[key, value], ...]}``
    a dict whose keys are not all plain strings (or whose string keys look
    like tags themselves — the escape hatch that keeps encoding injective);
``{"__seedseq__": {...}}``
    a :class:`numpy.random.SeedSequence` (entropy, spawn key, pool size);
``{"__dataclass__": "module:QualName", "fields": {...}}``
    any dataclass instance defined under the ``repro`` package.  Decoding
    imports the class by name and reconstructs it field by field; only
    ``repro.*`` classes are accepted, so documents cannot instantiate
    arbitrary types.

>>> import numpy as np
>>> decode(encode((1, np.float64(2.5)))) == (1, np.float64(2.5))
True
>>> decode(encode({4.0: "wide"}))
{4.0: 'wide'}
>>> bool((decode(encode(np.arange(3))) == np.arange(3)).all())
True
"""

from __future__ import annotations

import base64
import dataclasses
import hashlib
import importlib
import json
from typing import Any, Dict

import numpy as np

from ..errors import StudyError

#: Tag keys reserved by the encoder; a plain dict carrying one of these as a
#: string key is escaped through ``__map__`` so decoding stays unambiguous.
_TAGS = (
    "__tuple__", "__bytes__", "__npscalar__", "__ndarray__", "__map__",
    "__seedseq__", "__dataclass__",
)


def encode(obj: Any) -> Any:
    """Lower ``obj`` to a JSON-safe tree of tagged nodes."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": {
            "dtype": str(obj.dtype),
            "shape": list(obj.shape),
            "data": obj.ravel(order="C").tolist(),
        }}
    if isinstance(obj, np.generic):
        return {"__npscalar__": {
            "dtype": obj.dtype.name,
            "value": obj.item(),
        }}
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": base64.b64encode(bytes(obj)).decode("ascii")}
    if isinstance(obj, tuple):
        return {"__tuple__": [encode(item) for item in obj]}
    if isinstance(obj, list):
        return [encode(item) for item in obj]
    if isinstance(obj, np.random.SeedSequence):
        return {"__seedseq__": {
            "entropy": encode(obj.entropy),
            "spawn_key": list(obj.spawn_key),
            "pool_size": obj.pool_size,
            "n_children_spawned": obj.n_children_spawned,
        }}
    if isinstance(obj, dict):
        plain_keys = all(isinstance(key, str) for key in obj)
        collides = plain_keys and any(key in _TAGS for key in obj)
        if plain_keys and not collides:
            return {key: encode(value) for key, value in obj.items()}
        return {"__map__": [[encode(key), encode(value)]
                            for key, value in obj.items()]}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        module = cls.__module__
        if not (module == "repro" or module.startswith("repro.")):
            raise StudyError(
                f"Refusing to serialize non-repro dataclass {module}.{cls.__qualname__}"
            )
        fields = {
            f.name: encode(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.metadata.get("serialize", True)
        }
        return {"__dataclass__": f"{module}:{cls.__qualname__}", "fields": fields}
    raise StudyError(
        f"Cannot serialize object of type {type(obj).__name__}: {obj!r}"
    )


def decode(obj: Any) -> Any:
    """Invert :func:`encode`."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [decode(item) for item in obj]
    if isinstance(obj, dict):
        if "__tuple__" in obj:
            return tuple(decode(item) for item in obj["__tuple__"])
        if "__bytes__" in obj:
            return base64.b64decode(obj["__bytes__"])
        if "__npscalar__" in obj:
            node = obj["__npscalar__"]
            return np.dtype(node["dtype"]).type(node["value"])
        if "__ndarray__" in obj:
            node = obj["__ndarray__"]
            array = np.array(node["data"], dtype=np.dtype(node["dtype"]))
            return array.reshape(node["shape"])
        if "__map__" in obj:
            return {decode(key): decode(value) for key, value in obj["__map__"]}
        if "__seedseq__" in obj:
            node = obj["__seedseq__"]
            return np.random.SeedSequence(
                entropy=decode(node["entropy"]),
                spawn_key=tuple(node["spawn_key"]),
                pool_size=node["pool_size"],
                n_children_spawned=node.get("n_children_spawned", 0),
            )
        if "__dataclass__" in obj:
            return _decode_dataclass(obj)
        return {key: decode(value) for key, value in obj.items()}
    raise StudyError(f"Cannot decode node of type {type(obj).__name__}")


def _decode_dataclass(node: Dict[str, Any]) -> Any:
    path = node["__dataclass__"]
    module_name, _, qualname = path.partition(":")
    if not (module_name == "repro" or module_name.startswith("repro.")):
        raise StudyError(f"Refusing to decode non-repro dataclass {path!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as error:
        raise StudyError(f"Cannot import {module_name!r} for {path!r}") from error
    target: Any = module
    for part in qualname.split("."):
        target = getattr(target, part, None)
        if target is None:
            raise StudyError(f"No class {qualname!r} in {module_name!r}")
    if not (isinstance(target, type) and dataclasses.is_dataclass(target)):
        raise StudyError(f"{path!r} is not a dataclass")
    fields = {name: decode(value) for name, value in node["fields"].items()}
    return target(**fields)


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text of an encoded payload (sorted keys, compact
    separators) — the input to :func:`config_hash`."""
    return json.dumps(encode(obj), sort_keys=True, separators=(",", ":"),
                      allow_nan=True)


def config_hash(obj: Any) -> str:
    """Short, git-describable content hash of a configuration payload.

    >>> config_hash({"trials": 200}) == config_hash({"trials": 200})
    True
    >>> config_hash({"trials": 200}) != config_hash({"trials": 201})
    True
    """
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
    return digest[:16]
