"""The unified sweep abstraction: named axes, corners and seed policy.

Both vectorized engines grew their own sweep conventions — the immunity
Monte Carlo sweeps ``gates × cnts_per_trial × max_angle_deg ×
metallic_fraction`` while the batch transient engine sweeps ``cell × drive
× load × slew × corner``.  :class:`SweepSpec` is the common front end: an
ordered list of named :class:`Axis` objects expanded either as a full
cartesian **grid** (last axis fastest, ``itertools.product`` order) or
**zip**-wise (all axes in lock-step), yielding :class:`Corner` points that
any engine can consume.

Seed policy
-----------
:meth:`SweepSpec.seeds` honours the PR-1 ``SeedLike`` contract established
by :func:`repro.immunity.montecarlo.sweep`: children are spawned under the
reserved ``_SWEEP_SPAWN_KEY`` from a *fresh copy* of the root sequence (so
identical calls are reproducible and never collide with children the
caller spawns), and corners that differ **only** in the axes named by
``share_axes`` share one child — the Figure 2 "same defect populations for
every technique" guarantee, generalised to any axis.

>>> spec = SweepSpec.from_mapping({"vdd": (0.9, 1.0), "tubes": (1, 4)})
>>> [corner.as_dict() for corner in spec.corners()]  # doctest: +NORMALIZE_WHITESPACE
[{'vdd': 0.9, 'tubes': 1}, {'vdd': 0.9, 'tubes': 4},
 {'vdd': 1.0, 'tubes': 1}, {'vdd': 1.0, 'tubes': 4}]
>>> SweepSpec.parse(["vdd=0.8:1.0:3"]).axes[0].values
(0.8, 0.9, 1.0)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import StudyError
from ..immunity.montecarlo import SeedLike, _SWEEP_SPAWN_KEY, _as_seed_sequence


@dataclass(frozen=True)
class Axis:
    """One named sweep dimension and its ordered values."""

    name: str
    values: Tuple[object, ...]

    def __post_init__(self):
        if not self.name:
            raise StudyError("Axis name must be non-empty")
        if not self.values:
            raise StudyError(f"Axis {self.name!r} has no values")
        object.__setattr__(self, "values", tuple(self.values))

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class Corner:
    """One point of an expanded sweep: an ordered (name, value) binding."""

    index: int
    bindings: Tuple[Tuple[str, object], ...]

    def __getitem__(self, name: str) -> object:
        for key, value in self.bindings:
            if key == name:
                return value
        raise KeyError(name)

    def get(self, name: str, default: object = None) -> object:
        try:
            return self[name]
        except KeyError:
            return default

    def __contains__(self, name: str) -> bool:
        return any(key == name for key, _ in self.bindings)

    def as_dict(self) -> Dict[str, object]:
        """The corner as a plain ``{axis: value}`` dict (axis order kept)."""
        return dict(self.bindings)

    def label(self) -> str:
        """A compact, filesystem-friendly label (``vdd=0.9,tubes=4``)."""
        return ",".join(f"{key}={value}" for key, value in self.bindings)


def _parse_scalar(token: str) -> object:
    """``"4"`` -> 4, ``"0.5"`` -> 0.5, anything else stays a string."""
    token = token.strip()
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def parse_axis(text: str) -> Axis:
    """Parse one ``--axis`` specification.

    Three forms are accepted:

    * ``name=start:stop:steps`` — an inclusive linear range
      (``vdd=0.8:1.0:5`` -> 0.8, 0.85, 0.9, 0.95, 1.0);
    * ``name=a,b,c`` — an explicit list (ints, floats or strings);
    * ``name=value`` — a single value.

    >>> parse_axis("cnts=2,4,8").values
    (2, 4, 8)
    >>> parse_axis("technique=compact").values
    ('compact',)
    >>> parse_axis("vdd=0.5:1.0:2").values
    (0.5, 1.0)
    """
    name, sep, spec = text.partition("=")
    name = name.strip()
    if not sep or not name or not spec.strip():
        raise StudyError(
            f"Malformed axis {text!r}; expected name=start:stop:steps, "
            "name=a,b,c or name=value"
        )
    spec = spec.strip()
    if ":" in spec:
        parts = spec.split(":")
        if len(parts) != 3:
            raise StudyError(
                f"Malformed range axis {text!r}; expected name=start:stop:steps"
            )
        try:
            start, stop = float(parts[0]), float(parts[1])
            steps = int(parts[2])
        except ValueError as error:
            raise StudyError(f"Malformed range axis {text!r}") from error
        if steps < 1:
            raise StudyError(f"Axis {name!r} needs >= 1 steps, got {steps}")
        if steps == 1:
            values: Tuple[object, ...] = (start,)
        else:
            values = tuple(
                start + (stop - start) * i / (steps - 1) for i in range(steps)
            )
        return Axis(name, values)
    return Axis(name, tuple(_parse_scalar(token) for token in spec.split(",")))


@dataclass(frozen=True)
class SweepSpec:
    """An ordered set of sweep axes plus the expansion mode.

    ``mode="grid"`` expands the full cartesian product (last axis fastest);
    ``mode="zip"`` walks all axes in lock-step (they must share a length).
    """

    axes: Tuple[Axis, ...]
    mode: str = "grid"

    def __post_init__(self):
        object.__setattr__(self, "axes", tuple(self.axes))
        if self.mode not in ("grid", "zip"):
            raise StudyError(f"mode must be 'grid' or 'zip', got {self.mode!r}")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise StudyError(f"Duplicate axis names in {names}")
        if (self.mode == "zip" and self.axes
                and len({len(axis) for axis in self.axes}) != 1):
            raise StudyError(
                "zip mode needs equal-length axes, got "
                + ", ".join(f"{a.name}[{len(a)}]" for a in self.axes)
            )

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_mapping(cls, axes: Mapping[str, Sequence[object]],
                     mode: str = "grid") -> "SweepSpec":
        """Build a spec from ``{name: values}`` (insertion order kept)."""
        return cls(
            axes=tuple(Axis(name, tuple(values)) for name, values in axes.items()),
            mode=mode,
        )

    @classmethod
    def parse(cls, specs: Sequence[str], mode: str = "grid") -> "SweepSpec":
        """Build a spec from CLI-style ``name=...`` axis strings."""
        if not specs:
            raise StudyError("A sweep needs at least one --axis")
        return cls(axes=tuple(parse_axis(text) for text in specs), mode=mode)

    # -- introspection ---------------------------------------------------------

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    def axis(self, name: str) -> Axis:
        for candidate in self.axes:
            if candidate.name == name:
                return candidate
        raise StudyError(f"No axis {name!r}; axes: {list(self.axis_names)}")

    @property
    def shape(self) -> Tuple[int, ...]:
        """Grid shape (grid mode) or ``(length,)`` (zip mode)."""
        if self.mode == "zip":
            return (len(self.axes[0]),) if self.axes else (0,)
        return tuple(len(axis) for axis in self.axes)

    def __len__(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    # -- expansion -------------------------------------------------------------

    def corners(self) -> List[Corner]:
        """Expand the spec into its ordered list of :class:`Corner` points."""
        names = self.axis_names
        if self.mode == "zip":
            rows = zip(*(axis.values for axis in self.axes))
        else:
            rows = itertools.product(*(axis.values for axis in self.axes))
        return [
            Corner(index=index, bindings=tuple(zip(names, row)))
            for index, row in enumerate(rows)
        ]

    # -- seed policy -----------------------------------------------------------

    def seeds(self, seed: SeedLike,
              share_axes: Sequence[str] = ()) -> List[np.random.SeedSequence]:
        """One child :class:`~numpy.random.SeedSequence` per corner.

        Children are spawned under the reserved ``_SWEEP_SPAWN_KEY`` from a
        fresh copy of ``SeedSequence(seed)`` — the caller's sequence is
        never mutated, identical calls return identical children, and the
        children cannot alias ones the caller spawns directly.  Corners
        whose bindings differ only in the axes listed in ``share_axes``
        receive the *same* child (first-occurrence order), which is how the
        Figure 2 experiment gives every layout technique the same defect
        populations.
        """
        # Sharing on an axis the spec doesn't sweep is a no-op, not an
        # error: every corner then keys on its full binding.
        share = set(share_axes) & set(self.axis_names)
        corners = self.corners()
        root = _as_seed_sequence(seed)
        root = np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=root.spawn_key + (_SWEEP_SPAWN_KEY,),
            pool_size=root.pool_size,
        )
        groups: Dict[Tuple[Tuple[str, object], ...], int] = {}
        group_of_corner: List[int] = []
        for corner in corners:
            key = tuple(
                (name, value) for name, value in corner.bindings
                if name not in share
            )
            if key not in groups:
                groups[key] = len(groups)
            group_of_corner.append(groups[key])
        children = root.spawn(len(groups)) if groups else []
        return [children[group] for group in group_of_corner]

    def seed_for(self, corner: Corner, seed: SeedLike,
                 share_axes: Sequence[str] = ()) -> np.random.SeedSequence:
        """The child sequence :meth:`seeds` assigns to ``corner``."""
        return self.seeds(seed, share_axes=share_axes)[corner.index]
