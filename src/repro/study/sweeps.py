"""The unified sweep driver: one :class:`SweepSpec` over both engines.

``run_sweep_study`` accepts the same axis specification regardless of
which vectorized engine evaluates it:

* ``engine="immunity"`` — the Monte Carlo immunity engine.  Axes:
  ``gate``, ``technique``, ``cnts_per_trial``, ``max_angle_deg``,
  ``metallic_fraction``.  Grid expansion delegates to
  :func:`repro.immunity.montecarlo.sweep`, so the Figure 2 seed contract
  (techniques share defect populations, distinct parameter combinations
  get independent child sequences) holds bit-for-bit; zip expansion runs
  the same contract corner by corner via :meth:`SweepSpec.seeds`.
* ``engine="transient"`` — the batch transient/characterisation engine.
  Axes: ``cell``, ``drive``, ``load_f``, ``slew_s``, ``vdd``,
  ``pitch_nm``.  Grid expansion lowers the whole grid into
  :func:`repro.cells.characterize.characterize_sweep` (one vectorized
  batch per cell); zip expansion characterises each lock-step corner.
* ``engine="circuit"`` — the circuit-level yield/delay/energy study
  (:func:`repro.circuit_study.run_circuit_study`).  Axes: ``circuit``
  (generator spec or Verilog text), ``technique``, ``cnts_per_trial``,
  ``max_angle_deg``, ``metallic_fraction``, ``vdd``, ``pitch_nm``,
  ``draws``.  Each corner is one full circuit study; corners differing
  only in the electrical axes (``vdd``/``pitch_nm``) share one child
  seed, so their defect populations are identical — the circuit-level
  analogue of the Figure 2 technique-sharing contract.

Axes not present in the spec take the engine's fixed defaults, which can
be overridden by keyword (``run_sweep_study(spec, engine="immunity",
gate="NAND3")``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import StudyError
from .results import Provenance, StudyResult
from .spec import Corner, SweepSpec

#: Axes each engine understands, with their fixed-parameter defaults.
IMMUNITY_AXES: Dict[str, object] = {
    "gate": "NAND2",
    "technique": "compact",
    "cnts_per_trial": 4,
    "max_angle_deg": 15.0,
    "metallic_fraction": 0.0,
}
TRANSIENT_AXES: Dict[str, object] = {
    "cell": "INV",
    "drive": 1.0,
    "load_f": 1.0e-15,
    "slew_s": 5.0e-12,
    "vdd": 1.0,
    "pitch_nm": 5.0,
}
CIRCUIT_AXES: Dict[str, object] = {
    "circuit": "adder:4",
    "technique": "compact",
    "cnts_per_trial": 4,
    "max_angle_deg": 15.0,
    "metallic_fraction": 0.0,
    "vdd": 1.0,
    "pitch_nm": 5.0,
    "draws": 2000,
}

#: Electrical axes whose corners share one defect population (child seed)
#: in the circuit engine, mirroring the Figure 2 technique-sharing
#: contract: changing vdd or pitch must not change which defects land.
_CIRCUIT_SHARE_AXES = ("vdd", "pitch_nm")


@dataclass(frozen=True)
class SweepRecord:
    """One evaluated sweep corner: its bindings plus measured metrics."""

    corner: Any                     # Corner
    metrics: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.metrics[key]


@dataclass(frozen=True)
class SweepStudyResult(StudyResult):
    """The typed result of :func:`run_sweep_study`."""

    study_name: ClassVar[str] = "sweep"

    spec: Optional[SweepSpec] = None
    engine: str = ""
    records: Tuple[SweepRecord, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec,
            "engine": self.engine,
            "records": list(self.records),
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        return cls(
            provenance=provenance,
            spec=payload["spec"],
            engine=payload["engine"],
            records=tuple(payload["records"]),
        )

    def metric(self, name: str) -> List[Any]:
        """One metric across all records, in corner order."""
        return [record.metrics[name] for record in self.records]

    def __str__(self) -> str:
        if not self.records:
            return f"empty {self.engine} sweep"
        # Only scalar metrics make table columns; rich objects (e.g. the
        # full MonteCarloResult) stay reachable via record.metrics.
        metric_names = [
            name for name, value in self.records[0].metrics.items()
            if isinstance(value, (bool, int, float, str))
        ]
        width = max(len("corner"),
                    *(len(record.corner.label()) for record in self.records))
        header = f"{'corner':<{width}} " + " ".join(
            f"{name:>16}" for name in metric_names
        )
        lines = [header, "-" * len(header)]
        for record in self.records:
            cells = []
            for name in metric_names:
                value = record.metrics[name]
                if isinstance(value, bool):
                    cells.append(f"{str(value):>16}")
                elif isinstance(value, float):
                    cells.append(f"{value:>16.6g}")
                else:
                    cells.append(f"{value!s:>16}")
            lines.append(f"{record.corner.label():<{width}} " + " ".join(cells))
        return "\n".join(lines)


def _validate_axes(spec: SweepSpec, allowed: Mapping[str, object],
                   engine: str) -> None:
    unknown = [name for name in spec.axis_names if name not in allowed]
    if unknown:
        raise StudyError(
            f"Engine {engine!r} does not understand axes {unknown}; "
            f"supported: {sorted(allowed)}"
        )


def _fixed_values(defaults: Mapping[str, object], spec: SweepSpec,
                  overrides: Mapping[str, object], engine: str) -> Dict[str, object]:
    unknown = [name for name in overrides if name not in defaults]
    if unknown:
        raise StudyError(
            f"Engine {engine!r} does not understand fixed parameters "
            f"{sorted(unknown)}; supported: {sorted(defaults)}"
        )
    fixed = dict(defaults)
    fixed.update(overrides)
    swept = set(spec.axis_names)
    return {name: value for name, value in fixed.items() if name not in swept}


def run_sweep_study(spec: SweepSpec, engine: str = "immunity",
                    trials: int = 200, seed=2009,
                    jobs: Optional[int] = None,
                    backend: Optional[str] = None,
                    cache=None,
                    **fixed) -> SweepStudyResult:
    """Evaluate a :class:`SweepSpec` on one of the vectorized engines.

    ``jobs``/``backend`` route the sweep through the runtime scheduler:
    corners are sharded into contiguous chunks and evaluated over a
    process pool (or threads / serially — see
    :mod:`repro.runtime.scheduler`), with per-corner seeds spawned in the
    parent under the established ``_SWEEP_SPAWN_KEY`` contract, so the
    merged result is **bit-identical** to the serial run for any ``jobs``
    value on either engine.

    ``cache`` plugs the content-addressed result store in (a
    :class:`~repro.runtime.cache.ResultCache`, a path, or ``True`` for
    the default store) at **two granularities**: the whole-study envelope
    (an exact re-run returns the stored typed result without touching the
    engines) and the individual corner (a changed sweep is diffed against
    the persistent corner store and **only the missing corners execute**
    — the delta path that turns an axis-extension re-run from O(grid)
    into O(delta)).  Either way the returned result is bit-identical to a
    cold serial run, and provenance records ``cache="hit"`` / ``"miss"``
    / ``"partial:<hits>/<corners>"``.  Scheduling parameters never enter
    the fingerprints or provenance — they cannot change the result.
    """
    if not isinstance(spec, SweepSpec):
        raise StudyError(f"run_sweep_study needs a SweepSpec, got {type(spec).__name__}")
    if engine not in ("immunity", "transient", "circuit"):
        raise StudyError(
            f"Unknown sweep engine {engine!r}; use 'immunity', 'transient' "
            "or 'circuit'"
        )
    # Imported lazily: the runtime layer sits on top of the study layer.
    from ..obs import trace as obs_trace
    from ..runtime.cache import as_cache, with_cache_status
    from ..runtime.fingerprint import sweep_fingerprint
    from ..runtime.scheduler import resolve_jobs

    store = as_cache(cache)
    if engine in ("immunity", "circuit") and seed is None:
        # seed=None asks for fresh OS entropy — a deliberately
        # nondeterministic run.  Caching it would serve a stale random
        # draw as a "hit", so the cache is bypassed entirely.
        store = None
    with obs_trace.span(f"sweep:{engine}", engine=engine, mode=spec.mode,
                        corners=len(spec.corners()), trials=trials,
                        cached=store is not None):
        key = None
        if store is not None:
            key = sweep_fingerprint(spec, engine, trials, seed, fixed)
            obs_trace.annotate(fingerprint=key)
            cached = store.get(key)
            if cached is not None:
                obs_trace.annotate(cache="hit")
                return with_cache_status(cached, "hit")

        n_jobs = resolve_jobs(jobs)
        status = None
        if store is not None:
            records, status = _run_sweep_delta(
                spec, engine=engine, trials=trials, seed=seed, fixed=fixed,
                store=store, jobs=n_jobs, backend=backend,
            )
        elif engine == "immunity":
            records = _run_immunity(spec, trials=trials, seed=seed,
                                    fixed=fixed, jobs=n_jobs, backend=backend)
        elif engine == "circuit":
            records = _run_circuit(spec, trials=trials, seed=seed,
                                   fixed=fixed, jobs=n_jobs, backend=backend)
        else:
            records = _run_transient(spec, fixed=fixed, jobs=n_jobs,
                                     backend=backend)
        result = SweepStudyResult(
            provenance=Provenance.capture(
                "sweep", engine=engine, seed=seed,
                params={"axes": {axis.name: axis.values
                                 for axis in spec.axes},
                        "mode": spec.mode, "trials": trials, "seed": seed,
                        **fixed},
            ),
            spec=spec,
            engine=engine,
            records=tuple(records),
        )
        if store is not None:
            store.put(key, result)
            result = with_cache_status(result, status or "miss")
            obs_trace.annotate(cache=result.provenance.cache)
        return result


# ---------------------------------------------------------------------------
# Delta recompute over the persistent corner store
# ---------------------------------------------------------------------------

def _sweep_corner_keys(spec: SweepSpec, engine: str, trials: int, seed,
                       fixed: Mapping[str, object]):
    """``(keys, seeds)`` — one corner fingerprint per spec corner, in
    corner order (``seeds`` is ``None`` for the transient engine).

    The key hashes the corner's **fully-resolved** binding (every engine
    axis, swept or fixed), so it is invariant under which axes the spec
    declares, their declaration order, dict-key order and NumPy-vs-Python
    scalar spellings — plus:

    * **immunity**: the corner's pre-spawned child ``SeedSequence``
      (value, not position) and the trial count.  Spawning follows the
      serial paths exactly, so a grid extension that reassigns spawn
      positions changes the hashed seed and correctly misses, while one
      that preserves them (extending the gate axis, or any axis whose
      canonical predecessors are singletons) keeps every old corner's
      address stable.
    * **transient**: the shared per-cell time base
      (:func:`repro.cells.characterize.grid_time_base`) the corner's
      waveform was integrated on.  A grid reshape that moves the time
      base changes every affected address (recompute — exactly what
      bit-identity demands); one that leaves the analytical envelope
      alone keeps the stored corners valid.
    """
    from ..runtime.fingerprint import corner_fingerprint

    corners = spec.corners()

    if engine == "immunity":
        constants = _fixed_values(IMMUNITY_AXES, spec, fixed, "immunity")

        def value_of(corner, name):
            return corner.get(name, constants.get(name))

        seeds = _immunity_corner_seeds(spec, constants, seed)
        keys = [
            corner_fingerprint(
                "immunity",
                {name: value_of(corner, name) for name in IMMUNITY_AXES},
                seed=child,
                trials=trials,
            )
            for corner, child in zip(corners, seeds)
        ]
        return keys, seeds

    if engine == "circuit":
        from ..circuit_study.circuits import resolve_circuit
        from ..runtime.fingerprint import netlist_context

        constants = _fixed_values(CIRCUIT_AXES, spec, fixed, "circuit")

        def value_of(corner, name):
            return corner.get(name, constants.get(name))

        seeds = spec.seeds(seed, share_axes=_CIRCUIT_SHARE_AXES)
        # The corner's circuit enters the address through the *resolved*
        # netlist structure (the context), not through how it was spelled
        # — so a generator spec and the Verilog text it round-trips
        # through share corners, while any rewiring misses.  Resolved
        # once per distinct circuit value, not per corner.
        contexts: Dict[object, object] = {}
        keys = []
        for corner, child in zip(corners, seeds):
            circuit = value_of(corner, "circuit")
            if circuit not in contexts:
                contexts[circuit] = netlist_context(resolve_circuit(circuit)[0])
            keys.append(corner_fingerprint(
                "circuit",
                {name: value_of(corner, name) for name in CIRCUIT_AXES
                 if name != "circuit"},
                seed=child,
                trials=trials,
                context=contexts[circuit],
            ))
        return keys, seeds

    from ..cells.characterize import cnfet_technology, grid_time_base

    constants = _fixed_values(TRANSIENT_AXES, spec, fixed, "transient")

    def value_of(corner, name):
        return corner.get(name, constants.get(name))

    contexts: List[Tuple[object, ...]] = []
    if spec.mode == "grid":
        # The whole per-cell grid shares one time base, so every corner of
        # a cell carries the same context — computed once per cell.
        drives = _axis_or_constant(spec, constants, "drive")
        loads = _axis_or_constant(spec, constants, "load_f")
        slews = _axis_or_constant(spec, constants, "slew_s")
        vdds = _axis_or_constant(spec, constants, "vdd")
        pitches = _axis_or_constant(spec, constants, "pitch_nm")
        corner_techs = {
            _corner_name(vdd, pitch): cnfet_technology(vdd=vdd, pitch_nm=pitch)
            for vdd in vdds for pitch in pitches
        }
        by_cell: Dict[str, Tuple[object, ...]] = {}
        for corner in corners:
            cell = str(value_of(corner, "cell"))
            if cell not in by_cell:
                by_cell[cell] = grid_time_base(
                    cell, drives, loads, slews, corner_techs,
                )
            contexts.append(by_cell[cell])
    else:
        # Zip corners are evaluated as their own one-point grids, so the
        # context is each corner's private time base.
        for corner in corners:
            vdd = value_of(corner, "vdd")
            pitch = value_of(corner, "pitch_nm")
            contexts.append(grid_time_base(
                str(value_of(corner, "cell")),
                (value_of(corner, "drive"),),
                (value_of(corner, "load_f"),),
                (value_of(corner, "slew_s"),),
                {_corner_name(vdd, pitch):
                 cnfet_technology(vdd=vdd, pitch_nm=pitch)},
            ))

    keys = [
        corner_fingerprint(
            "transient",
            {name: value_of(corner, name) for name in TRANSIENT_AXES},
            context=context,
        )
        for corner, context in zip(corners, contexts)
    ]
    return keys, None


def _run_sweep_delta(spec: SweepSpec, engine: str, trials: int, seed,
                     fixed: Mapping[str, object], store,
                     jobs: int, backend: Optional[str]):
    """Diff the requested grid against the corner store, execute only the
    missing corners, merge.  Returns ``(records, status)`` with records
    bit-identical to a cold serial run."""
    from ..obs import trace as obs_trace
    from ..runtime.scheduler import plan_delta

    if engine == "immunity":
        _validate_axes(spec, IMMUNITY_AXES, "immunity")
    elif engine == "circuit":
        _validate_axes(spec, CIRCUIT_AXES, "circuit")
    else:
        _validate_axes(spec, TRANSIENT_AXES, "transient")

    corners = spec.corners()
    with obs_trace.span("sweep.plan", corners=len(corners)):
        keys, seeds = _sweep_corner_keys(spec, engine, trials, seed, fixed)
        cached = store.get_corners(keys)
        plan = plan_delta(keys, set(cached))
        obs_trace.annotate(hits=plan.hits, misses=plan.misses,
                           status=plan.status)
    from ..obs import metrics as obs_metrics
    obs_metrics.registry().inc("sweep.corners_planned", plan.total)
    obs_metrics.registry().inc("sweep.corners_cached", plan.hits)
    obs_metrics.registry().inc("sweep.corners_executed", plan.misses)

    metrics_by_index: Dict[int, Dict[str, Any]] = {
        index: cached[keys[index]] for index in plan.hit_indices
    }
    if plan.miss_indices:
        with obs_trace.span("sweep.execute", corners=plan.misses,
                            engine=engine):
            if engine == "immunity":
                constants = _fixed_values(IMMUNITY_AXES, spec, fixed,
                                          "immunity")
                fresh = _execute_immunity_corners(
                    spec, constants, plan.miss_indices, seeds, trials,
                    jobs, backend,
                )
            elif engine == "circuit":
                constants = _fixed_values(CIRCUIT_AXES, spec, fixed,
                                          "circuit")
                fresh = _execute_circuit_corners(
                    spec, constants, plan.miss_indices, seeds, trials,
                    jobs, backend,
                )
            else:
                constants = _fixed_values(TRANSIENT_AXES, spec, fixed,
                                          "transient")
                fresh = _execute_transient_corners(
                    spec, constants, plan.miss_indices, jobs, backend,
                )
            for index, metrics in zip(plan.miss_indices, fresh):
                metrics_by_index[index] = metrics
                store.put_corner(keys[index], metrics, engine=engine)

    records = [
        SweepRecord(corner=corner, metrics=metrics_by_index[index])
        for index, corner in enumerate(corners)
    ]
    return records, plan.status


# ---------------------------------------------------------------------------
# Immunity engine
# ---------------------------------------------------------------------------

def _immunity_metrics(result) -> Dict[str, Any]:
    return {
        "failure_rate": result.failure_rate,
        "failures": result.failures,
        "trials": result.trials,
        "immune": result.immune,
        "result": result,
    }


def _axis_or_constant(spec: SweepSpec, constants: Mapping[str, object],
                      name: str) -> Tuple[object, ...]:
    if name in spec.axis_names:
        return tuple(spec.axis(name).values)
    return (constants[name],)


def _immunity_corner_seeds(spec: SweepSpec, constants: Mapping[str, object],
                           seed) -> List[np.random.SeedSequence]:
    """One child :class:`~numpy.random.SeedSequence` per corner, exactly
    as the serial paths assign them.

    Grid mode replicates :func:`repro.immunity.montecarlo.sweep`'s
    contract: children are spawned under the reserved ``_SWEEP_SPAWN_KEY``
    in ``(gate, cnts, angle, metallic)`` product order, and corners
    differing only in ``technique`` share one child.  Zip mode is
    :meth:`SweepSpec.seeds` with ``share_axes=("technique",)``.  Spawning
    happens in the parent, per corner — never per worker — which is what
    makes sharded execution bit-identical to serial.
    """
    if spec.mode != "grid":
        return spec.seeds(seed, share_axes=("technique",))
    from ..immunity.montecarlo import _SWEEP_SPAWN_KEY, _as_seed_sequence

    combos = list(itertools.product(
        _axis_or_constant(spec, constants, "gate"),
        _axis_or_constant(spec, constants, "cnts_per_trial"),
        _axis_or_constant(spec, constants, "max_angle_deg"),
        _axis_or_constant(spec, constants, "metallic_fraction"),
    ))
    root = _as_seed_sequence(seed)
    root = np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=root.spawn_key + (_SWEEP_SPAWN_KEY,),
        pool_size=root.pool_size,
    )
    by_combo = dict(zip(combos, root.spawn(len(combos))))

    def value_of(corner, name):
        return corner.get(name, constants.get(name))

    return [
        by_combo[(value_of(corner, "gate"),
                  value_of(corner, "cnts_per_trial"),
                  value_of(corner, "max_angle_deg"),
                  value_of(corner, "metallic_fraction"))]
        for corner in spec.corners()
    ]


@dataclass(frozen=True)
class _ImmunityShard:
    """A picklable chunk of immunity corners with pre-spawned seeds."""

    corners: Tuple[Corner, ...]
    values: Tuple[Tuple[Tuple[str, object], ...], ...]  # resolved bindings
    seeds: Tuple[np.random.SeedSequence, ...]
    trials: int


def _run_immunity_shard(shard: _ImmunityShard) -> List[Dict[str, Any]]:
    """Worker: evaluate one shard's corners (module-level for pickling)."""
    from ..core.standard_cell import assemble_cell
    from ..immunity.montecarlo import run_immunity_trials
    from ..logic.functions import standard_gate

    metrics = []
    for bindings, child in zip(shard.values, shard.seeds):
        values = dict(bindings)
        cell = assemble_cell(
            standard_gate(values["gate"]), technique=values["technique"]
        )
        result = run_immunity_trials(
            cell,
            trials=shard.trials,
            cnts_per_trial=values["cnts_per_trial"],
            max_angle_deg=values["max_angle_deg"],
            metallic_fraction=values["metallic_fraction"],
            seed=child,
        )
        metrics.append(_immunity_metrics(result))
    return metrics


def _execute_immunity_corners(spec: SweepSpec, constants: Mapping[str, object],
                              indices: Sequence[int],
                              seeds: Sequence[np.random.SeedSequence],
                              trials: int, jobs: int,
                              backend: Optional[str]) -> List[Dict[str, Any]]:
    """Evaluate the corners at ``indices`` (with their pre-spawned seeds)
    through the sharded immunity machinery; metrics in ``indices``
    order."""
    from ..runtime.scheduler import plan_shards, run_tasks

    def value_of(corner, name):
        return corner.get(name, constants.get(name))

    corners = spec.corners()
    selected = [corners[index] for index in indices]
    selected_seeds = [seeds[index] for index in indices]
    resolved = [
        tuple((name, value_of(corner, name)) for name in IMMUNITY_AXES)
        for corner in selected
    ]
    shards = [
        _ImmunityShard(
            corners=tuple(selected[start:stop]),
            values=tuple(resolved[start:stop]),
            seeds=tuple(selected_seeds[start:stop]),
            trials=trials,
        )
        for start, stop in plan_shards(len(selected), jobs)
    ]
    per_shard = run_tasks(_run_immunity_shard, shards, jobs=jobs,
                          backend=backend)
    return [metrics for chunk in per_shard for metrics in chunk]


def _run_immunity_sharded(spec: SweepSpec, trials: int, seed,
                          constants: Mapping[str, object],
                          jobs: int, backend: Optional[str]) -> List[SweepRecord]:
    corners = spec.corners()
    seeds = _immunity_corner_seeds(spec, constants, seed)
    metrics = _execute_immunity_corners(spec, constants, range(len(corners)),
                                        seeds, trials, jobs, backend)
    return [SweepRecord(corner=corner, metrics=corner_metrics)
            for corner, corner_metrics in zip(corners, metrics)]


def _run_immunity(spec: SweepSpec, trials: int, seed,
                  fixed: Mapping[str, object], jobs: int = 1,
                  backend: Optional[str] = None) -> List[SweepRecord]:
    from ..immunity.montecarlo import sweep as immunity_sweep

    _validate_axes(spec, IMMUNITY_AXES, "immunity")
    constants = _fixed_values(IMMUNITY_AXES, spec, fixed, "immunity")

    if jobs > 1:
        return _run_immunity_sharded(spec, trials, seed, constants,
                                     jobs, backend)

    def value_of(corner, name):
        return corner.get(name, constants.get(name))

    if spec.mode == "grid":
        # Lower the grid straight onto the canonical Figure 2 sweep so its
        # seed contract holds bit-for-bit, then re-order the points back
        # into this spec's corner order.
        def axis_values(name) -> Sequence[object]:
            if name in spec.axis_names:
                return spec.axis(name).values
            return (constants[name],)

        points = immunity_sweep(
            gates=tuple(axis_values("gate")),
            techniques=tuple(axis_values("technique")),
            cnts_per_trial=tuple(axis_values("cnts_per_trial")),
            max_angle_deg=tuple(axis_values("max_angle_deg")),
            metallic_fraction=tuple(axis_values("metallic_fraction")),
            trials=trials,
            seed=seed,
        )
        by_key = {
            (point.gate, point.technique, point.cnts_per_trial,
             point.max_angle_deg, point.metallic_fraction): point
            for point in points
        }
        records = []
        for corner in spec.corners():
            key = (value_of(corner, "gate"), value_of(corner, "technique"),
                   value_of(corner, "cnts_per_trial"),
                   value_of(corner, "max_angle_deg"),
                   value_of(corner, "metallic_fraction"))
            records.append(
                SweepRecord(corner=corner,
                            metrics=_immunity_metrics(by_key[key].result))
            )
        return records

    # zip mode: evaluate corner by corner; corners differing only in
    # technique share one child sequence (the Figure 2 contract).
    from ..immunity.montecarlo import run_immunity_trials
    from ..core.standard_cell import assemble_cell
    from ..logic.functions import standard_gate

    seeds = spec.seeds(seed, share_axes=("technique",))
    records = []
    for corner, child in zip(spec.corners(), seeds):
        cell = assemble_cell(
            standard_gate(value_of(corner, "gate")),
            technique=value_of(corner, "technique"),
        )
        result = run_immunity_trials(
            cell,
            trials=trials,
            cnts_per_trial=value_of(corner, "cnts_per_trial"),
            max_angle_deg=value_of(corner, "max_angle_deg"),
            metallic_fraction=value_of(corner, "metallic_fraction"),
            seed=child,
        )
        records.append(SweepRecord(corner=corner,
                                   metrics=_immunity_metrics(result)))
    return records


# ---------------------------------------------------------------------------
# Circuit engine
# ---------------------------------------------------------------------------

def _circuit_metrics(result) -> Dict[str, Any]:
    """The scalar corner payload of one circuit study (the full typed
    result stays reachable through ``run_study("circuit", ...)``; sweep
    corners store only what the corner table plots)."""
    return {
        "functional_yield": result.functional_yield,
        "monte_carlo_yield": result.monte_carlo_yield,
        "critical_path_delay_s": result.critical_path_delay_s,
        "total_energy_per_cycle_j": result.total_energy_per_cycle_j,
        "total_cell_area_lambda2": result.total_cell_area_lambda2,
        "instances": result.instances,
        "unique_cells": result.unique_cells,
    }


@dataclass(frozen=True)
class _CircuitShard:
    """A picklable chunk of circuit corners with pre-spawned seeds."""

    values: Tuple[Tuple[Tuple[str, object], ...], ...]  # resolved bindings
    seeds: Tuple[np.random.SeedSequence, ...]
    trials: int


def _run_circuit_shard(shard: _CircuitShard) -> List[Dict[str, Any]]:
    """Worker: evaluate one shard's circuit corners (module-level for
    pickling).  Each corner is a full, uncached, serial inner study —
    parallelism and caching belong to the sweep driver."""
    from ..circuit_study import study as circuit_engine

    metrics = []
    for bindings, child in zip(shard.values, shard.seeds):
        values = dict(bindings)
        result = circuit_engine.run_circuit_study(
            values["circuit"],
            trials=shard.trials,
            seed=child,
            cnts_per_trial=values["cnts_per_trial"],
            max_angle_deg=values["max_angle_deg"],
            metallic_fraction=values["metallic_fraction"],
            technique=values["technique"],
            vdd=values["vdd"],
            pitch_nm=values["pitch_nm"],
            draws=int(values["draws"]),
        )
        metrics.append(_circuit_metrics(result))
    return metrics


def _execute_circuit_corners(spec: SweepSpec, constants: Mapping[str, object],
                             indices: Sequence[int],
                             seeds: Sequence[np.random.SeedSequence],
                             trials: int, jobs: int,
                             backend: Optional[str]) -> List[Dict[str, Any]]:
    """Evaluate the circuit corners at ``indices`` (with their pre-spawned
    seeds) through the sharded machinery; metrics in ``indices`` order."""
    from ..runtime.scheduler import plan_shards, run_tasks

    def value_of(corner, name):
        return corner.get(name, constants.get(name))

    corners = spec.corners()
    selected = [corners[index] for index in indices]
    selected_seeds = [seeds[index] for index in indices]
    resolved = [
        tuple((name, value_of(corner, name)) for name in CIRCUIT_AXES)
        for corner in selected
    ]
    shards = [
        _CircuitShard(
            values=tuple(resolved[start:stop]),
            seeds=tuple(selected_seeds[start:stop]),
            trials=trials,
        )
        for start, stop in plan_shards(len(selected), jobs)
    ]
    per_shard = run_tasks(_run_circuit_shard, shards, jobs=jobs,
                          backend=backend)
    return [metrics for chunk in per_shard for metrics in chunk]


def _run_circuit(spec: SweepSpec, trials: int, seed,
                 fixed: Mapping[str, object], jobs: int = 1,
                 backend: Optional[str] = None) -> List[SweepRecord]:
    _validate_axes(spec, CIRCUIT_AXES, "circuit")
    constants = _fixed_values(CIRCUIT_AXES, spec, fixed, "circuit")
    corners = spec.corners()
    seeds = spec.seeds(seed, share_axes=_CIRCUIT_SHARE_AXES)
    metrics = _execute_circuit_corners(spec, constants, range(len(corners)),
                                       seeds, trials, jobs, backend)
    return [SweepRecord(corner=corner, metrics=corner_metrics)
            for corner, corner_metrics in zip(corners, metrics)]


# ---------------------------------------------------------------------------
# Transient / characterisation engine
# ---------------------------------------------------------------------------

def _transient_metrics(point) -> Dict[str, Any]:
    return {
        "delay_rise_s": point.delay_rise_s,
        "delay_fall_s": point.delay_fall_s,
        "worst_delay_s": point.worst_delay_s,
        "energy_per_cycle_j": point.energy_per_cycle_j,
        "vdd": point.vdd,
    }


def _corner_name(vdd: float, pitch_nm: float) -> str:
    return f"v{vdd:g}_p{pitch_nm:g}"


@dataclass(frozen=True)
class _TransientGridShard:
    """A picklable slice of one cell's characterisation grid.

    Workers re-plan the **full** ``(drive, load, slew, corner)`` grid —
    cheap, analytical — so the shared time base matches the serial batch
    exactly, then integrate only ``case_indices``
    (:func:`repro.cells.characterize.characterize_cases`)."""

    cell: str
    case_indices: Tuple[int, ...]
    drives: Tuple[object, ...]
    loads: Tuple[object, ...]
    slews: Tuple[object, ...]
    corner_grid: Tuple[Tuple[object, object], ...]   # (vdd, pitch_nm)


def _run_transient_grid_shard(shard: _TransientGridShard) -> List[Dict[str, Any]]:
    """Worker: integrate one grid shard (module-level for pickling)."""
    from ..cells.characterize import characterize_cases, cnfet_technology

    corners = {
        _corner_name(vdd, pitch): cnfet_technology(vdd=vdd, pitch_nm=pitch)
        for vdd, pitch in shard.corner_grid
    }
    points = characterize_cases(
        shard.cell, shard.case_indices,
        drive_strengths=shard.drives,
        load_capacitances_f=shard.loads,
        input_slews_s=shard.slews,
        corners=corners,
    )
    return [_transient_metrics(point) for point in points]


@dataclass(frozen=True)
class _TransientZipShard:
    """A picklable chunk of lock-step corners, each its own tiny grid —
    exactly the serial zip path's evaluation unit."""

    cases: Tuple[Tuple[str, object, object, object, object, object], ...]


def _run_transient_zip_shard(shard: _TransientZipShard) -> List[Dict[str, Any]]:
    """Worker: evaluate one zip shard (module-level for pickling)."""
    from ..cells.characterize import characterize_sweep, cnfet_technology

    metrics = []
    for cell, drive, load, slew, vdd, pitch in shard.cases:
        name = _corner_name(vdd, pitch)
        sweep = characterize_sweep(
            gate_names=(cell,),
            drive_strengths=(drive,),
            load_capacitances_f=(load,),
            input_slews_s=(slew,),
            corners={name: cnfet_technology(vdd=vdd, pitch_nm=pitch)},
        )
        metrics.append(_transient_metrics(sweep.points[0]))
    return metrics


def _execute_transient_corners(spec: SweepSpec,
                               constants: Mapping[str, object],
                               indices: Sequence[int], jobs: int,
                               backend: Optional[str]) -> List[Dict[str, Any]]:
    """Evaluate the corners at ``indices`` through the sharded transient
    machinery; metrics in ``indices`` order.

    Grid-mode shards still re-plan the **full** per-cell grid and
    integrate only their cases, so a subset run — a delta recompute as
    much as a parallel shard — lands on the same shared time base and
    bit-identical waveforms as the cold batch.
    """
    from ..runtime.scheduler import plan_shards, run_tasks, shard_indices

    def value_of(corner, name):
        return corner.get(name, constants.get(name))

    corners_list = spec.corners()
    selected = [corners_list[index] for index in indices]

    if spec.mode == "zip":
        shards = [
            _TransientZipShard(cases=tuple(
                (str(value_of(c, "cell")), value_of(c, "drive"),
                 value_of(c, "load_f"), value_of(c, "slew_s"),
                 value_of(c, "vdd"), value_of(c, "pitch_nm"))
                for c in selected[start:stop]
            ))
            for start, stop in plan_shards(len(selected), jobs)
        ]
        per_shard = run_tasks(_run_transient_zip_shard, shards, jobs=jobs,
                              backend=backend)
        return [metrics for chunk in per_shard for metrics in chunk]

    drives = _axis_or_constant(spec, constants, "drive")
    loads = _axis_or_constant(spec, constants, "load_f")
    slews = _axis_or_constant(spec, constants, "slew_s")
    vdds = _axis_or_constant(spec, constants, "vdd")
    pitches = _axis_or_constant(spec, constants, "pitch_nm")
    corner_grid = tuple((vdd, pitch) for vdd in vdds for pitch in pitches)

    # Selected corner -> (cell, flat index into the per-cell product
    # grid), grouped by cell because the shared time base is per cell.
    by_cell: Dict[str, List[Tuple[int, int]]] = {}
    for position, corner in enumerate(selected):
        cell = str(value_of(corner, "cell"))
        flat = np.ravel_multi_index(
            (
                drives.index(value_of(corner, "drive")),
                loads.index(value_of(corner, "load_f")),
                slews.index(value_of(corner, "slew_s")),
                vdds.index(value_of(corner, "vdd")) * len(pitches)
                + pitches.index(value_of(corner, "pitch_nm")),
            ),
            (len(drives), len(loads), len(slews), len(corner_grid)),
        )
        by_cell.setdefault(cell, []).append((position, int(flat)))

    tasks: List[_TransientGridShard] = []
    owners: List[List[int]] = []
    for cell, pairs in by_cell.items():
        # One shard per worker, no oversubscription: each transient shard
        # re-plans the whole per-cell grid (O(grid), unlike the O(slice)
        # immunity shards), so extra shards multiply planning work.
        for start, stop in shard_indices(len(pairs), jobs):
            chunk = pairs[start:stop]
            tasks.append(_TransientGridShard(
                cell=cell,
                case_indices=tuple(flat for _, flat in chunk),
                drives=drives, loads=loads, slews=slews,
                corner_grid=corner_grid,
            ))
            owners.append([position for position, _ in chunk])
    per_shard = run_tasks(_run_transient_grid_shard, tasks, jobs=jobs,
                          backend=backend)
    flat_metrics: List[Optional[Dict[str, Any]]] = [None] * len(selected)
    for owner, metrics_list in zip(owners, per_shard):
        for position, metrics in zip(owner, metrics_list):
            flat_metrics[position] = metrics
    return flat_metrics


def _run_transient_sharded(spec: SweepSpec, constants: Mapping[str, object],
                           jobs: int, backend: Optional[str]) -> List[SweepRecord]:
    corners_list = spec.corners()
    metrics = _execute_transient_corners(spec, constants,
                                         range(len(corners_list)),
                                         jobs, backend)
    return [SweepRecord(corner=corner, metrics=corner_metrics)
            for corner, corner_metrics in zip(corners_list, metrics)]


def _run_transient(spec: SweepSpec,
                   fixed: Mapping[str, object], jobs: int = 1,
                   backend: Optional[str] = None) -> List[SweepRecord]:
    from ..cells.characterize import characterize_sweep, cnfet_technology

    _validate_axes(spec, TRANSIENT_AXES, "transient")
    constants = _fixed_values(TRANSIENT_AXES, spec, fixed, "transient")

    if jobs > 1:
        return _run_transient_sharded(spec, constants, jobs, backend)

    def value_of(corner, name):
        return corner.get(name, constants.get(name))

    def axis_values(name) -> Tuple[object, ...]:
        if name in spec.axis_names:
            return tuple(spec.axis(name).values)
        return (constants[name],)

    if spec.mode == "grid":
        corners = {
            _corner_name(vdd, pitch): cnfet_technology(vdd=vdd, pitch_nm=pitch)
            for vdd in axis_values("vdd")
            for pitch in axis_values("pitch_nm")
        }
        sweep = characterize_sweep(
            gate_names=tuple(axis_values("cell")),
            drive_strengths=tuple(axis_values("drive")),
            load_capacitances_f=tuple(axis_values("load_f")),
            input_slews_s=tuple(axis_values("slew_s")),
            corners=corners,
        )
        records = []
        for corner in spec.corners():
            point = sweep.point(
                str(value_of(corner, "cell")),
                value_of(corner, "drive"),
                value_of(corner, "load_f"),
                value_of(corner, "slew_s"),
                _corner_name(value_of(corner, "vdd"),
                             value_of(corner, "pitch_nm")),
            )
            records.append(SweepRecord(corner=corner,
                                       metrics=_transient_metrics(point)))
        return records

    records = []
    for corner in spec.corners():
        vdd = value_of(corner, "vdd")
        pitch = value_of(corner, "pitch_nm")
        name = _corner_name(vdd, pitch)
        sweep = characterize_sweep(
            gate_names=(str(value_of(corner, "cell")),),
            drive_strengths=(value_of(corner, "drive"),),
            load_capacitances_f=(value_of(corner, "load_f"),),
            input_slews_s=(value_of(corner, "slew_s"),),
            corners={name: cnfet_technology(vdd=vdd, pitch_nm=pitch)},
        )
        records.append(SweepRecord(corner=corner,
                                   metrics=_transient_metrics(sweep.points[0])))
    return records
