"""The unified sweep driver: one :class:`SweepSpec` over both engines.

``run_sweep_study`` accepts the same axis specification regardless of
which vectorized engine evaluates it:

* ``engine="immunity"`` — the Monte Carlo immunity engine.  Axes:
  ``gate``, ``technique``, ``cnts_per_trial``, ``max_angle_deg``,
  ``metallic_fraction``.  Grid expansion delegates to
  :func:`repro.immunity.montecarlo.sweep`, so the Figure 2 seed contract
  (techniques share defect populations, distinct parameter combinations
  get independent child sequences) holds bit-for-bit; zip expansion runs
  the same contract corner by corner via :meth:`SweepSpec.seeds`.
* ``engine="transient"`` — the batch transient/characterisation engine.
  Axes: ``cell``, ``drive``, ``load_f``, ``slew_s``, ``vdd``,
  ``pitch_nm``.  Grid expansion lowers the whole grid into
  :func:`repro.cells.characterize.characterize_sweep` (one vectorized
  batch per cell); zip expansion characterises each lock-step corner.

Axes not present in the spec take the engine's fixed defaults, which can
be overridden by keyword (``run_sweep_study(spec, engine="immunity",
gate="NAND3")``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import StudyError
from .results import Provenance, StudyResult
from .spec import SweepSpec

#: Axes each engine understands, with their fixed-parameter defaults.
IMMUNITY_AXES: Dict[str, object] = {
    "gate": "NAND2",
    "technique": "compact",
    "cnts_per_trial": 4,
    "max_angle_deg": 15.0,
    "metallic_fraction": 0.0,
}
TRANSIENT_AXES: Dict[str, object] = {
    "cell": "INV",
    "drive": 1.0,
    "load_f": 1.0e-15,
    "slew_s": 5.0e-12,
    "vdd": 1.0,
    "pitch_nm": 5.0,
}


@dataclass(frozen=True)
class SweepRecord:
    """One evaluated sweep corner: its bindings plus measured metrics."""

    corner: Any                     # Corner
    metrics: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.metrics[key]


@dataclass(frozen=True)
class SweepStudyResult(StudyResult):
    """The typed result of :func:`run_sweep_study`."""

    study_name: ClassVar[str] = "sweep"

    spec: Optional[SweepSpec] = None
    engine: str = ""
    records: Tuple[SweepRecord, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec,
            "engine": self.engine,
            "records": list(self.records),
        }

    @classmethod
    def from_payload(cls, payload, provenance):
        return cls(
            provenance=provenance,
            spec=payload["spec"],
            engine=payload["engine"],
            records=tuple(payload["records"]),
        )

    def metric(self, name: str) -> List[Any]:
        """One metric across all records, in corner order."""
        return [record.metrics[name] for record in self.records]

    def __str__(self) -> str:
        if not self.records:
            return f"empty {self.engine} sweep"
        # Only scalar metrics make table columns; rich objects (e.g. the
        # full MonteCarloResult) stay reachable via record.metrics.
        metric_names = [
            name for name, value in self.records[0].metrics.items()
            if isinstance(value, (bool, int, float, str))
        ]
        width = max(len("corner"),
                    *(len(record.corner.label()) for record in self.records))
        header = f"{'corner':<{width}} " + " ".join(
            f"{name:>16}" for name in metric_names
        )
        lines = [header, "-" * len(header)]
        for record in self.records:
            cells = []
            for name in metric_names:
                value = record.metrics[name]
                if isinstance(value, bool):
                    cells.append(f"{str(value):>16}")
                elif isinstance(value, float):
                    cells.append(f"{value:>16.6g}")
                else:
                    cells.append(f"{value!s:>16}")
            lines.append(f"{record.corner.label():<{width}} " + " ".join(cells))
        return "\n".join(lines)


def _validate_axes(spec: SweepSpec, allowed: Mapping[str, object],
                   engine: str) -> None:
    unknown = [name for name in spec.axis_names if name not in allowed]
    if unknown:
        raise StudyError(
            f"Engine {engine!r} does not understand axes {unknown}; "
            f"supported: {sorted(allowed)}"
        )


def _fixed_values(defaults: Mapping[str, object], spec: SweepSpec,
                  overrides: Mapping[str, object], engine: str) -> Dict[str, object]:
    unknown = [name for name in overrides if name not in defaults]
    if unknown:
        raise StudyError(
            f"Engine {engine!r} does not understand fixed parameters "
            f"{sorted(unknown)}; supported: {sorted(defaults)}"
        )
    fixed = dict(defaults)
    fixed.update(overrides)
    swept = set(spec.axis_names)
    return {name: value for name, value in fixed.items() if name not in swept}


def run_sweep_study(spec: SweepSpec, engine: str = "immunity",
                    trials: int = 200, seed=2009,
                    **fixed) -> SweepStudyResult:
    """Evaluate a :class:`SweepSpec` on one of the vectorized engines."""
    if not isinstance(spec, SweepSpec):
        raise StudyError(f"run_sweep_study needs a SweepSpec, got {type(spec).__name__}")
    if engine == "immunity":
        records = _run_immunity(spec, trials=trials, seed=seed, fixed=fixed)
    elif engine == "transient":
        records = _run_transient(spec, fixed=fixed)
    else:
        raise StudyError(
            f"Unknown sweep engine {engine!r}; use 'immunity' or 'transient'"
        )
    return SweepStudyResult(
        provenance=Provenance.capture(
            "sweep", engine=engine, seed=seed,
            params={"axes": {axis.name: axis.values for axis in spec.axes},
                    "mode": spec.mode, "trials": trials, "seed": seed,
                    **fixed},
        ),
        spec=spec,
        engine=engine,
        records=tuple(records),
    )


# ---------------------------------------------------------------------------
# Immunity engine
# ---------------------------------------------------------------------------

def _immunity_metrics(result) -> Dict[str, Any]:
    return {
        "failure_rate": result.failure_rate,
        "failures": result.failures,
        "trials": result.trials,
        "immune": result.immune,
        "result": result,
    }


def _run_immunity(spec: SweepSpec, trials: int, seed,
                  fixed: Mapping[str, object]) -> List[SweepRecord]:
    from ..immunity.montecarlo import sweep as immunity_sweep

    _validate_axes(spec, IMMUNITY_AXES, "immunity")
    constants = _fixed_values(IMMUNITY_AXES, spec, fixed, "immunity")

    def value_of(corner, name):
        return corner.get(name, constants.get(name))

    if spec.mode == "grid":
        # Lower the grid straight onto the canonical Figure 2 sweep so its
        # seed contract holds bit-for-bit, then re-order the points back
        # into this spec's corner order.
        def axis_values(name) -> Sequence[object]:
            if name in spec.axis_names:
                return spec.axis(name).values
            return (constants[name],)

        points = immunity_sweep(
            gates=tuple(axis_values("gate")),
            techniques=tuple(axis_values("technique")),
            cnts_per_trial=tuple(axis_values("cnts_per_trial")),
            max_angle_deg=tuple(axis_values("max_angle_deg")),
            metallic_fraction=tuple(axis_values("metallic_fraction")),
            trials=trials,
            seed=seed,
        )
        by_key = {
            (point.gate, point.technique, point.cnts_per_trial,
             point.max_angle_deg, point.metallic_fraction): point
            for point in points
        }
        records = []
        for corner in spec.corners():
            key = (value_of(corner, "gate"), value_of(corner, "technique"),
                   value_of(corner, "cnts_per_trial"),
                   value_of(corner, "max_angle_deg"),
                   value_of(corner, "metallic_fraction"))
            records.append(
                SweepRecord(corner=corner,
                            metrics=_immunity_metrics(by_key[key].result))
            )
        return records

    # zip mode: evaluate corner by corner; corners differing only in
    # technique share one child sequence (the Figure 2 contract).
    from ..immunity.montecarlo import run_immunity_trials
    from ..core.standard_cell import assemble_cell
    from ..logic.functions import standard_gate

    seeds = spec.seeds(seed, share_axes=("technique",))
    records = []
    for corner, child in zip(spec.corners(), seeds):
        cell = assemble_cell(
            standard_gate(value_of(corner, "gate")),
            technique=value_of(corner, "technique"),
        )
        result = run_immunity_trials(
            cell,
            trials=trials,
            cnts_per_trial=value_of(corner, "cnts_per_trial"),
            max_angle_deg=value_of(corner, "max_angle_deg"),
            metallic_fraction=value_of(corner, "metallic_fraction"),
            seed=child,
        )
        records.append(SweepRecord(corner=corner,
                                   metrics=_immunity_metrics(result)))
    return records


# ---------------------------------------------------------------------------
# Transient / characterisation engine
# ---------------------------------------------------------------------------

def _transient_metrics(point) -> Dict[str, Any]:
    return {
        "delay_rise_s": point.delay_rise_s,
        "delay_fall_s": point.delay_fall_s,
        "worst_delay_s": point.worst_delay_s,
        "energy_per_cycle_j": point.energy_per_cycle_j,
        "vdd": point.vdd,
    }


def _corner_name(vdd: float, pitch_nm: float) -> str:
    return f"v{vdd:g}_p{pitch_nm:g}"


def _run_transient(spec: SweepSpec,
                   fixed: Mapping[str, object]) -> List[SweepRecord]:
    from ..cells.characterize import characterize_sweep, cnfet_technology

    _validate_axes(spec, TRANSIENT_AXES, "transient")
    constants = _fixed_values(TRANSIENT_AXES, spec, fixed, "transient")

    def value_of(corner, name):
        return corner.get(name, constants.get(name))

    def axis_values(name) -> Tuple[object, ...]:
        if name in spec.axis_names:
            return tuple(spec.axis(name).values)
        return (constants[name],)

    if spec.mode == "grid":
        corners = {
            _corner_name(vdd, pitch): cnfet_technology(vdd=vdd, pitch_nm=pitch)
            for vdd in axis_values("vdd")
            for pitch in axis_values("pitch_nm")
        }
        sweep = characterize_sweep(
            gate_names=tuple(axis_values("cell")),
            drive_strengths=tuple(axis_values("drive")),
            load_capacitances_f=tuple(axis_values("load_f")),
            input_slews_s=tuple(axis_values("slew_s")),
            corners=corners,
        )
        records = []
        for corner in spec.corners():
            point = sweep.point(
                str(value_of(corner, "cell")),
                value_of(corner, "drive"),
                value_of(corner, "load_f"),
                value_of(corner, "slew_s"),
                _corner_name(value_of(corner, "vdd"),
                             value_of(corner, "pitch_nm")),
            )
            records.append(SweepRecord(corner=corner,
                                       metrics=_transient_metrics(point)))
        return records

    records = []
    for corner in spec.corners():
        vdd = value_of(corner, "vdd")
        pitch = value_of(corner, "pitch_nm")
        name = _corner_name(vdd, pitch)
        sweep = characterize_sweep(
            gate_names=(str(value_of(corner, "cell")),),
            drive_strengths=(value_of(corner, "drive"),),
            load_capacitances_f=(value_of(corner, "load_f"),),
            input_slews_s=(value_of(corner, "slew_s"),),
            corners={name: cnfet_technology(vdd=vdd, pitch_nm=pitch)},
        )
        records.append(SweepRecord(corner=corner,
                                   metrics=_transient_metrics(sweep.points[0])))
    return records
