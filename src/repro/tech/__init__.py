"""Technology substrate: λ design rules, layer stacks, nodes and DRC."""

from .drc import DRCChecker, DRCViolation, check_cells
from .lambda_rules import (
    CMOS_RULES,
    CNFET_RULES,
    LAMBDA_NM_65,
    CMOSDesignRules,
    DesignRules,
    rules_by_name,
)
from .layers import Layer, LayerPurpose, LayerStack, cmos_layer_stack, cnfet_layer_stack
from .nodes import GateStack, TechnologyNode, cmos65_node, cnfet65_node

__all__ = [
    "DRCChecker",
    "DRCViolation",
    "check_cells",
    "CMOS_RULES",
    "CNFET_RULES",
    "LAMBDA_NM_65",
    "CMOSDesignRules",
    "DesignRules",
    "rules_by_name",
    "Layer",
    "LayerPurpose",
    "LayerStack",
    "cmos_layer_stack",
    "cnfet_layer_stack",
    "GateStack",
    "TechnologyNode",
    "cmos65_node",
    "cnfet65_node",
]
