"""Design-rule checking for generated cell layouts.

The checker enforces the subset of 65 nm rules the paper leans on:

* minimum widths (gates, contacts, metal, etched regions);
* minimum spacings between shapes on the same layer;
* gate-to-contact spacing on the active region;
* **no via/contact over the gate (active) region** — the conventional
  lithography constraint that rules out the vertical gating needed by the
  etched-region layouts of [6] and motivates the paper's Euler-path layouts;
* shapes must stay inside the cell boundary.

Violations are collected as :class:`DRCViolation` records; callers decide
whether they are fatal (:class:`repro.errors.DRCViolationError`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import DRCViolationError
from ..geometry.layout import LayoutCell
from ..geometry.primitives import Rect
from .lambda_rules import DesignRules


@dataclass(frozen=True)
class DRCViolation:
    """One design-rule violation."""

    rule: str
    layer: str
    message: str
    rect: Optional[Rect] = None
    other: Optional[Rect] = None

    def __str__(self) -> str:
        return f"[{self.rule}] {self.layer}: {self.message}"


class DRCChecker:
    """Run design-rule checks over a :class:`LayoutCell`.

    Parameters
    ----------
    rules:
        The λ design-rule set; all widths/spacings are interpreted in the
        same unit as the layout coordinates (λ).
    """

    #: layers whose shapes are allowed to overlap the active region
    _ACTIVE_OVERLAY_LAYERS = {"poly", "pplus", "nplus", "cnt_etch", "contact",
                              "metal1", "boundary", "pin", "nwell"}

    def __init__(self, rules: DesignRules):
        self.rules = rules

    # -- public API ------------------------------------------------------------

    def check(self, cell: LayoutCell, active_layer: str = "cnt") -> List[DRCViolation]:
        """Return all violations found in ``cell``."""
        violations: List[DRCViolation] = []
        violations.extend(self._check_min_widths(cell))
        violations.extend(self._check_spacings(cell))
        violations.extend(self._check_contact_not_on_gate(cell))
        violations.extend(self._check_boundary(cell))
        violations.extend(self._check_etch_regions(cell))
        return violations

    def assert_clean(self, cell: LayoutCell, active_layer: str = "cnt") -> None:
        """Raise :class:`DRCViolationError` when the cell has violations."""
        violations = self.check(cell, active_layer=active_layer)
        if violations:
            raise DRCViolationError(violations)

    # -- individual rule groups -------------------------------------------------

    def _min_width_for(self, layer: str) -> Optional[float]:
        if layer == "poly":
            return self.rules.gate_length
        if layer == "contact":
            return self.rules.contact_length
        if layer.startswith("metal"):
            return self.rules.min_metal_width
        if layer == "cnt_etch":
            return self.rules.etch_width
        if layer in ("cnt", "diffusion"):
            return self.rules.min_transistor_width
        return None

    def _check_min_widths(self, cell: LayoutCell) -> List[DRCViolation]:
        violations: List[DRCViolation] = []
        for layer in cell.layers():
            min_width = self._min_width_for(layer)
            if min_width is None:
                continue
            for rect in cell.shapes(layer):
                narrow = min(rect.width, rect.height)
                if narrow + 1e-9 < min_width:
                    violations.append(
                        DRCViolation(
                            rule="min_width",
                            layer=layer,
                            message=(
                                f"shape {rect} has width {narrow:g}λ "
                                f"< required {min_width:g}λ"
                            ),
                            rect=rect,
                        )
                    )
        return violations

    def _min_spacing_for(self, layer: str) -> Optional[float]:
        if layer == "poly":
            return self.rules.gate_gate_spacing
        if layer.startswith("metal"):
            return self.rules.min_metal_spacing
        if layer == "contact":
            return self.rules.gate_contact_spacing
        return None

    def _check_spacings(self, cell: LayoutCell) -> List[DRCViolation]:
        violations: List[DRCViolation] = []
        for layer in cell.layers():
            min_spacing = self._min_spacing_for(layer)
            if min_spacing is None:
                continue
            shapes = cell.shapes(layer)
            for index, rect in enumerate(shapes):
                for other in shapes[index + 1:]:
                    if rect.intersects(other, strict=True):
                        continue  # overlapping shapes on the same net are merged
                    gap = rect.distance_to(other)
                    if 0.0 < gap + 1e-9 < min_spacing:
                        violations.append(
                            DRCViolation(
                                rule="min_spacing",
                                layer=layer,
                                message=(
                                    f"shapes separated by {gap:g}λ "
                                    f"< required {min_spacing:g}λ"
                                ),
                                rect=rect,
                                other=other,
                            )
                        )
        return violations

    def _check_contact_not_on_gate(self, cell: LayoutCell) -> List[DRCViolation]:
        """Conventional lithography forbids a contact/via on top of the gate
        (active) region — Section III of the paper."""
        violations: List[DRCViolation] = []
        gates = cell.shapes("poly")
        if not gates:
            return violations
        for layer in ("contact",) + tuple(f"via{i}" for i in range(1, 7)):
            for rect in cell.shapes(layer):
                for gate in gates:
                    overlap = rect.intersection(gate)
                    if overlap is not None and not overlap.is_degenerate(1e-9):
                        violations.append(
                            DRCViolation(
                                rule="no_via_over_gate",
                                layer=layer,
                                message=(
                                    f"{layer} shape {rect} overlaps gate region {gate}"
                                ),
                                rect=rect,
                                other=gate,
                            )
                        )
        return violations

    def _check_boundary(self, cell: LayoutCell) -> List[DRCViolation]:
        violations: List[DRCViolation] = []
        boundary_shapes = cell.shapes("boundary")
        if not boundary_shapes:
            return violations
        boundary = boundary_shapes[0]
        for other in boundary_shapes[1:]:
            boundary = boundary.union_bbox(other)
        for layer, rect in cell.all_shapes():
            if layer in ("boundary", "pin"):
                continue
            check_box = boundary
            if layer == "poly":
                # Poly endcaps may extend over the cell edge by the usual
                # active overhang (they land in the inter-strip spacing).
                check_box = boundary.expanded(self.rules.active_contact_overhang)
            if not check_box.contains_rect(rect):
                violations.append(
                    DRCViolation(
                        rule="inside_boundary",
                        layer=layer,
                        message=f"shape {rect} extends outside boundary {boundary}",
                        rect=rect,
                    )
                )
        return violations

    def _check_etch_regions(self, cell: LayoutCell) -> List[DRCViolation]:
        """Etched regions must be at least ``etch_width`` wide *and* must not
        overlap gates or contacts (etching under a gate would remove the
        transistor channel)."""
        violations: List[DRCViolation] = []
        etches = cell.shapes("cnt_etch")
        if not etches:
            return violations
        blockers = cell.shapes("poly") + cell.shapes("contact")
        for etch in etches:
            for blocker in blockers:
                overlap = etch.intersection(blocker)
                if overlap is not None and not overlap.is_degenerate(1e-9):
                    violations.append(
                        DRCViolation(
                            rule="etch_clear_of_devices",
                            layer="cnt_etch",
                            message=f"etched region {etch} overlaps device shape {blocker}",
                            rect=etch,
                            other=blocker,
                        )
                    )
        return violations


def check_cells(cells: Iterable[LayoutCell], rules: DesignRules) -> Dict[str, List[DRCViolation]]:
    """Run DRC over several cells; returns a map of cell name to violations
    (only cells with violations appear)."""
    checker = DRCChecker(rules)
    report: Dict[str, List[DRCViolation]] = {}
    for cell in cells:
        violations = checker.check(cell)
        if violations:
            report[cell.name] = violations
    return report
