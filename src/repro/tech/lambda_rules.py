"""Scalable (λ-convention) design rules for the 65 nm CMOS / CNFET platforms.

Section III of the paper expresses its layout rules in the λ convention
(Figure 3): ``Lg`` (gate length), ``Ls``/``Ld`` (source/drain contact
lengths), ``Lgs``/``Lgd`` (gate-to-contact spacings), a 2 λ minimum etched
region and a ~3 λ via size.  Section V adds the separations that drive the
area comparison against CMOS: the CNFET PUN-PDN separation is limited by the
input-pin size (6 λ) whereas CMOS needs 10 λ between n- and p-diffusion.

The exact numeric values of the contact/spacing rules are not tabulated in
the paper; the defaults below are chosen to (a) respect the explicitly stated
rules, and (b) reproduce Table 1 / Figure 3 as closely as possible.  Each
default records which paper statement pins it down.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict

from ..errors import DesignRuleError

#: λ at the 65 nm node (half the drawn feature size), in nanometres.
LAMBDA_NM_65 = 32.5


@dataclass(frozen=True)
class DesignRules:
    """A scalable design-rule set, all lengths in λ.

    Attributes
    ----------
    name:
        Identifier of the rule set (``"cnfet65"`` or ``"cmos65"``).
    lambda_nm:
        Physical size of one λ in nanometres.
    gate_length:
        ``Lg``: drawn gate length (paper: 2 λ at the 65 nm node).
    contact_length:
        ``Ls``/``Ld``: extent of a source/drain metal contact along the
        CNT (current-flow) direction.
    gate_contact_spacing:
        ``Lgs``/``Lgd``: spacing between a gate edge and the adjacent
        contact edge.
    gate_gate_spacing:
        Spacing between two series gates sharing a diffusion/CNT region
        with no contact in between.
    etch_width:
        Minimum width of an etched (CNT-removed) region — the paper states
        the lithography limit of 2 λ.
    via_size:
        Size of a via (paper: ~3 λ, larger than the 2 λ gate).
    pun_pdn_separation:
        Spacing between the pull-up and pull-down active regions inside a
        cell.  CNFET: limited by the input pin size, 6 λ; CMOS: n-to-p
        diffusion spacing, 10 λ (Section V, case study 1).
    active_contact_overhang:
        Extension of the active region beyond the outermost contacts in the
        transistor-width direction (models the contact landing area).
    min_metal_width / min_metal_spacing:
        Metal-1 routing rules used by the intra-cell router and DRC.
    cell_margin:
        Margin between any shape and the cell abutment boundary.
    rail_width:
        Width of the Vdd / Gnd power rails of a standard cell.
    pin_size:
        Side of a square input/output pin landing pad (drives the CNFET
        PUN-PDN separation per the paper).
    min_transistor_width:
        Smallest allowed transistor width.
    """

    name: str = "cnfet65"
    lambda_nm: float = LAMBDA_NM_65
    gate_length: float = 2.0
    contact_length: float = 3.0
    gate_contact_spacing: float = 1.0
    gate_gate_spacing: float = 2.0
    etch_width: float = 2.0
    via_size: float = 3.0
    pun_pdn_separation: float = 6.0
    active_contact_overhang: float = 1.0
    min_metal_width: float = 3.0
    min_metal_spacing: float = 3.0
    cell_margin: float = 2.0
    rail_width: float = 4.0
    pin_size: float = 6.0
    min_transistor_width: float = 3.0

    def __post_init__(self):
        for rule_field in fields(self):
            value = getattr(self, rule_field.name)
            if rule_field.name in ("name",):
                continue
            if not isinstance(value, (int, float)):
                raise DesignRuleError(
                    f"Rule {rule_field.name!r} must be numeric, got {type(value).__name__}"
                )
            if value <= 0:
                raise DesignRuleError(
                    f"Rule {rule_field.name!r} must be positive, got {value!r}"
                )
        if self.via_size < self.gate_length:
            raise DesignRuleError(
                "via_size must be at least the gate length "
                f"({self.via_size} < {self.gate_length})"
            )

    # -- conversions -------------------------------------------------------

    def to_nm(self, value_lambda: float) -> float:
        """Convert a length in λ to nanometres."""
        return value_lambda * self.lambda_nm

    def to_um(self, value_lambda: float) -> float:
        """Convert a length in λ to micrometres."""
        return self.to_nm(value_lambda) / 1000.0

    def area_to_um2(self, area_lambda2: float) -> float:
        """Convert an area in λ² to µm²."""
        return area_lambda2 * (self.lambda_nm / 1000.0) ** 2

    # -- derived quantities used by layout generators ----------------------

    @property
    def contact_pitch(self) -> float:
        """Centre-to-centre pitch of a contact/gate/contact sequence."""
        return self.contact_length + 2.0 * self.gate_contact_spacing + self.gate_length

    @property
    def transistor_unit_length(self) -> float:
        """Length (along the CNT direction) contributed by one gate plus
        its two gate-to-contact spacings."""
        return self.gate_length + 2.0 * self.gate_contact_spacing

    def series_stack_length(self, num_gates: int, shared_contacts: bool = True) -> float:
        """Length of ``num_gates`` series transistors in one active column.

        With ``shared_contacts`` (diffusion sharing, no intermediate
        contacts) the gates are separated by ``gate_gate_spacing`` and the
        stack is terminated by one contact on each side.
        """
        if num_gates < 1:
            raise DesignRuleError(f"num_gates must be >= 1, got {num_gates}")
        if shared_contacts:
            inner = (num_gates - 1) * self.gate_gate_spacing
            return (
                2.0 * self.contact_length
                + 2.0 * self.gate_contact_spacing
                + num_gates * self.gate_length
                + inner
            )
        return self.linear_chain_length(num_contacts=num_gates + 1, num_gates=num_gates)

    def linear_chain_length(self, num_contacts: int, num_gates: int) -> float:
        """Length of an alternating contact/gate/contact/... chain.

        Used for Euler-path linearised layouts where every gate is bounded
        by explicit metal contacts on both sides.
        """
        if num_contacts != num_gates + 1:
            raise DesignRuleError(
                "A linear chain must have exactly one more contact than gates "
                f"(got {num_contacts} contacts, {num_gates} gates)"
            )
        return (
            num_contacts * self.contact_length
            + num_gates * self.gate_length
            + 2.0 * num_gates * self.gate_contact_spacing
        )

    def scaled(self, lambda_nm: float) -> "DesignRules":
        """Return a copy of the rule set with a different λ (rules stay in λ)."""
        return replace(self, lambda_nm=lambda_nm)

    def as_dict(self) -> Dict[str, float]:
        """Rule values as a plain dictionary (name excluded)."""
        result = {}
        for rule_field in fields(self):
            if rule_field.name == "name":
                continue
            result[rule_field.name] = getattr(self, rule_field.name)
        return result


@dataclass(frozen=True)
class CMOSDesignRules(DesignRules):
    """Design rules of the reference 65 nm CMOS platform.

    Identical front-end rules, but the n-to-p diffusion spacing inside a
    cell is 10 λ (Section V) and the well rules make the PUN/PDN heights
    standardised per row.
    """

    name: str = "cmos65"
    pun_pdn_separation: float = 10.0


#: Default CNFET rule set used throughout the library.
CNFET_RULES = DesignRules()

#: Default CMOS 65 nm rule set used for the reference comparison.
CMOS_RULES = CMOSDesignRules()


def rules_by_name(name: str) -> DesignRules:
    """Return the canonical rule set for ``name`` (``cnfet65`` / ``cmos65``)."""
    canonical = {"cnfet65": CNFET_RULES, "cmos65": CMOS_RULES}
    try:
        return canonical[name]
    except KeyError:
        raise DesignRuleError(
            f"Unknown rule set {name!r}; available: {sorted(canonical)}"
        ) from None
