"""Layer definitions for the CNFET design platform.

The paper customises a 65 nm CMOS back-end: a CNT plane replaces the silicon
diffusion, the doping masks (p+/n+) and an optional etch mask are added, and
everything from polysilicon up to Metal-7 is reused unchanged (Section IV).

Layers are identified by a symbolic name and carry a GDSII ``(layer,
datatype)`` pair used by :mod:`repro.geometry.gds`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import TechnologyError


class LayerPurpose(Enum):
    """Broad purpose category of a layer, used by DRC and extraction."""

    SUBSTRATE = "substrate"
    ACTIVE = "active"          # CNT plane (CNFET) or diffusion (CMOS)
    DOPING = "doping"          # p+/n+ implant / chemical doping masks
    ETCH = "etch"              # CNT etch mask (removes CNTs)
    GATE = "gate"              # polysilicon gate
    CONTACT = "contact"        # active/poly to metal-1 contacts
    METAL = "metal"            # routing metals
    VIA = "via"                # inter-metal vias
    PIN = "pin"                # pin/label purpose
    BOUNDARY = "boundary"      # cell abutment boundary / prBoundary


@dataclass(frozen=True)
class Layer:
    """A single mask layer.

    Attributes
    ----------
    name:
        Symbolic name, e.g. ``"cnt"``, ``"poly"``, ``"metal1"``.
    gds_layer, gds_datatype:
        GDSII stream numbers used on export.
    purpose:
        The :class:`LayerPurpose` category.
    level:
        Vertical ordering index (substrate = 0, higher = further from bulk).
    """

    name: str
    gds_layer: int
    gds_datatype: int
    purpose: LayerPurpose
    level: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class LayerStack:
    """An ordered collection of :class:`Layer` objects.

    The stack behaves like a read-only mapping from layer name to layer and
    offers convenience queries used by the layout generators, DRC and the
    GDSII writer.
    """

    def __init__(self, layers: Iterable[Layer], name: str = "stack"):
        self.name = name
        self._layers: Dict[str, Layer] = {}
        self._by_gds: Dict[Tuple[int, int], Layer] = {}
        for layer in layers:
            self.add(layer)

    def add(self, layer: Layer) -> None:
        """Add a layer; duplicate names or GDS numbers are rejected."""
        if layer.name in self._layers:
            raise TechnologyError(f"Duplicate layer name {layer.name!r} in stack {self.name!r}")
        key = (layer.gds_layer, layer.gds_datatype)
        if key in self._by_gds:
            other = self._by_gds[key]
            raise TechnologyError(
                f"GDS number {key} reused by layers {other.name!r} and {layer.name!r}"
            )
        self._layers[layer.name] = layer
        self._by_gds[key] = layer

    def __getitem__(self, name: str) -> Layer:
        try:
            return self._layers[name]
        except KeyError:
            raise TechnologyError(
                f"Unknown layer {name!r}; available: {sorted(self._layers)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __iter__(self):
        return iter(self._layers.values())

    def __len__(self) -> int:
        return len(self._layers)

    def names(self) -> List[str]:
        """Layer names ordered by vertical level."""
        return [layer.name for layer in sorted(self._layers.values(), key=lambda l: l.level)]

    def by_purpose(self, purpose: LayerPurpose) -> List[Layer]:
        """All layers with the given purpose, ordered by level."""
        found = [layer for layer in self._layers.values() if layer.purpose is purpose]
        return sorted(found, key=lambda l: l.level)

    def by_gds(self, gds_layer: int, gds_datatype: int = 0) -> Optional[Layer]:
        """Look up a layer by its GDSII numbers (``None`` if absent)."""
        return self._by_gds.get((gds_layer, gds_datatype))

    def metals(self) -> List[Layer]:
        """Routing metal layers ordered bottom-up."""
        return self.by_purpose(LayerPurpose.METAL)

    def active_layer(self) -> Layer:
        """The single active layer (CNT plane or diffusion)."""
        actives = self.by_purpose(LayerPurpose.ACTIVE)
        if len(actives) != 1:
            raise TechnologyError(
                f"Stack {self.name!r} must have exactly one active layer, found {len(actives)}"
            )
        return actives[0]


# ---------------------------------------------------------------------------
# Canonical stacks
# ---------------------------------------------------------------------------

def cnfet_layer_stack() -> LayerStack:
    """The CNFET 65 nm-compatible layer stack from Section IV of the paper.

    A CNT plane sits on 10 µm of SiO2 on the substrate; the p+/n+ doping
    masks and the CNT etch mask are specific to the CNFET platform; poly and
    the seven metal layers are reused from the 65 nm CMOS back-end.
    """
    layers = [
        Layer("substrate", 0, 0, LayerPurpose.SUBSTRATE, 0),
        Layer("cnt", 1, 0, LayerPurpose.ACTIVE, 1),
        Layer("pplus", 2, 0, LayerPurpose.DOPING, 2),
        Layer("nplus", 3, 0, LayerPurpose.DOPING, 2),
        Layer("cnt_etch", 4, 0, LayerPurpose.ETCH, 2),
        Layer("poly", 10, 0, LayerPurpose.GATE, 3),
        Layer("contact", 11, 0, LayerPurpose.CONTACT, 4),
        Layer("boundary", 63, 0, LayerPurpose.BOUNDARY, 20),
        Layer("pin", 62, 0, LayerPurpose.PIN, 21),
    ]
    for index in range(1, 8):
        layers.append(Layer(f"metal{index}", 20 + index, 0, LayerPurpose.METAL, 4 + 2 * index))
        if index < 7:
            layers.append(Layer(f"via{index}", 40 + index, 0, LayerPurpose.VIA, 5 + 2 * index))
    return LayerStack(layers, name="cnfet65")


def cmos_layer_stack() -> LayerStack:
    """A conventional 65 nm CMOS layer stack used for the reference flows."""
    layers = [
        Layer("substrate", 0, 0, LayerPurpose.SUBSTRATE, 0),
        Layer("diffusion", 1, 0, LayerPurpose.ACTIVE, 1),
        Layer("pplus", 2, 0, LayerPurpose.DOPING, 2),
        Layer("nplus", 3, 0, LayerPurpose.DOPING, 2),
        Layer("nwell", 5, 0, LayerPurpose.DOPING, 2),
        Layer("poly", 10, 0, LayerPurpose.GATE, 3),
        Layer("contact", 11, 0, LayerPurpose.CONTACT, 4),
        Layer("boundary", 63, 0, LayerPurpose.BOUNDARY, 20),
        Layer("pin", 62, 0, LayerPurpose.PIN, 21),
    ]
    for index in range(1, 8):
        layers.append(Layer(f"metal{index}", 20 + index, 0, LayerPurpose.METAL, 4 + 2 * index))
        if index < 7:
            layers.append(Layer(f"via{index}", 40 + index, 0, LayerPurpose.VIA, 5 + 2 * index))
    return LayerStack(layers, name="cmos65")
