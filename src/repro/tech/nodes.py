"""Technology-node descriptions for the CNFET and reference CMOS platforms.

A :class:`TechnologyNode` bundles the electrical environment (supply, gate
stack, dielectric), the λ design rules and the layer stack into one object
that the device models, layout generators and the design-kit flow all share.

The paper's CNFET platform deliberately re-uses the 65 nm CMOS back-end and
assumes polysilicon gates with a low-k dielectric so the comparison against
the industrial 65 nm library is apples-to-apples (Section IV); the defaults
below encode exactly that choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import TechnologyError
from ..units import EPSILON_0
from .lambda_rules import CMOS_RULES, CNFET_RULES, CMOSDesignRules, DesignRules
from .layers import LayerStack, cmos_layer_stack, cnfet_layer_stack


@dataclass(frozen=True)
class GateStack:
    """Gate electrode + dielectric description.

    Attributes
    ----------
    material:
        Gate electrode material (``"polysilicon"`` or ``"metal"``).
    dielectric:
        Gate dielectric name (``"SiO2"``, ``"low-k"``, ``"HfO2"`` ...).
    relative_permittivity:
        Dielectric constant of the gate insulator.
    thickness_nm:
        Physical dielectric thickness in nanometres.
    """

    material: str = "polysilicon"
    dielectric: str = "low-k"
    relative_permittivity: float = 3.9
    thickness_nm: float = 4.0

    def __post_init__(self):
        if self.relative_permittivity <= 0:
            raise TechnologyError("relative_permittivity must be positive")
        if self.thickness_nm <= 0:
            raise TechnologyError("thickness_nm must be positive")

    @property
    def capacitance_per_area(self) -> float:
        """Parallel-plate oxide capacitance per unit area [F/m²]."""
        return EPSILON_0 * self.relative_permittivity / (self.thickness_nm * 1e-9)


@dataclass(frozen=True)
class TechnologyNode:
    """A complete technology-node description.

    Attributes
    ----------
    name:
        Node identifier.
    feature_size_nm:
        Drawn feature size (65 nm for both platforms in the paper).
    supply_voltage:
        Nominal Vdd (the paper simulates both platforms at 1 V).
    gate_stack:
        :class:`GateStack` of the node.
    rules:
        λ design rules (:class:`~repro.tech.lambda_rules.DesignRules`).
    is_cnfet:
        Whether the active devices are CNFETs (else bulk MOSFETs).
    oxide_under_cnt_um:
        Thickness of the SiO2 under the CNT plane (paper: 10 µm), only
        meaningful when ``is_cnfet``.
    temperature_k:
        Operating temperature for device models.
    """

    name: str
    feature_size_nm: float
    supply_voltage: float
    gate_stack: GateStack
    rules: DesignRules
    is_cnfet: bool
    oxide_under_cnt_um: Optional[float] = None
    temperature_k: float = 300.0

    def __post_init__(self):
        if self.feature_size_nm <= 0:
            raise TechnologyError("feature_size_nm must be positive")
        if self.supply_voltage <= 0:
            raise TechnologyError("supply_voltage must be positive")
        if self.is_cnfet and self.oxide_under_cnt_um is None:
            raise TechnologyError("CNFET nodes must define oxide_under_cnt_um")

    @property
    def lambda_nm(self) -> float:
        """λ of the node in nanometres."""
        return self.rules.lambda_nm

    def layer_stack(self) -> LayerStack:
        """Layer stack matching the node type."""
        return cnfet_layer_stack() if self.is_cnfet else cmos_layer_stack()

    def with_supply(self, supply_voltage: float) -> "TechnologyNode":
        """Copy of the node at a different supply voltage."""
        return replace(self, supply_voltage=supply_voltage)


def cnfet65_node(supply_voltage: float = 1.0) -> TechnologyNode:
    """The paper's CNFET platform: 65 nm rules, poly gate, low-k dielectric,
    CNT plane over 10 µm SiO2."""
    return TechnologyNode(
        name="cnfet65",
        feature_size_nm=65.0,
        supply_voltage=supply_voltage,
        gate_stack=GateStack(
            material="polysilicon",
            dielectric="low-k",
            relative_permittivity=3.9,
            thickness_nm=4.0,
        ),
        rules=CNFET_RULES,
        is_cnfet=True,
        oxide_under_cnt_um=10.0,
    )


def cmos65_node(supply_voltage: float = 1.0) -> TechnologyNode:
    """The reference industrial-style 65 nm CMOS node."""
    return TechnologyNode(
        name="cmos65",
        feature_size_nm=65.0,
        supply_voltage=supply_voltage,
        gate_stack=GateStack(
            material="polysilicon",
            dielectric="SiON",
            relative_permittivity=5.0,
            thickness_nm=1.8,
        ),
        rules=CMOS_RULES,
        is_cnfet=False,
        oxide_under_cnt_um=None,
    )
