"""Unit helpers used across the library.

The layout side of the paper works in the lambda (``λ``) convention of the
65 nm node, while the device side works in SI units (nm, F, A, s, J).  This
module centralises the conversions so that every subsystem states its unit
explicitly instead of passing bare floats of ambiguous meaning.

Two small value types are provided:

* :class:`Lambda` — a length expressed in λ.  It converts to nanometres
  through a :class:`repro.tech.lambda_rules.DesignRules` instance (or a bare
  ``lambda_nm`` float).
* :func:`format_si` / :func:`parse_si` — human-friendly formatting and
  parsing of SI-prefixed quantities used by reports and the Liberty writer.

Physical constants needed by the CNT/CNFET device models are also defined
here so that :mod:`repro.devices` has a single source of truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import UnitError

# ---------------------------------------------------------------------------
# Physical constants (SI units)
# ---------------------------------------------------------------------------

#: Elementary charge [C]
ELECTRON_CHARGE = 1.602176634e-19
#: Planck constant [J s]
PLANCK = 6.62607015e-34
#: Reduced Planck constant [J s]
HBAR = PLANCK / (2.0 * math.pi)
#: Boltzmann constant [J/K]
BOLTZMANN = 1.380649e-23
#: Vacuum permittivity [F/m]
EPSILON_0 = 8.8541878128e-12
#: Carbon-carbon bond length in graphene / CNTs [nm]
CC_BOND_LENGTH_NM = 0.142
#: Nearest-neighbour hopping (tight-binding) energy for graphene [eV]
GRAPHENE_HOPPING_EV = 3.033
#: Quantum of conductance (per spin, per band) [S]
CONDUCTANCE_QUANTUM = 2.0 * ELECTRON_CHARGE**2 / PLANCK
#: Room temperature used throughout [K]
ROOM_TEMPERATURE_K = 300.0
#: Thermal voltage at room temperature [V]
THERMAL_VOLTAGE_V = BOLTZMANN * ROOM_TEMPERATURE_K / ELECTRON_CHARGE

# ---------------------------------------------------------------------------
# Length conversions
# ---------------------------------------------------------------------------

NM_PER_UM = 1000.0
NM_PER_MM = 1.0e6
NM_PER_M = 1.0e9


def nm_to_um(value_nm: float) -> float:
    """Convert nanometres to micrometres."""
    return value_nm / NM_PER_UM


def um_to_nm(value_um: float) -> float:
    """Convert micrometres to nanometres."""
    return value_um * NM_PER_UM


def nm_to_m(value_nm: float) -> float:
    """Convert nanometres to metres."""
    return value_nm / NM_PER_M


def m_to_nm(value_m: float) -> float:
    """Convert metres to nanometres."""
    return value_m * NM_PER_M


@dataclass(frozen=True)
class Lambda:
    """A length in λ units of a scalable design-rule set.

    The λ convention expresses every design rule as a multiple of a single
    scaling parameter; at the 65 nm node used in the paper ``λ = 32.5 nm``
    (half of the drawn feature size).
    """

    value: float

    def __post_init__(self):
        if not math.isfinite(self.value):
            raise UnitError(f"Lambda value must be finite, got {self.value!r}")

    def to_nm(self, lambda_nm: float) -> float:
        """Convert to nanometres given the technology λ in nm."""
        if lambda_nm <= 0:
            raise UnitError(f"lambda_nm must be positive, got {lambda_nm!r}")
        return self.value * lambda_nm

    def __add__(self, other):
        return Lambda(self.value + _lambda_value(other))

    def __radd__(self, other):
        return Lambda(_lambda_value(other) + self.value)

    def __sub__(self, other):
        return Lambda(self.value - _lambda_value(other))

    def __mul__(self, factor: float):
        return Lambda(self.value * factor)

    def __rmul__(self, factor: float):
        return Lambda(factor * self.value)

    def __float__(self):
        return float(self.value)

    def __le__(self, other):
        return self.value <= _lambda_value(other)

    def __lt__(self, other):
        return self.value < _lambda_value(other)

    def __ge__(self, other):
        return self.value >= _lambda_value(other)

    def __gt__(self, other):
        return self.value > _lambda_value(other)


def _lambda_value(other) -> float:
    if isinstance(other, Lambda):
        return other.value
    if isinstance(other, (int, float)):
        return float(other)
    raise UnitError(f"Cannot combine Lambda with {type(other).__name__}")


# ---------------------------------------------------------------------------
# SI formatting / parsing
# ---------------------------------------------------------------------------

_SI_PREFIXES = [
    (1e-18, "a"),
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "u"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
]

_PREFIX_TO_SCALE = {prefix: scale for scale, prefix in _SI_PREFIXES}
_PREFIX_TO_SCALE["µ"] = 1e-6


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(3.2e-12, 's')``
    returns ``'3.2ps'``."""
    if value == 0:
        return f"0{unit}"
    if not math.isfinite(value):
        return f"{value}{unit}"
    magnitude = abs(value)
    chosen_scale, chosen_prefix = _SI_PREFIXES[0]
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            chosen_scale, chosen_prefix = scale, prefix
    scaled = value / chosen_scale
    return f"{scaled:.{digits}g}{chosen_prefix}{unit}"


def parse_si(text: str, unit: str = "") -> float:
    """Parse a string produced by :func:`format_si` back into a float.

    ``unit`` (if given) is stripped from the end of the string before the
    SI prefix is interpreted.
    """
    stripped = text.strip()
    if unit and stripped.endswith(unit):
        stripped = stripped[: -len(unit)]
    stripped = stripped.strip()
    if not stripped:
        raise UnitError(f"Cannot parse empty quantity from {text!r}")
    prefix = ""
    if stripped[-1] in _PREFIX_TO_SCALE and not stripped[-1].isdigit():
        prefix = stripped[-1]
        stripped = stripped[:-1]
    try:
        magnitude = float(stripped)
    except ValueError as exc:
        raise UnitError(f"Cannot parse quantity {text!r}") from exc
    return magnitude * _PREFIX_TO_SCALE.get(prefix, 1.0)


# ---------------------------------------------------------------------------
# Energy / delay helpers
# ---------------------------------------------------------------------------

def joules_to_femtojoules(value_j: float) -> float:
    """Convert joules to femtojoules."""
    return value_j * 1e15


def seconds_to_picoseconds(value_s: float) -> float:
    """Convert seconds to picoseconds."""
    return value_s * 1e12


def edp(energy_j: float, delay_s: float) -> float:
    """Energy-delay product [J s]."""
    return energy_j * delay_s


def edap(energy_j: float, delay_s: float, area_m2: float) -> float:
    """Energy-delay-area product [J s m^2]."""
    return energy_j * delay_s * area_m2
