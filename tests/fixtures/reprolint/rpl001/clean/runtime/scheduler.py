"""RPL001 negative fixture: the scheduler itself may own the pool."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


def run_tasks(fn, tasks, backend="process"):
    executor_type = (ProcessPoolExecutor if backend == "process"
                     else ThreadPoolExecutor)
    with executor_type(max_workers=2) as pool:
        return list(pool.map(fn, tasks))
