"""RPL001 fixture: a private pool outside runtime/scheduler.py."""

from concurrent.futures import ProcessPoolExecutor


def fan_out(fn, tasks):
    with ProcessPoolExecutor(max_workers=4) as pool:
        return list(pool.map(fn, tasks))
