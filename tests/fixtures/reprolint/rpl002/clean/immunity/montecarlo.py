"""RPL002 negative fixture: montecarlo.py is a sanctioned entry point,
and SeedSequence construction is seed plumbing, allowed anywhere."""

import numpy as np


def seeded_generator(seed):
    root = np.random.SeedSequence(seed)
    return np.random.default_rng(root)
