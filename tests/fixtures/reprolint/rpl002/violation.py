"""RPL002 fixture: RNG construction outside the sanctioned entry points."""

import numpy as np


def sample(n):
    rng = np.random.default_rng(1234)
    return rng.standard_normal(n)
