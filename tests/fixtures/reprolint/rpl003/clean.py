"""RPL003 negative fixture: wall-clock reads are fine in modules that
never feed a content address (this file is not a fingerprinted module)."""

import time


def stopwatch():
    return time.time()
