"""RPL003 negative fixture: wall-clock reads are fine in modules that
never feed a content address (this file is not a fingerprinted module —
and it lives under ``obs/``, the one place RPL010 sanctions clocks)."""

import time


def stopwatch():
    return time.time()
