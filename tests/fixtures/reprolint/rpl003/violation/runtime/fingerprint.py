"""RPL003 fixture: a wall-clock read inside a fingerprinted module."""

import hashlib
import time


def stamped_fingerprint(payload):
    text = f"{payload}@{time.time()}"
    return hashlib.sha256(text.encode()).hexdigest()
