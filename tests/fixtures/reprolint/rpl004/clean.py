"""RPL004 negative fixture: a fingerprint call fed only by what the
result depends on — execution parameters stay outside."""


def study_fingerprint(study, params=None, seed=None):
    return f"{study}:{params}:{seed}"


def cache_key(study, trials, seed, jobs=None):
    del jobs                       # execution-only; never enters the key
    return study_fingerprint(study, params={"trials": trials}, seed=seed)
