"""RPL004 fixture: execution parameters leaking into a content address."""


def study_fingerprint(study, params=None, **extra):
    return f"{study}:{params}:{extra}"


def cache_key(study, jobs, backend):
    return study_fingerprint(study, params={"jobs": jobs}, backend=backend)
