"""RPL005 negative fixture: writes under runtime/ go through the
atomic-replace helper; reads are unrestricted."""

import json
import os
import tempfile


def _write_atomic(path, text):
    handle, temp_name = tempfile.mkstemp(dir=os.path.dirname(path))
    with os.fdopen(handle, "w", encoding="utf-8") as stream:
        stream.write(text)
    os.replace(temp_name, path)


def save_entry(path, payload):
    _write_atomic(path, json.dumps(payload))


def load_entry(path):
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)
