"""RPL005 fixture: a direct write under runtime/ — readers can observe
half an entry."""

import json


def save_entry(path, payload):
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream)
