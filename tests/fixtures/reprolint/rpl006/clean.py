"""RPL006 negative fixture: None defaults, containers built per call."""


def accumulate(value, into=None):
    into = [] if into is None else into
    into.append(value)
    return into


def tally(key, counts=None):
    counts = {} if counts is None else counts
    counts[key] = counts.get(key, 0) + 1
    return counts
