"""RPL006 fixture: mutable default arguments shared across calls."""


def accumulate(value, into=[]):
    into.append(value)
    return into


def tally(key, counts={}):
    counts[key] = counts.get(key, 0) + 1
    return counts
