"""RPL007 negative fixture: every result class declares its dispatch
key and every registered study has a matching result class."""


class StudyResult:
    study_name = ""


class PhantomResult(StudyResult):
    study_name = "phantom"


class StudyDefinition:
    def __init__(self, name, runner):
        self.name = name
        self.runner = runner


def _definitions():
    return [
        StudyDefinition("phantom", lambda: None),
    ]
