"""RPL007 fixture: a registry/dispatch inconsistency, both directions —
a result class with no study_name (never enters the from_json dispatch)
and a registered study whose name no result class carries."""


class StudyResult:
    study_name = ""


class GhostResult(StudyResult):
    """Subclasses StudyResult but forgets its dispatch key."""

    payload: dict


class StudyDefinition:
    def __init__(self, name, runner):
        self.name = name
        self.runner = runner


def _definitions():
    return [
        StudyDefinition("phantom", lambda: None),
    ]
