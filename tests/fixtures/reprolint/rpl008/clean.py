"""RPL008 negative fixture: specific exceptions, and broad handlers
with a real degrade-and-continue body stay legal."""


def tolerant_unlink(path):
    try:
        path.unlink()
    except OSError:
        pass


def decode_or_evict(path, decode):
    try:
        return decode(path)
    except Exception:
        tolerant_unlink(path)
        return None
