"""RPL008 fixture: a bare except and a pass-only broad handler."""


def swallow_everything(fn):
    try:
        return fn()
    except:
        return None


def ignore_failures(fn):
    try:
        return fn()
    except Exception:
        pass
