"""RPL009 clean: the same constructions are legal here — this path is
service/jobs.py, one of the two sanctioned concurrency modules."""

import threading


def start_worker(target):
    lock = threading.Lock()
    waiter = threading.Condition(lock)
    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    return lock, waiter, worker
