"""RPL009 violation: threading primitives constructed outside the
sanctioned concurrency surface (this path is service/server.py, not
service/jobs.py)."""

import threading
from threading import Event


def start_worker(target):
    lock = threading.Lock()            # RPL009: lock minted here
    worker = threading.Thread(target=target, daemon=True)  # RPL009
    worker.start()
    return lock, worker, Event()
