"""RPL010 clean fixture: inside ``obs/`` the clock readers are legal —
this is exactly where ``repro.obs.clock`` lives."""

import time


def wall_time():
    return time.time()


def monotonic():
    return time.monotonic()


def perf_counter():
    return time.perf_counter()
