"""RPL010 violation fixture: a clock read outside the obs/ package."""

import time
from datetime import datetime


def stamp_entry(entry):
    entry["created"] = time.time()
    entry["pretty"] = datetime.now().isoformat()
    return entry


def elapsed(start):
    return time.monotonic() - start
