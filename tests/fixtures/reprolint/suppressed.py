"""Suppression fixture: real violations silenced by inline comments.

The first two carry a justifying disable comment and must NOT surface;
the last one has no comment and must still be reported.
"""

import numpy as np


def sample(n):
    # Fixture rationale: exercising the suppression syntax itself.
    rng = np.random.default_rng(7)  # reprolint: disable=RPL002
    return rng.standard_normal(n)


def accumulate(value, into=[]):  # reprolint: disable=RPL006,RPL008
    into.append(value)
    return into


def leaky(value, into=[]):
    into.append(value)
    return into
