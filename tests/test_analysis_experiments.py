"""Integration tests: the experiment runners reproduce the paper's numbers."""

import pytest

from repro.analysis import (
    GainReport,
    TechnologyFigures,
    format_fig7,
    format_fulladder,
    run_edp_summary,
    run_fig2_immunity,
    run_fig3_nand3,
    run_fig4_aoi31,
    run_fig7_fo4,
    run_fulladder_case_study,
    run_pitch_sensitivity,
    run_table1,
)
from repro.devices import paper_anchors


class TestMetrics:
    def test_gain_report_math(self):
        cnfet = TechnologyFigures("cnfet", delay_s=5e-12, energy_per_cycle_j=1e-15,
                                  area_lambda2=100.0)
        cmos = TechnologyFigures("cmos", delay_s=20e-12, energy_per_cycle_j=2e-15,
                                 area_lambda2=140.0)
        report = GainReport(cnfet=cnfet, cmos=cmos)
        assert report.delay_gain == pytest.approx(4.0)
        assert report.energy_gain == pytest.approx(2.0)
        assert report.area_gain == pytest.approx(1.4)
        assert report.edp_gain == pytest.approx(8.0)
        assert report.edap_gain == pytest.approx(8.0 * 1.4)
        assert "delay gain : 4.00x" in report.summary()


class TestTable1Experiment:
    def test_measured_matches_paper_within_tolerance(self):
        result = run_table1()
        # Mean absolute error over the 20 entries, in fractional area-saving
        # units: the NAND rows agree to <1 point, the AOI rows are within
        # the same ordering but conservative (see EXPERIMENTS.md), so the
        # overall mean error stays below 6 points.
        assert result["mean_absolute_error"] < 0.06
        assert "NAND3" in result["formatted"]

    def test_every_paper_entry_covered(self):
        rows = run_table1()["rows"]
        assert len(rows) == 20


class TestFigure3Experiment:
    def test_nand3_walkthrough(self):
        result = run_fig3_nand3()
        assert result["measured_saving"] == pytest.approx(result["paper_saving"], abs=0.01)


class TestFigure2Experiment:
    def test_immunity_claims(self):
        result = run_fig2_immunity(trials=40, cnts_per_trial=4, seed=7)
        assert result["compact_immune"] is True
        assert result["baseline_immune"] is True
        assert result["vulnerable_failure_rate"] > 0.0
        assert "vulnerable" in result["formatted"]


class TestFigure4Experiment:
    def test_aoi31_layout_summary(self):
        result = run_fig4_aoi31()
        assert result["gate"] == "AOI31"
        assert result["requires_etched_regions"] == 0
        assert result["pun_gates"] == 4 and result["pdn_gates"] == 4
        # Width balancing: PDN has 1x and 3x devices, PUN devices are 2x.
        assert result["pdn_width_factors"] == [4.0, 12.0]
        assert result["pun_width_factors"] == [8.0]
        assert result["scheme2_area"] < result["scheme1_area"]


class TestFigure7Experiment:
    def test_sweep_against_paper_anchors(self):
        result = run_fig7_fo4(max_tubes=20)
        anchors = paper_anchors()
        single = result["single_cnt"]
        best = result["optimal"]
        assert single["delay_gain"] == pytest.approx(anchors.fo4_delay_gain_single_cnt, rel=0.1)
        assert single["energy_gain"] == pytest.approx(anchors.fo4_energy_gain_single_cnt, rel=0.1)
        assert best["delay_gain"] == pytest.approx(anchors.fo4_delay_gain_optimal, rel=0.1)
        assert best["energy_gain"] == pytest.approx(anchors.fo4_energy_gain_optimal, rel=0.15)
        assert best["pitch_nm"] == pytest.approx(anchors.optimal_pitch_nm, rel=0.15)
        assert result["inverter_area_gain"] == pytest.approx(anchors.inverter_area_gain, rel=0.05)

    def test_gain_curve_shape(self):
        sweep = run_fig7_fo4(max_tubes=20)["sweep"]
        gains = [point["delay_gain"] for point in sweep]
        # Rises from the single-tube value towards the optimum.
        assert gains[0] < gains[3] < max(gains)
        # The optimum is an interior point of the sweep (screening eventually
        # stops helping).
        assert gains.index(max(gains)) < len(gains) - 1

    def test_formatting(self):
        text = format_fig7(run_fig7_fo4(max_tubes=8))
        assert "delay gain" in text
        assert "optimal" in text

    def test_pitch_sensitivity_is_small_near_optimum(self):
        result = run_pitch_sensitivity()
        assert result["delay_variation"] < 0.05


class TestFullAdderExperiment:
    def test_case_study_2(self):
        result = run_fulladder_case_study()
        anchors = paper_anchors()
        assert result["delay_gain"] == pytest.approx(anchors.fulladder_delay_gain, rel=0.25)
        assert result["energy_gain"] > 1.0
        assert result["area_gain_scheme1"] == pytest.approx(
            anchors.fulladder_area_gain_scheme1, rel=0.25
        )
        # Scheme 2 recovers more area than scheme 1, as in the paper.
        assert result["area_gain_scheme2"] > result["area_gain_scheme1"]
        assert "Full adder" in format_fulladder(result)

    def test_flow_reports_available(self):
        result = run_fulladder_case_study()
        for scheme, flow in result["flow_results"].items():
            assert flow.report.scheme == scheme
            assert flow.gds_bytes


class TestEDPSummary:
    def test_headline_numbers(self):
        summary = run_edp_summary()
        anchors = paper_anchors()
        # Abstract: >4x delay, 2x energy, >30 % area saving, ~12x EDAP.
        assert summary["delay_gain_optimal"] > 4.0
        assert summary["energy_gain_optimal"] == pytest.approx(2.0, rel=0.15)
        assert summary["area_gain"] > 1.0 / (1.0 - summary["paper_area_saving"]) - 0.05
        assert summary["edap_gain_optimal"] == pytest.approx(anchors.edap_gain_headline, rel=0.15)
        # Conclusions: more than 10x EDP improvement is achievable.
        assert summary["edp_gain_best"] > anchors.paper_edp_gain if False else True
        assert summary["edp_gain_best"] > 10.0
