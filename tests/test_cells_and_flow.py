"""Tests for the standard-cell library, Liberty export and the design flow."""

import pytest

from repro.cells import (
    DEFAULT_GATE_SET,
    build_cmos_timing_library,
    build_library,
    cell_key,
    characterize_gate,
    cmos_technology,
    cnfet_technology,
    device_for_width,
    write_liberty,
)
from repro.circuit import GateNetlist
from repro.errors import (
    FlowError,
    LibraryError,
    MappingError,
    PlacementError,
    VerilogParseError,
)
from repro.flow import (
    CNFETDesignKit,
    comparator_netlist,
    full_adder_netlist,
    full_adder_verilog,
    mac_slice_netlist,
    map_netlist,
    parse_structural_verilog,
    place_cmos_reference,
    place_scheme1,
    place_scheme2,
    ripple_carry_adder_netlist,
    split_cell_name,
)
from repro.geometry import read_gds_summary
from repro.logic import standard_gate

# A small library is enough for most flow tests and keeps them fast.
SMALL_GATES = ("INV", "NAND2")
SMALL_DRIVES = (1.0, 2.0, 4.0, 9.0)


@pytest.fixture(scope="module")
def small_library():
    return build_library(gate_names=SMALL_GATES, drive_strengths=SMALL_DRIVES)


@pytest.fixture(scope="module")
def small_kit():
    return CNFETDesignKit(gate_set=SMALL_GATES, drive_strengths=SMALL_DRIVES)


class TestCharacterization:
    def test_cnfet_unit_device_matches_calibration(self):
        device = device_for_width(1.0, "n", cnfet_technology())
        assert 5 <= device.num_tubes <= 8

    def test_cmos_unit_device_width(self):
        device = device_for_width(1.0, "n", cmos_technology())
        assert device.width_nm == pytest.approx(200.0)
        pdevice = device_for_width(1.0, "p", cmos_technology())
        assert pdevice.width_nm == pytest.approx(280.0)

    def test_cnfet_cell_is_faster_and_lighter_than_cmos(self):
        gate = standard_gate("NAND2")
        cnfet = characterize_gate(gate, cnfet_technology())
        cmos = characterize_gate(gate, cmos_technology())
        assert cnfet.drive_resistance < cmos.drive_resistance
        assert cnfet.input_capacitance < cmos.input_capacitance

    def test_drive_strength_lowers_resistance(self):
        gate = standard_gate("INV")
        weak = characterize_gate(gate, cnfet_technology(), drive_strength=1.0)
        strong = characterize_gate(gate, cnfet_technology(), drive_strength=4.0)
        assert strong.drive_resistance < weak.drive_resistance
        assert strong.input_capacitance > weak.input_capacitance


class TestLibrary:
    def test_library_contents(self, small_library):
        assert len(small_library) == len(SMALL_GATES) * len(SMALL_DRIVES)
        assert small_library.has_cell("NAND2", 4.0)
        assert small_library.cell("INV", 9.0).drive_strength == 9.0
        assert small_library.gate_types() == ["INV", "NAND2"]
        assert small_library.drive_strengths("INV") == sorted(SMALL_DRIVES)

    def test_cell_key_format(self):
        assert cell_key("nand2", 4.0) == "NAND2_4X"

    def test_missing_cell_raises(self, small_library):
        with pytest.raises(LibraryError):
            small_library.cell("XOR2", 1.0)

    def test_all_library_cells_beat_cmos_area(self, small_library):
        for cell in small_library:
            assert cell.area_gain_vs_cmos > 1.0, cell.name

    def test_timing_library_export(self, small_library):
        timing = small_library.timing_library()
        assert "INV" in timing.cell_types()
        model = timing.lookup("NAND2", 2.0)
        assert model.drive_resistance > 0

    def test_full_default_gate_set_builds(self):
        library = build_library(drive_strengths=(1.0,))
        assert len(library) == len(DEFAULT_GATE_SET)

    def test_cmos_timing_library(self):
        timing = build_cmos_timing_library(gate_names=SMALL_GATES, drive_strengths=(1.0,))
        assert timing.lookup("INV", 1.0).drive_resistance > 0


class TestLiberty:
    def test_liberty_text_structure(self, small_library):
        text = write_liberty(small_library)
        assert text.startswith("library (")
        assert "cell (NAND2_4X)" in text
        assert 'function : "!(A & B)"' in text
        assert text.count("pin (") >= len(small_library) * 2

    def test_empty_library_rejected(self):
        from repro.cells.library import StandardCellLibrary
        from repro.tech import CNFET_RULES

        empty = StandardCellLibrary("empty", 1, cnfet_technology(), 4.0, CNFET_RULES)
        with pytest.raises(LibraryError):
            write_liberty(empty)


class TestVerilog:
    def test_split_cell_name(self):
        assert split_cell_name("NAND2_4X") == ("NAND2", 4.0)
        assert split_cell_name("INV") == ("INV", 1.0)

    def test_round_trip_through_verilog(self):
        text = full_adder_verilog()
        netlist = parse_structural_verilog(text)
        reference = full_adder_netlist()
        assert len(netlist) == len(reference)
        assert set(netlist.inputs) == set(reference.inputs)
        assert set(netlist.outputs) == set(reference.outputs)

    def test_parse_rejects_missing_module(self):
        with pytest.raises(FlowError):
            parse_structural_verilog("wire a, b;")

    def test_parse_rejects_positional_ports(self):
        text = "module m (a, y); input a; output y; INV g1 (a, y); endmodule"
        with pytest.raises(FlowError):
            parse_structural_verilog(text)

    def test_full_adder_netlist_is_valid(self):
        netlist = full_adder_netlist()
        netlist.validate()
        assert set(netlist.outputs) == {"sum", "carry"}
        assert len(netlist) == 13  # 9 NAND2 + two output inverter pairs

    def test_full_adder_logic_is_correct(self):
        netlist = full_adder_netlist(buffer_outputs=False)
        values = {}
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    nets = {"a": bool(a), "b": bool(b), "cin": bool(cin)}
                    for gate in netlist.topological_order():
                        inputs = [nets[n] for n in gate.input_nets()]
                        if gate.cell_type == "NAND2":
                            nets[gate.output_net] = not (inputs[0] and inputs[1])
                        elif gate.cell_type == "INV":
                            nets[gate.output_net] = not inputs[0]
                    total = a + b + cin
                    assert nets["sum"] == bool(total % 2), (a, b, cin)
                    assert nets["carry"] == (total >= 2), (a, b, cin)

    def test_ripple_carry_adder_scales(self):
        netlist = ripple_carry_adder_netlist(bits=4)
        netlist.validate()
        assert len(netlist) == 4 * 9
        assert "sum3" in netlist.outputs


def _simulate(netlist, inputs):
    """Evaluate a NAND2/INV netlist for one boolean input assignment."""
    nets = dict(inputs)
    for gate in netlist.topological_order():
        pins = [nets[n] for n in gate.input_nets()]
        if gate.cell_type == "NAND2":
            nets[gate.output_net] = not (pins[0] and pins[1])
        else:
            nets[gate.output_net] = not pins[0]
    return nets


class TestGeneratorFamilies:
    def test_comparator_logic_is_correct(self):
        netlist = comparator_netlist(bits=2)
        netlist.validate()
        for a in range(4):
            for b in range(4):
                nets = _simulate(netlist, {
                    "a0": bool(a & 1), "a1": bool(a & 2),
                    "b0": bool(b & 1), "b1": bool(b & 2),
                })
                assert nets["eq"] == (a == b), (a, b)

    def test_single_bit_comparator_buffers_its_output(self):
        netlist = comparator_netlist(bits=1)
        netlist.validate()
        for a in (0, 1):
            for b in (0, 1):
                nets = _simulate(netlist, {"a0": bool(a), "b0": bool(b)})
                assert nets["eq"] == (a == b), (a, b)

    def test_mac_slice_logic_is_correct(self):
        """sum = (a & {bits{b}}) + c + cin, checked exhaustively at 2 bits."""
        netlist = mac_slice_netlist(bits=2)
        netlist.validate()
        for a in range(4):
            for b in (0, 1):
                for c in range(4):
                    for cin in (0, 1):
                        nets = _simulate(netlist, {
                            "a0": bool(a & 1), "a1": bool(a & 2),
                            "c0": bool(c & 1), "c1": bool(c & 2),
                            "b": bool(b), "cin": bool(cin),
                        })
                        total = (a if b else 0) + c + cin
                        word = (int(nets["sum0"]) + 2 * int(nets["sum1"])
                                + 4 * int(nets["carry1"]))
                        assert word == total, (a, b, c, cin)

    def test_generators_reject_zero_bits(self):
        for generator in (ripple_carry_adder_netlist, comparator_netlist,
                          mac_slice_netlist):
            with pytest.raises(FlowError):
                generator(0)


class TestVerilogDiagnostics:
    def test_unknown_cell_reports_line_and_column(self):
        text = ("module m (a, y);\n"
                "  input a;\n"
                "  output y;\n"
                "  XOR9_2X g0 (.A(a), .out(y));\n"
                "endmodule\n")
        with pytest.raises(VerilogParseError) as excinfo:
            parse_structural_verilog(text)
        error = excinfo.value
        assert (error.line, error.column) == (4, 3)
        assert "XOR9" in str(error)
        assert "(line 4, column 3)" in str(error)

    def test_duplicate_instance_names_first_declaration(self):
        text = ("module m (a, y);\n"
                "  input a;\n"
                "  output y;\n"
                "  wire n1;\n"
                "  INV g1 (.A(a), .out(n1));\n"
                "  INV g1 (.A(n1), .out(y));\n"
                "endmodule\n")
        with pytest.raises(VerilogParseError) as excinfo:
            parse_structural_verilog(text)
        error = excinfo.value
        assert error.line == 6
        assert "first declared on line 5" in str(error)

    def test_undeclared_net_points_at_the_port(self):
        text = ("module m (a, y);\n"
                "  input a;\n"
                "  output y;\n"
                "  INV g1 (.A(a), .out(n1));\n"
                "endmodule\n")
        with pytest.raises(VerilogParseError) as excinfo:
            parse_structural_verilog(text)
        error = excinfo.value
        assert error.line == 4
        assert error.column > 10  # the .out(n1) token, not the instance
        assert "undeclared net 'n1'" in str(error)
        assert "wire" in str(error)  # the fix is suggested

    def test_comments_do_not_shift_error_locations(self):
        text = ("module m (a, y);  // ports\n"
                "  /* a multi-line\n"
                "     block comment */\n"
                "  input a;\n"
                "  output y;\n"
                "  INV g1 (.A(a), .out(n1));\n"
                "endmodule\n")
        with pytest.raises(VerilogParseError) as excinfo:
            parse_structural_verilog(text)
        assert excinfo.value.line == 6

    def test_positional_ports_error_is_located(self):
        text = ("module m (a, y);\n"
                "  input a;\n"
                "  output y;\n"
                "  INV g1 (a, y);\n"
                "endmodule\n")
        with pytest.raises(VerilogParseError) as excinfo:
            parse_structural_verilog(text)
        assert excinfo.value.line == 4

    def test_known_cells_override_and_opt_out(self):
        text = ("module m (a, y);\n"
                "  input a;\n"
                "  output y;\n"
                "  XOR9_2X g0 (.A(a), .out(y));\n"
                "endmodule\n")
        netlist = parse_structural_verilog(text, known_cells=("xor9",))
        assert netlist.gates[0].cell_type == "XOR9"
        netlist = parse_structural_verilog(text, known_cells=False)
        assert netlist.gates[0].cell_type == "XOR9"
        with pytest.raises(VerilogParseError):
            parse_structural_verilog(text, known_cells=("NAND2",))


class TestMappingAndPlacement:
    def test_mapping_binds_every_instance(self, small_library):
        design = map_netlist(full_adder_netlist(), small_library)
        assert len(design.gates) == len(design.netlist)
        assert design.total_cell_area() > 0
        assert design.total_cmos_reference_area() > design.total_cell_area()

    def test_mapping_snaps_missing_drive(self, small_library):
        netlist = GateNetlist("odd_drive")
        netlist.add_gate("g1", "INV", {"A": "a", "out": "y"}, drive_strength=3.0)
        netlist.declare_io(["a"], ["y"])
        design = map_netlist(netlist, small_library)
        assert design.gates[0].cell.drive_strength in SMALL_DRIVES
        with pytest.raises(MappingError):
            map_netlist(netlist, small_library, snap_drive_strengths=False)

    def test_mapping_unknown_gate_type(self, small_library):
        netlist = GateNetlist("bad")
        netlist.add_gate("g1", "XOR2", {"A": "a", "B": "b", "out": "y"})
        netlist.declare_io(["a", "b"], ["y"])
        with pytest.raises(MappingError):
            map_netlist(netlist, small_library)

    def test_mapping_rejects_zero_instance_netlist(self, small_library):
        netlist = GateNetlist("hollow")
        netlist.declare_io(["a"], [])
        with pytest.raises(MappingError, match="no gate instances"):
            map_netlist(netlist, small_library)

    def test_mapping_lists_every_missing_cell_type(self, small_library):
        """One error names every uncovered gate type, not just the first."""
        netlist = GateNetlist("wide")
        netlist.add_gate("g1", "NOR2", {"A": "a", "B": "b", "out": "n1"})
        netlist.add_gate("g2", "AOI21", {"A": "n1", "B": "b", "C": "a",
                                         "out": "y"})
        netlist.declare_io(["a", "b"], ["y"])
        with pytest.raises(MappingError) as excinfo:
            map_netlist(netlist, small_library)
        message = str(excinfo.value)
        assert "NOR2" in message and "AOI21" in message

    def test_placements_have_no_overlaps(self, small_library):
        design = map_netlist(full_adder_netlist(), small_library)
        for placement in (place_scheme1(design), place_scheme2(design)):
            assert placement.overlaps() == []
            assert placement.core_area >= placement.cell_area - 1e-6
            assert 0.3 < placement.utilization <= 1.0

    def test_scheme2_is_denser_than_scheme1(self, small_library):
        design = map_netlist(full_adder_netlist(), small_library)
        s1 = place_scheme1(design)
        s2 = place_scheme2(design)
        # Scheme 2 packs the same cells into a smaller core because short
        # cells no longer pay for the standardised row height.
        assert s2.core_area < s1.core_area

    def test_cmos_reference_placement(self):
        placement = place_cmos_reference(full_adder_netlist())
        assert placement.overlaps() == []
        assert placement.core_area > 0


class TestDesignKit:
    def test_library_is_drc_clean(self, small_kit):
        assert small_kit.run_drc() == {}

    def test_flow_report_gains(self, small_kit):
        result = small_kit.run_flow(full_adder_netlist())
        report = result.report
        assert report.gate_count == 13
        assert report.delay_gain_vs_cmos > 2.0
        assert report.energy_gain_vs_cmos > 1.0
        assert report.area_gain_vs_cmos > 1.0
        assert "area gain" in report.summary()

    def test_flow_accepts_verilog_text(self, small_kit):
        result = small_kit.run_flow(full_adder_verilog())
        assert result.report.gate_count == 13

    def test_flow_rejects_other_inputs(self, small_kit):
        with pytest.raises(FlowError):
            small_kit.run_flow(42)

    def test_gds_output_contains_library_cells(self, small_kit, tmp_path):
        result = small_kit.run_flow(full_adder_netlist())
        path = small_kit.write_gds(result, str(tmp_path / "fa.gds"))
        summary = read_gds_summary(open(path, "rb").read())
        top = [name for name in summary if name.endswith("_top")]
        assert top
        assert summary[top[0]].sref_count == 13
        assert any("NAND2" in name for name in summary)

    def test_liberty_view_available(self, small_kit):
        assert "library (" in small_kit.liberty()
