"""Tests for repro.circuit: netlists, FO4, transient simulation, timing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import (
    GateNetlist,
    Inverter,
    ParasiticExtractor,
    PiecewiseLinearSource,
    TimingLibrary,
    TransistorNetlist,
    TransientSimulator,
    analyse_netlist,
    build_inverter_chain,
    cmos_inverter,
    cnfet_inverter,
    compare_fo4,
    fo4_load_capacitance,
    fo4_metrics,
    fo4_metrics_transient,
    pulse_source,
    step_source,
    write_spice,
)
from repro.circuit.logical_effort import CellTimingModel
from repro.devices import FO4_GATE_WIDTH_NM, calibrated_cnfet_parameters
from repro.errors import NetlistError, SimulationError


def _calibrated_cnfet_inverter(tubes=6):
    return cnfet_inverter(tubes, FO4_GATE_WIDTH_NM,
                          parameters=calibrated_cnfet_parameters())


class TestInverter:
    def test_polarity_validation(self):
        from repro.devices import MOSFET

        with pytest.raises(Exception):
            Inverter(pull_down=MOSFET("p", 100), pull_up=MOSFET("p", 100))

    def test_cmos_inverter_default_ratio(self):
        inverter = cmos_inverter(200.0)
        assert inverter.pull_up.width_nm == pytest.approx(280.0)

    def test_scaling(self):
        inverter = _calibrated_cnfet_inverter()
        double = inverter.scaled(2.0)
        assert double.input_capacitance() > inverter.input_capacitance()


class TestFO4Analytical:
    def test_load_is_self_plus_four_inputs(self):
        inverter = cmos_inverter()
        load = fo4_load_capacitance(inverter)
        expected = inverter.output_capacitance() + 4 * inverter.input_capacitance()
        assert load == pytest.approx(expected)

    def test_cmos_fo4_in_expected_range(self):
        metrics = fo4_metrics(cmos_inverter())
        assert 10e-12 < metrics.delay_s < 40e-12
        assert 1e-15 < metrics.energy_per_cycle_j < 5e-15

    def test_cnfet_beats_cmos(self):
        comparison = compare_fo4(_calibrated_cnfet_inverter(), cmos_inverter())
        assert comparison.delay_gain > 3.0
        assert comparison.energy_gain > 1.5
        assert comparison.edp_gain > 6.0

    def test_invalid_supply_rejected(self):
        with pytest.raises(SimulationError):
            fo4_metrics(cmos_inverter(), vdd=0.0)

    @given(st.floats(min_value=0.8, max_value=1.2))
    def test_energy_scales_with_vdd_squared(self, vdd):
        inverter = cmos_inverter()
        base = fo4_metrics(inverter, vdd=1.0).energy_per_cycle_j
        scaled = fo4_metrics(inverter, vdd=vdd).energy_per_cycle_j
        assert scaled == pytest.approx(base * vdd * vdd, rel=1e-9)


class TestSources:
    def test_pwl_interpolation(self):
        source = PiecewiseLinearSource([(0.0, 0.0), (1.0, 1.0), (2.0, 1.0)])
        assert source.value(-1.0) == 0.0
        assert source.value(0.5) == pytest.approx(0.5)
        assert source.value(5.0) == 1.0

    def test_pwl_ordering_enforced(self):
        with pytest.raises(SimulationError):
            PiecewiseLinearSource([(1.0, 0.0), (0.5, 1.0)])

    def test_step_and_pulse_shapes(self):
        step = step_source(1.0, delay=1e-12, rise_time=1e-13)
        assert step.value(0.0) == 0.0
        assert step.value(2e-12) == pytest.approx(1.0)
        pulse = pulse_source(1.0, delay=1e-12, rise_time=1e-13, width=5e-12)
        assert pulse.value(3e-12) == pytest.approx(1.0)
        assert pulse.value(1e-9) == pytest.approx(0.0)


class TestTransistorNetlist:
    def test_chain_construction(self):
        netlist = build_inverter_chain(cmos_inverter(), stages=3, fanout=4, vdd=1.0)
        assert len(netlist) == 6
        assert netlist.inputs == ["in"]
        assert "n3" in netlist.outputs
        assert len(netlist.capacitors) == 3

    def test_duplicate_transistor_rejected(self):
        netlist = TransistorNetlist("t", vdd=1.0)
        inverter = cmos_inverter()
        netlist.add_transistor("M1", inverter.pull_down, "a", "y", "gnd")
        with pytest.raises(NetlistError):
            netlist.add_transistor("M1", inverter.pull_up, "a", "y", "vdd")

    def test_node_capacitance_accounts_for_devices(self):
        netlist = build_inverter_chain(cmos_inverter(), stages=2, fanout=4, vdd=1.0)
        assert netlist.node_capacitance("n1") > 0

    def test_spice_export_mentions_devices(self):
        cnfet_chain = build_inverter_chain(_calibrated_cnfet_inverter(), 2, 4, 1.0)
        text = write_spice(cnfet_chain, title="chain")
        assert "ncnfet" in text
        assert ".end" in text
        cmos_chain = build_inverter_chain(cmos_inverter(), 2, 4, 1.0)
        text = write_spice(cmos_chain)
        assert "nmos65" in text and "pmos65" in text


class TestTransientSimulation:
    def test_inverter_switches(self):
        inverter = cmos_inverter()
        netlist = build_inverter_chain(inverter, stages=1, fanout=1, vdd=1.0)
        source = step_source(1.0, delay=5e-12, rise_time=1e-12)
        sim = TransientSimulator(netlist, {"in": source},
                                 initial_conditions={"n1": 1.0})
        result = sim.run(stop_time=100e-12, time_step=0.5e-12)
        final = result.voltage("n1")[-1]
        assert final < 0.1

    def test_missing_source_rejected(self):
        netlist = build_inverter_chain(cmos_inverter(), stages=1, fanout=1, vdd=1.0)
        with pytest.raises(SimulationError):
            TransientSimulator(netlist, {})

    def test_transient_fo4_close_to_analytical(self):
        inverter = _calibrated_cnfet_inverter()
        analytic = fo4_metrics(inverter)
        transient = fo4_metrics_transient(inverter)
        assert transient.delay_s == pytest.approx(analytic.delay_s, rel=0.45)
        assert transient.energy_per_cycle_j == pytest.approx(
            analytic.energy_per_cycle_j, rel=0.45
        )

    def test_transient_gain_ratio_matches_paper_direction(self):
        cnfet = fo4_metrics_transient(_calibrated_cnfet_inverter())
        cmos = fo4_metrics_transient(cmos_inverter())
        assert cmos.delay_s / cnfet.delay_s > 3.0


class TestCrossingTime:
    """Regressions for TransientResult.crossing_time, in particular the
    ``after`` clamping that propagation_delay's FO4 numbers depend on."""

    @staticmethod
    def _result(times, volts):
        import numpy as np

        from repro.circuit.simulator import TransientResult

        return TransientResult(
            time=np.asarray(times, dtype=float),
            waveforms={"n": np.asarray(volts, dtype=float)},
            supply_charge=0.0,
            vdd=1.0,
        )

    def test_simple_rising_interpolation(self):
        result = self._result([0.0, 1.0, 2.0], [0.0, 0.0, 1.0])
        assert result.crossing_time("n", 0.5) == pytest.approx(1.5)

    def test_crossing_never_earlier_than_after(self):
        # The ramp crosses 0.5 at t=0.5; with after=0.75 inside the same
        # segment the crossing must be re-evaluated from t=0.75, where the
        # net is already above the level -> the *next* crossing counts.
        result = self._result(
            [0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 1.0, 0.0]
        )
        unclamped = result.crossing_time("n", 0.5)
        assert unclamped == pytest.approx(0.5)
        crossing = result.crossing_time("n", 0.5, after=0.75)
        assert crossing >= 0.75
        assert crossing == pytest.approx(2.5)  # the falling edge

    def test_after_mid_segment_before_level(self):
        # after=0.25 lands mid-segment but before the crossing: the
        # interpolated crossing inside the straddling segment is unchanged.
        result = self._result([0.0, 1.0], [0.0, 1.0])
        assert result.crossing_time("n", 0.5, after=0.25) == pytest.approx(0.5)

    def test_crossing_exactly_at_after_counts(self):
        # The net reaches the level exactly at ``after`` (here a sample
        # point): the crossing belongs to the window.
        result = self._result([0.0, 1.0, 2.0], [0.0, 0.5, 1.0])
        assert result.crossing_time("n", 0.5, after=1.0) == pytest.approx(1.0)
        # Same when ``after`` lands mid-segment on the crossing instant.
        ramp = self._result([0.0, 2.0], [0.0, 1.0])
        assert ramp.crossing_time("n", 0.5, after=1.0) == pytest.approx(1.0)

    def test_falling_edge_with_after(self):
        result = self._result([0.0, 1.0, 2.0], [1.0, 1.0, 0.0])
        crossing = result.crossing_time("n", 0.5, rising=False, after=1.5)
        assert crossing >= 1.5
        assert crossing == pytest.approx(1.5)

    def test_flat_segments_are_not_crossings(self):
        result = self._result([0.0, 1.0, 2.0, 3.0], [0.0, 0.5, 0.5, 1.0])
        # The crossing completes on the segment that *arrives* at the level;
        # the flat stretch and the departure from it do not cross again.
        assert result.crossing_time("n", 0.5) == pytest.approx(1.0)
        with pytest.raises(SimulationError):
            result.crossing_time("n", 0.5, after=1.5)
        # A flat stretch strictly below the level is skipped entirely.
        staircase = self._result([0.0, 1.0, 2.0, 3.0], [0.0, 0.4, 0.4, 1.0])
        assert staircase.crossing_time("n", 0.5, after=1.5) == pytest.approx(
            2.0 + (0.5 - 0.4) / (1.0 - 0.4)
        )

    def test_direction_filter(self):
        result = self._result([0.0, 1.0, 2.0], [0.0, 1.0, 0.0])
        assert result.crossing_time("n", 0.5, rising=True) == pytest.approx(0.5)
        assert result.crossing_time("n", 0.5, rising=False) == pytest.approx(1.5)

    def test_never_crossing_raises(self):
        result = self._result([0.0, 1.0], [0.0, 0.1])
        with pytest.raises(SimulationError):
            result.crossing_time("n", 0.5)
        with pytest.raises(SimulationError):
            # Crosses before ``after`` but never after it.
            self._result([0.0, 1.0, 2.0], [0.0, 1.0, 1.0]).crossing_time(
                "n", 0.5, after=1.5
            )

    def test_propagation_delay_non_negative_on_steep_edges(self):
        # Output crossing lands in the segment straddling the input
        # crossing; without clamping this used to go negative.
        result = self._result([0.0, 1.0, 2.0], [0.0, 0.6, 1.0])
        delayed = self._result([0.0, 1.0, 2.0], [0.0, 0.4, 1.0])
        result.waveforms["out"] = delayed.waveforms["n"]
        assert result.propagation_delay("n", "out") >= 0.0


class TestSupplyChargeAccounting:
    def test_backdriven_supply_not_overcounted(self):
        """A rail-to-rail pulse through one inverter: the supply charge must
        stay close to the switched capacitance (CV), not accumulate clamped
        per-device contributions."""
        inverter = cmos_inverter()
        netlist = build_inverter_chain(inverter, stages=1, fanout=4, vdd=1.0)
        source = pulse_source(1.0, delay=20e-12, rise_time=2e-12, width=200e-12)
        sim = TransientSimulator(netlist, {"in": source},
                                 initial_conditions={"n1": 1.0})
        result = sim.run(stop_time=450e-12, time_step=1e-12)
        load = netlist.node_capacitance("n1")
        # One full cycle charges the load once (plus short-circuit current
        # during the edges) -> the same order of magnitude as CV.
        assert 0.5 * load < result.supply_charge < 4.0 * load


class TestGateNetlist:
    def _simple_netlist(self):
        netlist = GateNetlist("pair")
        netlist.add_gate("g1", "NAND2", {"A": "a", "B": "b", "out": "n1"})
        netlist.add_gate("g2", "INV", {"A": "n1", "out": "y"})
        netlist.declare_io(["a", "b"], ["y"])
        return netlist

    def test_validation_passes(self):
        self._simple_netlist().validate()

    def test_topological_order(self):
        order = [g.name for g in self._simple_netlist().topological_order()]
        assert order.index("g1") < order.index("g2")

    def test_undriven_output_rejected(self):
        netlist = GateNetlist("bad")
        netlist.add_gate("g1", "INV", {"A": "a", "out": "n1"})
        netlist.declare_io(["a"], ["missing"])
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_multiple_drivers_rejected(self):
        netlist = GateNetlist("bad")
        netlist.add_gate("g1", "INV", {"A": "a", "out": "y"})
        netlist.add_gate("g2", "INV", {"A": "b", "out": "y"})
        netlist.declare_io(["a", "b"], ["y"])
        with pytest.raises(NetlistError):
            netlist.drivers()

    def test_combinational_loop_detected(self):
        netlist = GateNetlist("loop")
        netlist.add_gate("g1", "INV", {"A": "y", "out": "n1"})
        netlist.add_gate("g2", "INV", {"A": "n1", "out": "y"})
        netlist.declare_io([], ["y"])
        with pytest.raises(NetlistError):
            netlist.topological_order()

    def test_gate_without_output_rejected(self):
        with pytest.raises(NetlistError):
            GateNetlist("bad").add_gate("g1", "INV", {"A": "a", "Y": "y"})


class TestLogicalEffortAnalysis:
    def _library(self):
        library = TimingLibrary("unit", vdd=1.0)
        library.add(CellTimingModel("INV", 1.0, 1e-15, 1e4, 0.5e-15))
        library.add(CellTimingModel("NAND2", 1.0, 1.5e-15, 1.2e4, 0.8e-15))
        return library

    def test_path_delay_accumulates(self):
        netlist = GateNetlist("pair")
        netlist.add_gate("g1", "NAND2", {"A": "a", "B": "b", "out": "n1"})
        netlist.add_gate("g2", "INV", {"A": "n1", "out": "y"})
        netlist.declare_io(["a", "b"], ["y"])
        result = analyse_netlist(netlist, self._library(), output_load=2e-15)
        expected_stage1 = 1.2e4 * (0.8e-15 + 1e-15)
        expected_stage2 = 1e4 * (0.5e-15 + 2e-15)
        assert result.critical_path_delay == pytest.approx(expected_stage1 + expected_stage2)
        assert result.critical_path == ("g1", "g2")
        assert result.total_energy_per_cycle > 0

    def test_drive_strength_interpolation(self):
        library = self._library()
        model = library.lookup("INV", 4.0)
        assert model.drive_resistance == pytest.approx(1e4 / 4.0)
        assert model.input_capacitance == pytest.approx(4e-15)

    def test_unknown_cell_rejected(self):
        with pytest.raises(Exception):
            self._library().lookup("XOR2")


class TestExtraction:
    def test_extraction_of_generated_cell(self):
        from repro.core import assemble_cell
        from repro.logic import standard_gate

        cell = assemble_cell(standard_gate("NAND2"))
        report = ParasiticExtractor().extract(cell.cell)
        assert report.total_capacitance > 0
        assert report.capacitance("out") > 0
        assert report.resistance("out") > 0

    def test_wire_estimates_scale_with_length(self):
        extractor = ParasiticExtractor()
        assert extractor.wire_capacitance(100.0) > extractor.wire_capacitance(10.0)
        assert extractor.wire_resistance(100.0) > extractor.wire_resistance(10.0)
        with pytest.raises(NetlistError):
            extractor.wire_capacitance(-1.0)
