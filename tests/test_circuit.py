"""Tests for repro.circuit: netlists, FO4, transient simulation, timing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import (
    GateNetlist,
    Inverter,
    ParasiticExtractor,
    PiecewiseLinearSource,
    TimingLibrary,
    TransistorNetlist,
    TransientSimulator,
    analyse_netlist,
    build_inverter_chain,
    cmos_inverter,
    cnfet_inverter,
    compare_fo4,
    fo4_load_capacitance,
    fo4_metrics,
    fo4_metrics_transient,
    pulse_source,
    step_source,
    write_spice,
)
from repro.circuit.logical_effort import CellTimingModel
from repro.devices import FO4_GATE_WIDTH_NM, calibrated_cnfet_parameters
from repro.errors import NetlistError, SimulationError


def _calibrated_cnfet_inverter(tubes=6):
    return cnfet_inverter(tubes, FO4_GATE_WIDTH_NM,
                          parameters=calibrated_cnfet_parameters())


class TestInverter:
    def test_polarity_validation(self):
        from repro.devices import MOSFET

        with pytest.raises(Exception):
            Inverter(pull_down=MOSFET("p", 100), pull_up=MOSFET("p", 100))

    def test_cmos_inverter_default_ratio(self):
        inverter = cmos_inverter(200.0)
        assert inverter.pull_up.width_nm == pytest.approx(280.0)

    def test_scaling(self):
        inverter = _calibrated_cnfet_inverter()
        double = inverter.scaled(2.0)
        assert double.input_capacitance() > inverter.input_capacitance()


class TestFO4Analytical:
    def test_load_is_self_plus_four_inputs(self):
        inverter = cmos_inverter()
        load = fo4_load_capacitance(inverter)
        expected = inverter.output_capacitance() + 4 * inverter.input_capacitance()
        assert load == pytest.approx(expected)

    def test_cmos_fo4_in_expected_range(self):
        metrics = fo4_metrics(cmos_inverter())
        assert 10e-12 < metrics.delay_s < 40e-12
        assert 1e-15 < metrics.energy_per_cycle_j < 5e-15

    def test_cnfet_beats_cmos(self):
        comparison = compare_fo4(_calibrated_cnfet_inverter(), cmos_inverter())
        assert comparison.delay_gain > 3.0
        assert comparison.energy_gain > 1.5
        assert comparison.edp_gain > 6.0

    def test_invalid_supply_rejected(self):
        with pytest.raises(SimulationError):
            fo4_metrics(cmos_inverter(), vdd=0.0)

    @given(st.floats(min_value=0.8, max_value=1.2))
    def test_energy_scales_with_vdd_squared(self, vdd):
        inverter = cmos_inverter()
        base = fo4_metrics(inverter, vdd=1.0).energy_per_cycle_j
        scaled = fo4_metrics(inverter, vdd=vdd).energy_per_cycle_j
        assert scaled == pytest.approx(base * vdd * vdd, rel=1e-9)


class TestSources:
    def test_pwl_interpolation(self):
        source = PiecewiseLinearSource([(0.0, 0.0), (1.0, 1.0), (2.0, 1.0)])
        assert source.value(-1.0) == 0.0
        assert source.value(0.5) == pytest.approx(0.5)
        assert source.value(5.0) == 1.0

    def test_pwl_ordering_enforced(self):
        with pytest.raises(SimulationError):
            PiecewiseLinearSource([(1.0, 0.0), (0.5, 1.0)])

    def test_step_and_pulse_shapes(self):
        step = step_source(1.0, delay=1e-12, rise_time=1e-13)
        assert step.value(0.0) == 0.0
        assert step.value(2e-12) == pytest.approx(1.0)
        pulse = pulse_source(1.0, delay=1e-12, rise_time=1e-13, width=5e-12)
        assert pulse.value(3e-12) == pytest.approx(1.0)
        assert pulse.value(1e-9) == pytest.approx(0.0)


class TestTransistorNetlist:
    def test_chain_construction(self):
        netlist = build_inverter_chain(cmos_inverter(), stages=3, fanout=4, vdd=1.0)
        assert len(netlist) == 6
        assert netlist.inputs == ["in"]
        assert "n3" in netlist.outputs
        assert len(netlist.capacitors) == 3

    def test_duplicate_transistor_rejected(self):
        netlist = TransistorNetlist("t", vdd=1.0)
        inverter = cmos_inverter()
        netlist.add_transistor("M1", inverter.pull_down, "a", "y", "gnd")
        with pytest.raises(NetlistError):
            netlist.add_transistor("M1", inverter.pull_up, "a", "y", "vdd")

    def test_node_capacitance_accounts_for_devices(self):
        netlist = build_inverter_chain(cmos_inverter(), stages=2, fanout=4, vdd=1.0)
        assert netlist.node_capacitance("n1") > 0

    def test_spice_export_mentions_devices(self):
        cnfet_chain = build_inverter_chain(_calibrated_cnfet_inverter(), 2, 4, 1.0)
        text = write_spice(cnfet_chain, title="chain")
        assert "ncnfet" in text
        assert ".end" in text
        cmos_chain = build_inverter_chain(cmos_inverter(), 2, 4, 1.0)
        text = write_spice(cmos_chain)
        assert "nmos65" in text and "pmos65" in text


class TestTransientSimulation:
    def test_inverter_switches(self):
        inverter = cmos_inverter()
        netlist = build_inverter_chain(inverter, stages=1, fanout=1, vdd=1.0)
        source = step_source(1.0, delay=5e-12, rise_time=1e-12)
        sim = TransientSimulator(netlist, {"in": source},
                                 initial_conditions={"n1": 1.0})
        result = sim.run(stop_time=100e-12, time_step=0.5e-12)
        final = result.voltage("n1")[-1]
        assert final < 0.1

    def test_missing_source_rejected(self):
        netlist = build_inverter_chain(cmos_inverter(), stages=1, fanout=1, vdd=1.0)
        with pytest.raises(SimulationError):
            TransientSimulator(netlist, {})

    def test_transient_fo4_close_to_analytical(self):
        inverter = _calibrated_cnfet_inverter()
        analytic = fo4_metrics(inverter)
        transient = fo4_metrics_transient(inverter)
        assert transient.delay_s == pytest.approx(analytic.delay_s, rel=0.45)
        assert transient.energy_per_cycle_j == pytest.approx(
            analytic.energy_per_cycle_j, rel=0.45
        )

    def test_transient_gain_ratio_matches_paper_direction(self):
        cnfet = fo4_metrics_transient(_calibrated_cnfet_inverter())
        cmos = fo4_metrics_transient(cmos_inverter())
        assert cmos.delay_s / cnfet.delay_s > 3.0


class TestGateNetlist:
    def _simple_netlist(self):
        netlist = GateNetlist("pair")
        netlist.add_gate("g1", "NAND2", {"A": "a", "B": "b", "out": "n1"})
        netlist.add_gate("g2", "INV", {"A": "n1", "out": "y"})
        netlist.declare_io(["a", "b"], ["y"])
        return netlist

    def test_validation_passes(self):
        self._simple_netlist().validate()

    def test_topological_order(self):
        order = [g.name for g in self._simple_netlist().topological_order()]
        assert order.index("g1") < order.index("g2")

    def test_undriven_output_rejected(self):
        netlist = GateNetlist("bad")
        netlist.add_gate("g1", "INV", {"A": "a", "out": "n1"})
        netlist.declare_io(["a"], ["missing"])
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_multiple_drivers_rejected(self):
        netlist = GateNetlist("bad")
        netlist.add_gate("g1", "INV", {"A": "a", "out": "y"})
        netlist.add_gate("g2", "INV", {"A": "b", "out": "y"})
        netlist.declare_io(["a", "b"], ["y"])
        with pytest.raises(NetlistError):
            netlist.drivers()

    def test_combinational_loop_detected(self):
        netlist = GateNetlist("loop")
        netlist.add_gate("g1", "INV", {"A": "y", "out": "n1"})
        netlist.add_gate("g2", "INV", {"A": "n1", "out": "y"})
        netlist.declare_io([], ["y"])
        with pytest.raises(NetlistError):
            netlist.topological_order()

    def test_gate_without_output_rejected(self):
        with pytest.raises(NetlistError):
            GateNetlist("bad").add_gate("g1", "INV", {"A": "a", "Y": "y"})


class TestLogicalEffortAnalysis:
    def _library(self):
        library = TimingLibrary("unit", vdd=1.0)
        library.add(CellTimingModel("INV", 1.0, 1e-15, 1e4, 0.5e-15))
        library.add(CellTimingModel("NAND2", 1.0, 1.5e-15, 1.2e4, 0.8e-15))
        return library

    def test_path_delay_accumulates(self):
        netlist = GateNetlist("pair")
        netlist.add_gate("g1", "NAND2", {"A": "a", "B": "b", "out": "n1"})
        netlist.add_gate("g2", "INV", {"A": "n1", "out": "y"})
        netlist.declare_io(["a", "b"], ["y"])
        result = analyse_netlist(netlist, self._library(), output_load=2e-15)
        expected_stage1 = 1.2e4 * (0.8e-15 + 1e-15)
        expected_stage2 = 1e4 * (0.5e-15 + 2e-15)
        assert result.critical_path_delay == pytest.approx(expected_stage1 + expected_stage2)
        assert result.critical_path == ("g1", "g2")
        assert result.total_energy_per_cycle > 0

    def test_drive_strength_interpolation(self):
        library = self._library()
        model = library.lookup("INV", 4.0)
        assert model.drive_resistance == pytest.approx(1e4 / 4.0)
        assert model.input_capacitance == pytest.approx(4e-15)

    def test_unknown_cell_rejected(self):
        with pytest.raises(Exception):
            self._library().lookup("XOR2")


class TestExtraction:
    def test_extraction_of_generated_cell(self):
        from repro.core import assemble_cell
        from repro.logic import standard_gate

        cell = assemble_cell(standard_gate("NAND2"))
        report = ParasiticExtractor().extract(cell.cell)
        assert report.total_capacitance > 0
        assert report.capacitance("out") > 0
        assert report.resistance("out") > 0

    def test_wire_estimates_scale_with_length(self):
        extractor = ParasiticExtractor()
        assert extractor.wire_capacitance(100.0) > extractor.wire_capacitance(10.0)
        assert extractor.wire_resistance(100.0) > extractor.wire_resistance(10.0)
        with pytest.raises(NetlistError):
            extractor.wire_capacitance(-1.0)
